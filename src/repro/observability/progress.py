"""Live progress / heartbeat reporting for long enumerations.

A deep enumeration can run for minutes with nothing on the terminal.
:class:`ProgressReporter` fixes that: the enumerator calls
:meth:`tick` once per recursive call (one attribute check when progress
is off), and every ``interval`` seconds the reporter prints one stderr
line with cumulative rates, the remaining budget, and an ETA derived
from the CECI cardinality bound (:mod:`repro.core.estimate`'s
deterministic upper bound on the number of embeddings)::

    # progress: 4.0s calls=1203456 (300864/s) embeddings=88123 (22030/s) \
budget: calls 796544 left | eta<=12.3s

The clock is only consulted every ``check_every`` ticks, so the per-call
cost is an integer compare; the ETA is labelled ``<=`` because the
cardinality bound over-estimates (it ignores injectivity and symmetry
breaking).
"""

from __future__ import annotations

import sys
import time
from typing import IO, Optional

__all__ = ["ProgressReporter"]

#: Consult the wall clock once per this many ticks.
DEFAULT_CHECK_EVERY = 512


class ProgressReporter:
    """Periodic one-line heartbeat over a shared ``MatchStats``.

    Parameters
    ----------
    stats:
        The live :class:`~repro.core.stats.MatchStats` of the run —
        cumulative counts are read from it at emission time.
    interval:
        Seconds between heartbeat lines (``0`` emits at every clock
        check — useful in tests).
    stream:
        Output stream; defaults to ``sys.stderr`` at emission time.
    total_estimate:
        Upper bound on embeddings (the CECI cardinality bound); enables
        the ``eta<=`` field.  The matcher fills this in after the index
        is built when the caller did not.
    tracker:
        The run's :class:`~repro.resilience.budget.BudgetTracker`, if
        any — used to print the remaining budget axes.
    tracer:
        Optional tracer; each heartbeat is mirrored as a ``progress``
        instant event so traces carry the liveness timeline too.
    """

    def __init__(
        self,
        stats,
        interval: float = 1.0,
        stream: Optional[IO[str]] = None,
        total_estimate: Optional[int] = None,
        tracker=None,
        tracer=None,
        check_every: int = DEFAULT_CHECK_EVERY,
    ) -> None:
        if interval < 0:
            raise ValueError("interval must be >= 0")
        self.stats = stats
        self.interval = interval
        self.stream = stream
        self.total_estimate = total_estimate
        self.tracker = tracker
        self.tracer = tracer
        self.check_every = max(1, int(check_every))
        self.lines_emitted = 0
        self._ticks = 0
        self._pending = 0
        self._started_at: Optional[float] = None
        self._next_emit_at = 0.0

    # ------------------------------------------------------------------
    def start(self) -> "ProgressReporter":
        """Arm the reporter (idempotent); called on the first tick."""
        if self._started_at is None:
            self._started_at = time.perf_counter()
            self._next_emit_at = self._started_at + self.interval
        return self

    def tick(self) -> None:
        """One unit of enumeration work.  Hot path: an increment and a
        compare; the clock is read once per ``check_every`` ticks."""
        self._ticks += 1
        self._pending += 1
        if self._pending >= self.check_every:
            self._pending = 0
            if self._started_at is None:
                self.start()
            now = time.perf_counter()
            if now >= self._next_emit_at:
                self._emit(now)

    def tick_many(self, n: int) -> None:
        """``n`` units of enumeration work at once — the batch engine's
        per-frontier-block tick (one clock check per block at most)."""
        if n <= 0:
            return
        self._ticks += n
        self._pending += n
        if self._pending >= self.check_every:
            self._pending = 0
            if self._started_at is None:
                self.start()
            now = time.perf_counter()
            if now >= self._next_emit_at:
                self._emit(now)

    def finish(self, force: bool = False) -> None:
        """Emit one final ``(done)`` line (only if the run ever ticked).

        Runs shorter than ``check_every`` calls never consulted the
        clock, so this arms the reporter late — ``--progress`` always
        yields at least the final line.  ``force`` emits even with zero
        ticks: parallel runs tick per-worker enumerators rather than
        this reporter, but their merged stats still make a truthful
        final summary."""
        if self._ticks or force:
            self.start()
            self._emit(time.perf_counter(), final=True)

    # ------------------------------------------------------------------
    def _emit(self, now: float, final: bool = False) -> None:
        elapsed = max(now - (self._started_at or now), 1e-9)
        self._next_emit_at = now + self.interval
        stats = self.stats
        calls = stats.recursive_calls
        found = stats.embeddings_found
        call_rate = calls / elapsed
        found_rate = found / elapsed
        parts = [
            f"# progress: {elapsed:.1f}s",
            f"calls={calls} ({call_rate:.0f}/s)",
            f"embeddings={found} ({found_rate:.0f}/s)",
        ]
        budget_bits = []
        tracker = self.tracker
        if tracker is not None:
            budget = tracker.budget
            if budget.max_calls is not None:
                budget_bits.append(
                    f"calls {max(budget.max_calls - tracker.calls, 0)} left"
                )
            if budget.deadline_seconds is not None:
                budget_bits.append(
                    f"{max(budget.deadline_seconds - tracker.elapsed(), 0.0):.1f}s left"
                )
        if budget_bits:
            parts.append("budget: " + ", ".join(budget_bits))
        if self.total_estimate is not None and found_rate > 0:
            remaining = max(self.total_estimate - found, 0)
            parts.append(f"eta<={remaining / found_rate:.1f}s")
        if final:
            parts.append("(done)")
        stream = self.stream if self.stream is not None else sys.stderr
        print(" ".join(parts), file=stream)
        self.lines_emitted += 1
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.instant(
                "progress",
                calls=calls,
                embeddings=found,
                elapsed=round(elapsed, 6),
                final=final,
            )
