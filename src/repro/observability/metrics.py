"""Named-metric registry with declared merge semantics.

Before this module, every new ``MatchStats`` counter had to be added in
three places — the dataclass field, the hand-written ``merge`` body, and
whichever CLI dump mentioned it — and the worker and machine merge paths
each carried their own copy of the fold.  :class:`MetricsRegistry`
replaces that with *data*: a :class:`MetricSpec` declares each metric's
kind (counter / gauge / histogram) and how two runs' values combine
(``sum`` for work counters, ``max`` for peak gauges such as
``memory_bytes``), and :meth:`MetricsRegistry.merge` is the single
implementation every merge path routes through —
``MatchStats.merge`` (per-worker fold), the parallel executor and the
distributed runtime all included.

A labeled spec (``labeled=True``) is a metric *family*: one value per
label, e.g. ``phase_seconds{phase="filter"}``.  Histograms are kept as
mergeable summaries (count / sum / min / max), not raw samples.

Output formats: :meth:`as_dict` (JSON-friendly nesting) and
:meth:`to_prom` (Prometheus text exposition) — the two shapes behind
the CLI's ``--metrics {json,prom}``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Union

__all__ = [
    "METRICS_SCHEMA",
    "MetricSpec",
    "MetricsRegistry",
]

#: Version stamped into :meth:`MetricsRegistry.as_dict`; bump on
#: incompatible shape changes so downstream parsers can refuse cleanly.
METRICS_SCHEMA = 1

_KINDS = ("counter", "gauge", "histogram")
_MERGES = ("sum", "max")

Number = Union[int, float]
#: Histogram summary representation.
Summary = Dict[str, float]


class MetricSpec:
    """Declaration of one metric: its kind and its merge semantics."""

    __slots__ = ("name", "kind", "merge", "labeled", "label_name", "help")

    def __init__(
        self,
        name: str,
        kind: str = "counter",
        merge: str = "sum",
        labeled: bool = False,
        label_name: str = "label",
        help: str = "",
    ) -> None:
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        if merge not in _MERGES:
            raise ValueError(f"unknown merge semantic {merge!r}")
        self.name = name
        self.kind = kind
        self.merge = merge
        self.labeled = labeled
        self.label_name = label_name
        self.help = help

    def __repr__(self) -> str:
        return (
            f"<MetricSpec {self.name} kind={self.kind} merge={self.merge}"
            f"{' labeled' if self.labeled else ''}>"
        )


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format:
    backslash first, then double quote and line feed."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _merged_summary(a: Summary, b: Summary) -> Summary:
    return {
        "count": a["count"] + b["count"],
        "sum": a["sum"] + b["sum"],
        "min": min(a["min"], b["min"]),
        "max": max(a["max"], b["max"]),
    }


class MetricsRegistry:
    """Typed store of named counters, gauges and histograms.

    Unknown metric names auto-register as summed counters on first use,
    so ad-hoc telemetry doesn't require a spec — but anything with
    non-default semantics (peak gauges, labeled families) should declare
    one up front.
    """

    def __init__(self, specs: Iterable[MetricSpec] = ()) -> None:
        self._specs: Dict[str, MetricSpec] = {}
        #: plain metrics: name -> number; labeled: name -> {label: number};
        #: histograms: name -> Summary.
        self._values: Dict[str, Union[Number, Dict[str, Number], Summary]] = {}
        for spec in specs:
            self.register(spec)

    # ------------------------------------------------------------------
    # Registration & access
    # ------------------------------------------------------------------
    def register(self, spec: MetricSpec) -> MetricSpec:
        existing = self._specs.get(spec.name)
        if existing is not None:
            return existing
        self._specs[spec.name] = spec
        return spec

    def spec(self, name: str) -> MetricSpec:
        found = self._specs.get(name)
        if found is None:
            found = self.register(MetricSpec(name))
        return found

    def names(self):
        return sorted(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._values

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def inc(
        self, name: str, amount: Number = 1, label: Optional[str] = None
    ) -> None:
        """Add ``amount`` to a counter (or one label of a family)."""
        spec = self.spec(name)
        if spec.labeled:
            if label is None:
                raise ValueError(f"metric {name!r} requires a label")
            family = self._values.setdefault(name, {})
            family[label] = family.get(label, 0) + amount
        else:
            if label is not None:
                raise ValueError(f"metric {name!r} takes no label")
            self._values[name] = self._values.get(name, 0) + amount

    def set_gauge(
        self, name: str, value: Number, label: Optional[str] = None
    ) -> None:
        """Set a gauge to ``value`` (last write wins within one run;
        merging applies the spec's semantic, e.g. ``max`` for peaks)."""
        spec = self.spec(name)
        if spec.kind == "counter":
            raise ValueError(f"metric {name!r} is a counter; use inc()")
        if spec.labeled:
            if label is None:
                raise ValueError(f"metric {name!r} requires a label")
            self._values.setdefault(name, {})[label] = value
        else:
            self._values[name] = value

    def observe(self, name: str, value: Number) -> None:
        """Record one observation into a histogram summary."""
        spec = self.spec(name)
        if spec.kind != "histogram":
            raise ValueError(f"metric {name!r} is not a histogram")
        summary = self._values.get(name)
        if summary is None:
            self._values[name] = {
                "count": 1.0,
                "sum": float(value),
                "min": float(value),
                "max": float(value),
            }
        else:
            summary["count"] += 1
            summary["sum"] += value
            summary["min"] = min(summary["min"], value)
            summary["max"] = max(summary["max"], value)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(self, name: str, label: Optional[str] = None, default: Number = 0):
        value = self._values.get(name)
        if value is None:
            return default
        if isinstance(value, dict) and self.spec(name).labeled:
            if label is None:
                return dict(value)
            return value.get(label, default)
        return value

    def labels(self, name: str) -> Dict[str, Number]:
        """The label -> value map of a labeled family (empty if unset)."""
        value = self._values.get(name)
        if isinstance(value, dict) and self.spec(name).labeled:
            return dict(value)
        return {}

    # ------------------------------------------------------------------
    # The one merge path
    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry, per-metric semantics:

        * ``merge="sum"`` — values add (per label for families);
        * ``merge="max"`` — the peak survives (workers sharing one index
          report a footprint, not a footprint *sum*);
        * histograms — summaries combine exactly.

        Returns ``self`` so call sites can chain.
        """
        # Iterate over list/dict copies: a live service registry may be
        # incremented by worker threads while a metrics scrape merges it
        # into a snapshot, and dicts must not resize mid-iteration.
        for name, theirs in list(other._values.items()):
            spec = self.register(other.spec(name))
            if spec.kind == "histogram":
                mine = self._values.get(name)
                self._values[name] = (
                    dict(theirs) if mine is None
                    else _merged_summary(mine, theirs)
                )
            elif spec.labeled:
                family = self._values.setdefault(name, {})
                for label, value in list(theirs.items()):
                    if spec.merge == "max":
                        family[label] = max(family.get(label, value), value)
                    else:
                        family[label] = family.get(label, 0) + value
            else:
                mine = self._values.get(name)
                if mine is None:
                    self._values[name] = theirs
                elif spec.merge == "max":
                    self._values[name] = max(mine, theirs)
                else:
                    self._values[name] = mine + theirs
        return self

    # ------------------------------------------------------------------
    # Output formats
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict:
        """JSON-friendly dump: ``{"schema": 1, "metrics": {...}}``."""
        metrics: Dict[str, object] = {}
        for name in sorted(self._values):
            value = self._values[name]
            metrics[name] = dict(value) if isinstance(value, dict) else value
        return {"schema": METRICS_SCHEMA, "metrics": metrics}

    def to_prom(self, prefix: str = "repro_") -> str:
        """Prometheus text exposition of every populated metric.

        Histogram summaries become the four series a summary type
        implies — ``_count``/``_sum`` plus ``_min``/``_max`` gauges —
        and label values are escaped per the exposition format
        (backslash, double quote, newline)."""
        lines = []
        for name in sorted(self._values):
            spec = self.spec(name)
            value = self._values[name]
            metric = prefix + name
            kind = "counter" if spec.kind == "counter" else "gauge"
            if spec.help:
                lines.append(f"# HELP {metric} {spec.help}")
            if spec.kind == "histogram":
                lines.append(f"# TYPE {metric} summary")
                lines.append(f"{metric}_count {value['count']:g}")
                lines.append(f"{metric}_sum {value['sum']:g}")
                lines.append(f"{metric}_min {value['min']:g}")
                lines.append(f"{metric}_max {value['max']:g}")
            elif spec.labeled:
                lines.append(f"# TYPE {metric} {kind}")
                for label in sorted(value):
                    escaped = _escape_label_value(str(label))
                    lines.append(
                        f'{metric}{{{spec.label_name}="{escaped}"}} '
                        f"{value[label]:g}"
                    )
            else:
                lines.append(f"# TYPE {metric} {kind}")
                lines.append(f"{metric} {value:g}")
        return "\n".join(lines) + ("\n" if lines else "")
