"""Background HTTP exporter for the live service metrics.

A scrape-based monitoring stack (Prometheus and its lookalikes) wants a
plain-text HTTP endpoint it can poll; the service wants to keep its
stdin/stdout JSON-lines protocol uncluttered.  :class:`MetricsExporter`
bridges the two with the standard library only: a
``ThreadingHTTPServer`` on a daemon thread serving

``GET /metrics``
    Prometheus text exposition format
    (:meth:`~repro.observability.metrics.MetricsRegistry.to_prom`).
``GET /metrics.json``
    The same registry as a JSON object — for drivers that want numbers
    without a prom parser.
``GET /healthz``
    ``ok`` (200) — a liveness probe that costs no registry snapshot.

The exporter never holds a registry: it calls ``provider()`` on every
scrape, so the numbers are as live as the service can make them (the
service's provider folds in scrape-time gauges like queue depth and
healthy-worker count).  A provider exception yields a 500 with the
error text instead of killing the serving thread.

``port=0`` binds an ephemeral port (the default for tests); the bound
port is available as :attr:`MetricsExporter.port`.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

from .metrics import MetricsRegistry

__all__ = ["MetricsExporter"]


class MetricsExporter:
    """Serve a metrics registry over HTTP from a daemon thread."""

    def __init__(
        self,
        provider: Callable[[], MetricsRegistry],
        port: int = 0,
        host: str = "127.0.0.1",
    ) -> None:
        exporter = self

        class _Handler(BaseHTTPRequestHandler):
            def log_message(self, *args) -> None:  # silence stderr spam
                pass

            def do_GET(self) -> None:
                if self.path == "/healthz":
                    self._reply(200, "text/plain; charset=utf-8", "ok\n")
                    return
                if self.path not in ("/metrics", "/metrics.json"):
                    self._reply(404, "text/plain; charset=utf-8", "not found\n")
                    return
                try:
                    registry = exporter.provider()
                    if self.path == "/metrics.json":
                        body = json.dumps(registry.as_dict(), sort_keys=True)
                        content_type = "application/json"
                    else:
                        body = registry.to_prom()
                        content_type = (
                            "text/plain; version=0.0.4; charset=utf-8"
                        )
                except Exception as exc:  # keep the serving thread alive
                    self._reply(
                        500, "text/plain; charset=utf-8", f"error: {exc}\n"
                    )
                    return
                self._reply(200, content_type, body)

            def _reply(self, code: int, content_type: str, body: str) -> None:
                data = body.encode("utf-8")
                self.send_response(code)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                self.wfile.write(data)

        self.provider = provider
        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.daemon_threads = True
        self.host = host
        self.port = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-exporter",
            daemon=True,
        )
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsExporter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
