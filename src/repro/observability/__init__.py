"""Observability: tracing spans, a typed metrics registry, and live
progress — DESIGN.md §9.

The paper's evaluation decomposes every claim into phases (filtering /
refinement / enumeration — Figures 15, 19, 20) and search-space proxies
(recursive calls — Figure 18).  This package is the subsystem that
produces those decompositions for any run of this repo:

* :class:`Tracer` / :class:`NullTracer` — nested spans and instant
  events written as JSON lines with monotonic timestamps; the null
  tracer is the default on every layer so the hot path pays (at most)
  one attribute check when tracing is off.
* :class:`MetricsRegistry` / :class:`MetricSpec` — named counters,
  gauges and histograms with *declared* merge semantics; the single
  ``merge()`` implementation behind ``MatchStats.merge`` and the
  worker / machine folds (sum for work counters, peak for
  ``memory_bytes``).
* :class:`ProgressReporter` — a heartbeat line for long enumerations
  (calls/s, embeddings/s, budget remaining, cardinality-bound ETA).
* :func:`summarize_trace` — validation + the per-phase / per-worker /
  per-request breakdowns behind ``repro trace summarize``.

Service telemetry (DESIGN.md §13) builds on those primitives:

* :class:`FlightRecorder` — bounded ring of per-request lifecycle
  records (``repro flight``, ``{"op": "flight"}``);
* :class:`QueryHistory` — append-only, size-rotated query-history
  store: per-query features + observed phase costs;
* :class:`MetricsExporter` — stdlib HTTP endpoint serving the live
  registry in Prometheus text format (``--metrics-port``).
"""

from __future__ import annotations

from contextlib import contextmanager

from .exporter import MetricsExporter
from .flight import (
    FLIGHT_SCHEMA,
    FlightError,
    FlightRecord,
    FlightRecorder,
    load_flight_records,
    render_explain,
    render_flight,
    validate_flight_record,
)
from .history import (
    HISTORY_SCHEMA,
    HistoryError,
    QueryHistory,
    read_history,
    validate_history_record,
)
from .metrics import METRICS_SCHEMA, MetricSpec, MetricsRegistry
from .progress import ProgressReporter
from .summarize import (
    TraceError,
    TraceSummary,
    read_trace,
    render_summary,
    summarize_trace,
)
from .tracer import NULL_TRACER, NullTracer, Span, TRACE_SCHEMA, Tracer

__all__ = [
    "FLIGHT_SCHEMA",
    "FlightError",
    "FlightRecord",
    "FlightRecorder",
    "HISTORY_SCHEMA",
    "HistoryError",
    "METRICS_SCHEMA",
    "MetricSpec",
    "MetricsExporter",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "ProgressReporter",
    "QueryHistory",
    "Span",
    "TRACE_SCHEMA",
    "TraceError",
    "TraceSummary",
    "Tracer",
    "kernel_events",
    "load_flight_records",
    "read_history",
    "read_trace",
    "render_explain",
    "render_flight",
    "render_summary",
    "summarize_trace",
    "validate_flight_record",
    "validate_history_record",
]


@contextmanager
def kernel_events(tracer):
    """Route sampled kernel-dispatch events into ``tracer`` for the
    duration of the block (restores the previous observer on exit).

    The kernel suite exposes one module-level observer hook
    (:func:`repro.kernels.intersect.set_kernel_observer`) so its hot
    dispatch path never needs a tracer parameter; this context manager
    is the supported way to connect a traced run to it.  A disabled
    tracer installs nothing.
    """
    if not tracer.enabled:
        yield tracer
        return
    from ..kernels.intersect import set_kernel_observer

    previous = set_kernel_observer(tracer.observe_kernel)
    try:
        yield tracer
    finally:
        set_kernel_observer(previous)
