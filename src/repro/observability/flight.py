"""Per-request flight recorder: a bounded ring of request lifecycles.

A resident :class:`~repro.service.service.MatchService` is a black box
per request: counters say *how much* work the service did, but not what
happened to request #4217 — how long it queued, which cache tier served
its index, which plan the matcher chose, whether the watchdog or the
retry policy touched it.  The flight recorder answers exactly that
question, the way an aircraft one does: every request writes a compact
:class:`FlightRecord` of timestamped lifecycle events plus its plan
facts and final counters into a bounded in-memory ring
(:class:`FlightRecorder`), dumpable at any time via the ``repro serve``
``{"op": "flight"}`` control message and renderable with ``repro
flight``.

Event vocabulary (``t`` is seconds since the request was admitted):

``admit``
    Admission decision (``outcome`` = ``admitted``/``rejected``,
    current ``queue_depth``).
``prepare``
    The scheduler picked the request up; ``queue_seconds`` is the time
    it spent waiting in the inbox.
``index``
    Index resolution: ``tier`` (miss/hit/warm/coalesced), whether the
    store was ``transplanted`` onto this labeling, and the
    ``build_seconds`` this request paid (misses only).
``plan``
    Plan facts became available (root, order, per-level candidate
    cardinalities — stored on the record's ``plan`` field).
``planned``
    Execution shape: ``mode`` = ``solo``/``batched``, unit count and
    the predicted ``makespan``/``skew`` for batched jobs.
``solo`` / ``unit``
    One enumeration task finished (per-unit seconds, embeddings,
    recursive calls).
``unit_failed``
    A unit raised (``kind`` = crash/fault/error).
``retry``
    The retry policy re-ran the request (``attempt``, backoff delay).
``worker_crash`` / ``worker_stall``
    The watchdog recovered this request from a dead or condemned
    worker slot.
``final``
    Terminal status resolved.

The ring holds the last ``capacity`` requests (finished or in flight);
older records fall off the end.  Appends are O(1) and lock-free on the
event path (list appends are atomic under the GIL); only ring rotation
takes the recorder lock.

:func:`validate_flight_record` is the schema gate used by the tests and
the CI telemetry job; :func:`render_flight` and :func:`render_explain`
are the human renderers behind ``repro flight`` and ``repro explain``.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from itertools import count
from typing import Dict, List, Optional

__all__ = [
    "FLIGHT_SCHEMA",
    "FlightError",
    "FlightRecord",
    "FlightRecorder",
    "load_flight_records",
    "render_explain",
    "render_flight",
    "validate_flight_record",
]

#: Version stamped into every record dict; bump on incompatible shape
#: changes so downstream parsers can refuse cleanly.
FLIGHT_SCHEMA = 1

#: Default ring capacity when a recorder is enabled without a size.
DEFAULT_FLIGHT_CAPACITY = 256


class FlightError(ValueError):
    """A flight record that violates the schema."""


class FlightRecord:
    """One request's lifecycle: timestamped events + terminal facts.

    Mutated by whichever service thread currently holds the request
    (scheduler, workers, watchdog, retry timers); the event list is
    append-only and appends are GIL-atomic, so no lock is needed on the
    hot path.  :meth:`finish` stamps the terminal fields exactly once
    (first writer wins, mirroring the service's first-resolution rule).
    """

    __slots__ = (
        "request_id", "origin", "events", "plan", "phase_seconds",
        "counters", "status", "cache", "retries", "signature",
        "latency_seconds", "service_seconds", "stop_reason", "error",
        "finished",
    )

    def __init__(self, request_id: int, origin: Optional[float] = None) -> None:
        self.request_id = request_id
        self.origin = time.perf_counter() if origin is None else origin
        self.events: List[Dict] = []
        self.plan: Optional[Dict] = None
        self.phase_seconds: Dict[str, float] = {}
        self.counters: Dict[str, int] = {}
        self.status: Optional[str] = None
        self.cache: Optional[str] = None
        self.retries = 0
        self.signature: Optional[str] = None
        self.latency_seconds = 0.0
        self.service_seconds = 0.0
        self.stop_reason: Optional[str] = None
        self.error: Optional[str] = None
        self.finished = False

    def event(self, ev: str, **detail) -> None:
        """Append one lifecycle event (timestamped against admission).

        The positional parameter is deliberately named after the stored
        ``ev`` key so natural detail keys (``kind=...``, ``status=...``)
        never collide with it.
        """
        self.events.append({
            "t": round(time.perf_counter() - self.origin, 6),
            "ev": ev,
            **detail,
        })

    def finish(
        self,
        status: str,
        cache: Optional[str] = None,
        retries: int = 0,
        signature: Optional[str] = None,
        latency_seconds: float = 0.0,
        service_seconds: float = 0.0,
        stop_reason: Optional[str] = None,
        error: Optional[str] = None,
        plan: Optional[Dict] = None,
        phase_seconds: Optional[Dict[str, float]] = None,
        counters: Optional[Dict[str, int]] = None,
    ) -> None:
        """Stamp the terminal facts (first call wins)."""
        if self.finished:
            return
        self.finished = True
        self.status = status
        self.cache = cache
        self.retries = retries
        self.signature = signature
        self.latency_seconds = latency_seconds
        self.service_seconds = service_seconds
        self.stop_reason = stop_reason
        self.error = error
        if plan is not None:
            self.plan = plan
        if phase_seconds is not None:
            self.phase_seconds = phase_seconds
        if counters is not None:
            self.counters = counters

    def as_dict(self) -> Dict:
        """JSON-ready snapshot (safe to call while events still land —
        the event list is copied atomically)."""
        return {
            "schema": FLIGHT_SCHEMA,
            "request_id": self.request_id,
            "finished": self.finished,
            "status": self.status,
            "cache": self.cache,
            "retries": self.retries,
            "signature": self.signature,
            "latency_seconds": self.latency_seconds,
            "service_seconds": self.service_seconds,
            "stop_reason": self.stop_reason,
            "error": self.error,
            "plan": dict(self.plan) if self.plan is not None else None,
            "phase_seconds": dict(self.phase_seconds),
            "counters": dict(self.counters),
            "events": list(self.events),
        }


class FlightRecorder:
    """Bounded ring buffer of :class:`FlightRecord`\\ s, newest-biased.

    ``capacity`` bounds retained records; admitting request
    ``capacity + 1`` silently drops the oldest record (finished or
    not — a job still holds a reference to its own record, so its
    events keep landing; the ring just no longer serves it).
    """

    def __init__(self, capacity: int = DEFAULT_FLIGHT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.evicted = 0
        self._records: "OrderedDict[int, FlightRecord]" = OrderedDict()
        self._seq = count()
        import threading

        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def begin(self, request_id: int) -> FlightRecord:
        """Open a record for one admitted (or shed) request."""
        record = FlightRecord(request_id)
        with self._lock:
            self._records[next(self._seq)] = record
            while len(self._records) > self.capacity:
                self._records.popitem(last=False)
                self.evicted += 1
        return record

    def records(
        self,
        request_id: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> List[Dict]:
        """Retained records as dicts, oldest first; optionally filtered
        by request id and truncated to the most recent ``limit``."""
        with self._lock:
            snapshot = list(self._records.values())
        out = [
            record.as_dict()
            for record in snapshot
            if request_id is None or record.request_id == request_id
        ]
        if limit is not None and limit >= 0:
            out = out[len(out) - min(limit, len(out)):]
        return out

    def find(self, request_id: int) -> Optional[Dict]:
        """The most recent record of ``request_id`` (None if rotated
        out or never admitted)."""
        found = self.records(request_id=request_id, limit=1)
        return found[0] if found else None


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------
def validate_flight_record(record: Dict) -> Dict:
    """Raise :class:`FlightError` unless ``record`` is a well-formed
    schema-1 flight record; returns it unchanged for chaining."""
    if not isinstance(record, dict):
        raise FlightError("flight record must be an object")
    if record.get("schema") != FLIGHT_SCHEMA:
        raise FlightError(
            f"unsupported flight schema {record.get('schema')!r} "
            f"(expected {FLIGHT_SCHEMA})"
        )
    if not isinstance(record.get("request_id"), int):
        raise FlightError("flight record missing integer request_id")
    status = record.get("status")
    if status is not None and not isinstance(status, str):
        raise FlightError("status must be a string (or null in flight)")
    events = record.get("events")
    if not isinstance(events, list):
        raise FlightError("events must be a list")
    for i, event in enumerate(events):
        if not isinstance(event, dict) or "ev" not in event or "t" not in event:
            raise FlightError(f"event {i} missing ev/t")
        if not isinstance(event["ev"], str):
            raise FlightError(f"event {i}: ev must be a string")
        if not isinstance(event["t"], (int, float)) or event["t"] < 0:
            raise FlightError(f"event {i}: t must be a non-negative number")
    for field in ("phase_seconds", "counters"):
        mapping = record.get(field)
        if not isinstance(mapping, dict):
            raise FlightError(f"{field} must be an object")
        for key, value in mapping.items():
            if not isinstance(value, (int, float)):
                raise FlightError(f"{field}[{key!r}] must be a number")
    plan = record.get("plan")
    if plan is not None and not isinstance(plan, dict):
        raise FlightError("plan must be an object or null")
    return record


def load_flight_records(path: str) -> List[Dict]:
    """Read flight records from ``path`` and validate each.

    Accepts the two shapes the service produces: a JSON object carrying
    a ``records`` array (an ``{"op": "flight"}`` dump line) and plain
    JSONL with one record per line (the slow-query log).
    """
    import json

    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    records: List[Dict] = []
    stripped = text.strip()
    if not stripped:
        raise FlightError(f"{path}: empty file")
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise FlightError(f"{path}:{lineno}: invalid JSON ({exc})")
        if isinstance(payload, dict) and "records" in payload:
            found = payload["records"]
            if not isinstance(found, list):
                raise FlightError(f"{path}:{lineno}: records must be a list")
            records.extend(found)
        else:
            records.append(payload)
    for record in records:
        validate_flight_record(record)
    return records


# ---------------------------------------------------------------------------
# Renderers
# ---------------------------------------------------------------------------
def _format_detail(event: Dict) -> str:
    return " ".join(
        f"{key}={value}"
        for key, value in event.items()
        if key not in ("t", "ev")
    )


def _plan_lines(plan: Optional[Dict]) -> List[str]:
    if not plan:
        return ["plan: (not recorded)"]
    lines = ["plan"]
    root = plan.get("root")
    lines.append(
        f"  root {root} "
        f"({plan.get('root_candidates', '?')} candidates, "
        f"score {plan.get('root_score', 0.0):.2f})"
    )
    order = plan.get("order") or []
    lines.append("  order: " + " ".join(str(u) for u in order))
    levels = plan.get("level_candidates") or []
    if levels:
        lines.append(
            "  level candidates: "
            + " ".join(f"u{u}={n}" for u, n in levels)
        )
    lines.append(
        f"  clusters {plan.get('clusters', '?')}, "
        f"cardinality bound {plan.get('cardinality_bound', '?')}"
    )
    return lines


def _phase_lines(phase_seconds: Dict[str, float]) -> List[str]:
    if not phase_seconds:
        return []
    total = sum(phase_seconds.values())
    lines = ["phases"]
    for name, seconds in sorted(
        phase_seconds.items(), key=lambda kv: -kv[1]
    ):
        share = 100.0 * seconds / total if total else 0.0
        lines.append(f"  {name:<12} {seconds:>10.6f}s {share:>5.1f}%")
    lines.append(f"  {'total':<12} {total:>10.6f}s")
    return lines


def _counter_lines(counters: Dict[str, int]) -> List[str]:
    interesting = [
        (name, value)
        for name, value in sorted(counters.items())
        if value
    ]
    if not interesting:
        return []
    return [
        "counters",
        "  " + " ".join(f"{name}={value}" for name, value in interesting),
    ]


def render_flight(record: Dict) -> str:
    """The full lifecycle view behind ``repro flight``: header, event
    timeline, plan, phases, counters."""
    status = record.get("status") or "(in flight)"
    lines = [
        f"request {record['request_id']} — status {status} "
        f"(cache {record.get('cache') or 'n/a'}, "
        f"retries {record.get('retries', 0)})",
        f"  latency {record.get('latency_seconds', 0.0) * 1e3:.2f}ms "
        f"(service {record.get('service_seconds', 0.0) * 1e3:.2f}ms)",
    ]
    if record.get("error"):
        lines.append(f"  error: {record['error']}")
    if record.get("stop_reason"):
        lines.append(f"  stop reason: {record['stop_reason']}")
    lines.append("timeline")
    for event in record.get("events", ()):
        detail = _format_detail(event)
        lines.append(
            f"  +{event['t']:.6f}s {event['ev']:<14}"
            + (f" {detail}" if detail else "")
        )
    lines.extend(_plan_lines(record.get("plan")))
    lines.extend(_phase_lines(record.get("phase_seconds", {})))
    lines.extend(_counter_lines(record.get("counters", {})))
    return "\n".join(lines)


def render_explain(record: Dict) -> str:
    """The plan-first view behind ``repro explain``: why was this
    request slow — plan facts, then the phase budget, then the
    condensed lifecycle."""
    status = record.get("status") or "(in flight)"
    latency_ms = record.get("latency_seconds", 0.0) * 1e3
    lines = [
        f"slow query: request {record['request_id']} — "
        f"{latency_ms:.1f}ms, status {status}"
    ]
    if record.get("slow_ms") is not None:
        lines[0] += f" (threshold {record['slow_ms']:g}ms)"
    lines.append(
        f"  cache {record.get('cache') or 'n/a'}, "
        f"retries {record.get('retries', 0)}, "
        f"signature {record.get('signature') or 'n/a'}"
    )
    if record.get("error"):
        lines.append(f"  error: {record['error']}")
    lines.extend(_plan_lines(record.get("plan")))
    lines.extend(_phase_lines(record.get("phase_seconds", {})))
    events = record.get("events", ())
    if events:
        lines.append("lifecycle")
        for event in events:
            detail = _format_detail(event)
            lines.append(
                f"  +{event['t']:.6f}s {event['ev']:<14}"
                + (f" {detail}" if detail else "")
            )
    lines.extend(_counter_lines(record.get("counters", {})))
    return "\n".join(lines)
