"""Trace-file validation and per-phase / per-worker summarisation.

``repro trace summarize FILE.jsonl`` renders the Figure 15/19/20-style
decomposition from a trace produced with ``--trace``:

* **phase breakdown** — total seconds per phase (filtering, refinement,
  enumeration, ...) from the ``p`` records, which carry the exact same
  durations as ``MatchStats.phase_seconds``;
* **per-worker / per-machine breakdown** — the same records grouped by
  their ``machine`` / ``worker`` tags, reproducing the per-executor
  bars;
* **per-request breakdown** — service traces stamp every phase with the
  owning request's id (``request=<id>``); those group into one phase
  table per request, so a multi-query service trace reads as
  per-request stories instead of one blended stream;
* **span accounting** — counts and summed durations of the nested
  ``b``/``e`` spans (per-cluster, per-filter-level, ...), plus sampled
  kernel instants.

Validation happens while reading (:func:`read_trace`): the first line
must be a schema-1 ``meta`` event, every line must parse, and within
each thread stream (``tid`` + ``machine`` + ``worker``) begin/end
events must pair LIFO with matching ids and names.  A malformed trace
raises :class:`TraceError` instead of summarising garbage.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from .tracer import TRACE_SCHEMA

__all__ = [
    "TraceError",
    "TraceSummary",
    "read_trace",
    "render_summary",
    "summarize_trace",
]


class TraceError(ValueError):
    """A trace file that violates the event schema."""


def _stream_key(event: Dict) -> Tuple:
    return (
        event.get("machine"),
        event.get("worker"),
        event.get("tid"),
    )


class TraceSummary:
    """Aggregates of one validated trace."""

    def __init__(self) -> None:
        self.events = 0
        #: phase name -> {"seconds": total, "events": n}
        self.phases: Dict[str, Dict[str, float]] = {}
        #: (machine, worker) -> phase name -> seconds
        self.executors: Dict[Tuple, Dict[str, float]] = {}
        #: request id -> phase name -> seconds (phases carrying a
        #: ``request`` tag, i.e. service traces).
        self.requests: Dict[object, Dict[str, float]] = {}
        #: span name -> {"count": n, "seconds": total}
        self.spans: Dict[str, Dict[str, float]] = {}
        #: kernel name -> sampled instant count
        self.kernels: Dict[str, int] = {}
        self.instants = 0

    # -- accumulation ---------------------------------------------------
    def add_phase(self, event: Dict) -> None:
        name = event["name"]
        seconds = float(event["dur"])
        entry = self.phases.setdefault(name, {"seconds": 0.0, "events": 0})
        entry["seconds"] += seconds
        entry["events"] += 1
        executor = (event.get("machine"), event.get("worker"))
        per_phase = self.executors.setdefault(executor, {})
        per_phase[name] = per_phase.get(name, 0.0) + seconds
        request = event.get("request")
        if request is not None:
            per_request = self.requests.setdefault(request, {})
            per_request[name] = per_request.get(name, 0.0) + seconds

    def add_span(self, name: str, seconds: float) -> None:
        entry = self.spans.setdefault(name, {"count": 0, "seconds": 0.0})
        entry["count"] += 1
        entry["seconds"] += seconds

    # -- reads ----------------------------------------------------------
    def phase_seconds(self) -> Dict[str, float]:
        """Phase name -> total seconds (the ``MatchStats`` shape)."""
        return {
            name: entry["seconds"] for name, entry in self.phases.items()
        }

    def total_seconds(self) -> float:
        return sum(entry["seconds"] for entry in self.phases.values())

    def as_dict(self) -> Dict:
        return {
            "schema": TRACE_SCHEMA,
            "events": self.events,
            "phases": {
                name: dict(entry) for name, entry in sorted(self.phases.items())
            },
            "executors": {
                _executor_label(executor): dict(per_phase)
                for executor, per_phase in sorted(
                    self.executors.items(), key=lambda kv: str(kv[0])
                )
            },
            "requests": {
                str(request): dict(per_phase)
                for request, per_phase in sorted(
                    self.requests.items(), key=lambda kv: str(kv[0])
                )
            },
            "spans": {
                name: dict(entry) for name, entry in sorted(self.spans.items())
            },
            "kernels": dict(sorted(self.kernels.items())),
        }


def _executor_label(executor: Tuple) -> str:
    machine, worker = executor
    bits = []
    if machine is not None:
        bits.append(f"machine={machine}")
    if worker is not None:
        bits.append(f"worker={worker}")
    return " ".join(bits) if bits else "main"


def read_trace(path: str) -> TraceSummary:
    """Parse, validate and aggregate one JSONL trace file."""
    summary = TraceSummary()
    #: per-stream stack of open (id, name) spans.
    stacks: Dict[Tuple, List[Tuple[int, str]]] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceError(f"line {lineno}: invalid JSON ({exc})")
            if not isinstance(event, dict) or "ev" not in event:
                raise TraceError(f"line {lineno}: not a trace event")
            kind = event["ev"]
            if summary.events == 0:
                if kind != "meta":
                    raise TraceError(
                        f"line {lineno}: first event must be 'meta', "
                        f"got {kind!r}"
                    )
                if event.get("schema") != TRACE_SCHEMA:
                    raise TraceError(
                        f"line {lineno}: unsupported trace schema "
                        f"{event.get('schema')!r} (expected {TRACE_SCHEMA})"
                    )
                summary.events += 1
                continue
            summary.events += 1
            if kind == "meta":
                continue
            if "t" not in event:
                raise TraceError(f"line {lineno}: event missing 't'")
            if kind == "p":
                if "name" not in event or "dur" not in event:
                    raise TraceError(
                        f"line {lineno}: phase event missing name/dur"
                    )
                if event["dur"] < 0:
                    raise TraceError(f"line {lineno}: negative duration")
                summary.add_phase(event)
            elif kind == "b":
                stacks.setdefault(_stream_key(event), []).append(
                    (event["id"], event["name"])
                )
            elif kind == "e":
                stack = stacks.get(_stream_key(event))
                if not stack:
                    raise TraceError(
                        f"line {lineno}: span end with no open span "
                        f"in its stream"
                    )
                open_id, open_name = stack.pop()
                if open_id != event["id"] or open_name != event["name"]:
                    raise TraceError(
                        f"line {lineno}: span end {event['name']!r}#"
                        f"{event['id']} does not match innermost open "
                        f"span {open_name!r}#{open_id} (improper nesting)"
                    )
                if event.get("dur", 0.0) < 0:
                    raise TraceError(f"line {lineno}: negative duration")
                summary.add_span(event["name"], float(event.get("dur", 0.0)))
            elif kind == "i":
                summary.instants += 1
                if event.get("name") == "kernel":
                    kernel = event.get("kernel", "?")
                    summary.kernels[kernel] = (
                        summary.kernels.get(kernel, 0) + 1
                    )
            else:
                raise TraceError(
                    f"line {lineno}: unknown event kind {kind!r}"
                )
    if summary.events == 0:
        raise TraceError("empty trace (no meta line)")
    unclosed = {
        key: stack for key, stack in stacks.items() if stack
    }
    if unclosed:
        key, stack = next(iter(unclosed.items()))
        raise TraceError(
            f"unclosed span {stack[-1][1]!r}#{stack[-1][0]} in stream "
            f"{key} (begin without end)"
        )
    return summary


def render_summary(summary: TraceSummary) -> str:
    """The human-readable breakdown tables."""
    lines: List[str] = []
    total = summary.total_seconds()

    lines.append("phase breakdown")
    lines.append(f"{'phase':<14} {'seconds':>12} {'share':>7} {'events':>7}")
    for name, entry in sorted(
        summary.phases.items(), key=lambda kv: -kv[1]["seconds"]
    ):
        share = 100.0 * entry["seconds"] / total if total else 0.0
        lines.append(
            f"{name:<14} {entry['seconds']:>12.6f} {share:>6.1f}% "
            f"{int(entry['events']):>7}"
        )
    lines.append(f"{'total':<14} {total:>12.6f}")

    if len(summary.executors) > 1 or any(
        executor != (None, None) for executor in summary.executors
    ):
        lines.append("")
        lines.append("per-executor breakdown")
        lines.append(f"{'executor':<22} {'phase':<14} {'seconds':>12}")
        for executor, per_phase in sorted(
            summary.executors.items(), key=lambda kv: str(kv[0])
        ):
            label = _executor_label(executor)
            for name, seconds in sorted(per_phase.items()):
                lines.append(f"{label:<22} {name:<14} {seconds:>12.6f}")

    if summary.requests:
        lines.append("")
        lines.append("per-request breakdown")
        lines.append(
            f"{'request':<12} {'phase':<14} {'seconds':>12} {'share':>7}"
        )
        for request, per_phase in sorted(
            summary.requests.items(), key=lambda kv: str(kv[0])
        ):
            request_total = sum(per_phase.values())
            for name, seconds in sorted(
                per_phase.items(), key=lambda kv: -kv[1]
            ):
                share = (
                    100.0 * seconds / request_total if request_total else 0.0
                )
                lines.append(
                    f"{str(request):<12} {name:<14} {seconds:>12.6f} "
                    f"{share:>6.1f}%"
                )
            lines.append(
                f"{str(request):<12} {'total':<14} {request_total:>12.6f}"
            )

    if summary.spans:
        lines.append("")
        lines.append("spans")
        lines.append(f"{'name':<20} {'count':>8} {'seconds':>12}")
        for name, entry in sorted(summary.spans.items()):
            lines.append(
                f"{name:<20} {int(entry['count']):>8} "
                f"{entry['seconds']:>12.6f}"
            )

    if summary.kernels:
        lines.append("")
        sampled = " ".join(
            f"{name}={count}" for name, count in sorted(summary.kernels.items())
        )
        lines.append(f"kernel dispatches (sampled): {sampled}")
    return "\n".join(lines)


def summarize_trace(path: str, as_json: bool = False) -> str:
    """Read + validate ``path`` and return the rendered summary (or its
    JSON form)."""
    summary = read_trace(path)
    if as_json:
        return json.dumps(summary.as_dict(), indent=2)
    return render_summary(summary)
