"""Append-only, size-rotated query-history store.

The ROADMAP's workload-adaptive-planning item needs a training
substrate: for every query the service has ever answered, *what did the
query look like* (structural features + the plan the optimizer chose)
and *what did it cost* (observed per-phase seconds and enumeration
counters).  :class:`QueryHistory` is that substrate — a durable JSONL
log keyed by the canonical query signature (the same
``canonical_form`` signature the index cache dedupes on, so
isomorphic queries share a key and their costs can be pooled).

One record per completed request::

    {"schema": 1, "signature": "...", "request_id": 7, "status": "ok",
     "cache": "hit", "retries": 0,
     "latency_seconds": 0.0123, "service_seconds": 0.0101,
     "features": {"query_vertices": 5, "query_edges": 7, ...,
                  "root": 2, "order": [2, 0, ...],
                  "level_candidates": [[2, 14], [0, 9], ...],
                  "cardinality_bound": 120},
     "phase_seconds": {"filter": ..., "enumerate": ...},
     "counters": {"recursive_calls": ..., "embeddings_found": ...}}

Durability model: appends are ``write + flush`` under a lock (one line
per record, so a crash can lose at most the tail line, never corrupt
earlier ones).  When the active file exceeds ``max_bytes`` it is
rotated shift-style (``path`` → ``path.1`` → ``path.2`` …), keeping at
most ``keep`` rotated segments — the same bounded-disk discipline the
index cache's spill tier uses.  ``schema`` is stamped into every record
so a future adaptive planner can refuse (or up-convert) records written
under an older shape instead of mis-training on them.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Dict, List, Optional

__all__ = [
    "HISTORY_SCHEMA",
    "HistoryError",
    "QueryHistory",
    "read_history",
    "validate_history_record",
]

#: Version stamped into every record; bump on incompatible shape changes.
HISTORY_SCHEMA = 1

#: Feature keys every record must carry (plan-derived keys — root,
#: order, level_candidates, cardinality_bound — are optional because a
#: request can fail before a plan exists).
_REQUIRED_FEATURES = ("query_vertices", "query_edges", "query_labels", "max_degree")


class HistoryError(ValueError):
    """A history record or file that violates the schema."""


class QueryHistory:
    """Durable per-request telemetry log with shift rotation.

    Thread-safe: the service appends from its scheduler and retry-timer
    threads concurrently.  The file handle is opened lazily on first
    append so constructing a service with a history path has no
    filesystem effect until traffic arrives.
    """

    def __init__(
        self,
        path: str,
        max_bytes: int = 4_000_000,
        keep: int = 2,
    ) -> None:
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        if keep < 0:
            raise ValueError("keep must be >= 0")
        self.path = path
        self.max_bytes = max_bytes
        self.keep = keep
        self.appended = 0
        self.rotations = 0
        self._handle = None
        self._bytes = 0
        self._closed = False
        self._lock = threading.Lock()

    # -- write path --------------------------------------------------
    def append(self, record: Dict) -> Dict:
        """Stamp the schema version, write one line, rotate if the
        active segment is over budget.  Returns the stamped record."""
        stamped = {"schema": HISTORY_SCHEMA, **record}
        line = json.dumps(stamped, sort_keys=True) + "\n"
        data = line.encode("utf-8")
        with self._lock:
            if self._closed:
                raise HistoryError(f"history store {self.path} is closed")
            if self._handle is None:
                self._open()
            self._handle.write(line)
            self._handle.flush()
            self._bytes += len(data)
            self.appended += 1
            if self._bytes > self.max_bytes:
                self._rotate()
        return stamped

    def _open(self) -> None:
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")
        self._bytes = os.path.getsize(self.path)

    def _rotate(self) -> None:
        """Shift ``path`` → ``path.1`` → … keeping ``keep`` segments."""
        self._handle.close()
        self._handle = None
        if self.keep == 0:
            os.remove(self.path)
        else:
            overflow = f"{self.path}.{self.keep}"
            if os.path.exists(overflow):
                os.remove(overflow)
            for i in range(self.keep - 1, 0, -1):
                src = f"{self.path}.{i}"
                if os.path.exists(src):
                    os.replace(src, f"{self.path}.{i + 1}")
            os.replace(self.path, f"{self.path}.1")
        self.rotations += 1
        self._bytes = 0

    # -- lifecycle ---------------------------------------------------
    def close(self) -> None:
        """Terminal: a closed store refuses further appends (a stray
        late append must not resurrect the file after shutdown)."""
        with self._lock:
            self._closed = True
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "QueryHistory":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- read path ---------------------------------------------------
    def segments(self) -> List[str]:
        """Existing on-disk segments, oldest first."""
        found = [
            f"{self.path}.{i}"
            for i in range(self.keep, 0, -1)
            if os.path.exists(f"{self.path}.{i}")
        ]
        if os.path.exists(self.path):
            found.append(self.path)
        return found

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {
                "appended": self.appended,
                "rotations": self.rotations,
                "active_bytes": self._bytes,
            }


# ---------------------------------------------------------------------------
# Validation / reading
# ---------------------------------------------------------------------------
def validate_history_record(record: Dict) -> Dict:
    """Raise :class:`HistoryError` unless ``record`` is a well-formed
    schema-1 history record; returns it unchanged for chaining."""
    if not isinstance(record, dict):
        raise HistoryError("history record must be an object")
    if record.get("schema") != HISTORY_SCHEMA:
        raise HistoryError(
            f"unsupported history schema {record.get('schema')!r} "
            f"(expected {HISTORY_SCHEMA})"
        )
    if not isinstance(record.get("signature"), str) or not record["signature"]:
        raise HistoryError("history record missing query signature")
    if not isinstance(record.get("request_id"), int):
        raise HistoryError("history record missing integer request_id")
    if not isinstance(record.get("status"), str) or not record["status"]:
        raise HistoryError("history record missing status")
    features = record.get("features")
    if not isinstance(features, dict):
        raise HistoryError("features must be an object")
    for key in _REQUIRED_FEATURES:
        if not isinstance(features.get(key), int):
            raise HistoryError(f"features.{key} must be an integer")
    for field in ("phase_seconds", "counters"):
        mapping = record.get(field)
        if not isinstance(mapping, dict):
            raise HistoryError(f"{field} must be an object")
        for key, value in mapping.items():
            if not isinstance(value, (int, float)):
                raise HistoryError(f"{field}[{key!r}] must be a number")
    for field in ("latency_seconds", "service_seconds"):
        value = record.get(field)
        if not isinstance(value, (int, float)) or value < 0:
            raise HistoryError(f"{field} must be a non-negative number")
    return record


def read_history(
    path: str, validate: bool = True, keep: int = 8
) -> List[Dict]:
    """Read records from ``path`` and any rotated segments next to it,
    oldest first, validating each unless ``validate`` is False."""
    files = [
        f"{path}.{i}" for i in range(keep, 0, -1) if os.path.exists(f"{path}.{i}")
    ]
    if os.path.exists(path):
        files.append(path)
    if not files:
        raise HistoryError(f"{path}: no history segments found")
    records: List[Dict] = []
    for name in files:
        with open(name, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise HistoryError(f"{name}:{lineno}: invalid JSON ({exc})")
                if validate:
                    try:
                        validate_history_record(record)
                    except HistoryError as exc:
                        raise HistoryError(f"{name}:{lineno}: {exc}")
                records.append(record)
    return records
