"""Nested-span tracing with JSON-lines output.

The paper's evaluation is a phase-breakdown story — Figures 15, 19 and
20 decompose runtime into filtering / refinement / enumeration — and a
trace file is how this repo produces that decomposition for *any* run:
every instrumented layer emits events into one append-only JSONL stream
with monotonic (``time.perf_counter``) timestamps.

Event vocabulary (one JSON object per line; ``t`` is seconds since the
tracer's origin):

``{"ev": "meta", "schema": 1, "clock": "perf_counter", ...}``
    First line of every trace; carries the schema version.
``{"ev": "b"|"e", "id": n, "parent": p, "name": ..., "tid": k, ...}``
    Begin/end of a nested **span**.  Spans nest per thread stream
    (``tid`` plus any ``worker``/``machine`` tags): every ``b`` has a
    matching ``e`` with the same ``id`` and ``name``, LIFO-ordered —
    :mod:`repro.observability.summarize` validates exactly that.  The
    ``e`` event carries ``dur`` (seconds).
``{"ev": "p", "name": ..., "dur": s, ...}``
    A **phase** record: a self-contained span whose start/duration were
    measured by the caller (the exact floats that also land in
    ``MatchStats.phase_seconds``, so trace totals and stats totals agree
    bit-for-bit).
``{"ev": "i", "name": ..., ...}``
    An instant event (sampled kernel calls, cache snapshots, progress).

Two tracer flavours share the interface:

* :class:`Tracer` — the real thing: thread-safe writer, per-thread span
  stacks, per-name sampling counters to bound trace volume;
* :class:`NullTracer` — the default everywhere: ``enabled`` is False and
  every method is a no-op returning a shared immutable null span, so the
  hot path pays one attribute check at most when tracing is off.

``tracer.scoped(machine=3)`` returns a lightweight view that stamps the
given tags on every event — how the distributed runtime merges
per-machine span streams into one trace file, and how worker threads tag
their enumeration spans.
"""

from __future__ import annotations

import json
import threading
import time
from itertools import count
from typing import Any, Dict, IO, List, Optional, Union

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TRACE_SCHEMA",
    "Tracer",
]

#: Version stamped into the trace meta line; bump on incompatible event
#: vocabulary changes so downstream parsers can refuse cleanly.
TRACE_SCHEMA = 1

#: Default sampling stride for per-kernel-call instants: one event per
#: this many dispatches keeps the trace small next to the run itself.
DEFAULT_KERNEL_SAMPLE = 64
#: Default sampling stride for per-cluster spans (1 = every cluster).
DEFAULT_CLUSTER_SAMPLE = 1


class Span:
    """One nested span; use as a context manager.

    ``start``/``end`` are raw ``perf_counter`` readings, ``duration``
    their difference — available after ``__exit__``.
    """

    __slots__ = ("_tracer", "name", "tags", "id", "parent", "start", "end")

    def __init__(self, tracer: "Tracer", name: str, tags: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.tags = tags
        self.id = 0
        self.parent: Optional[int] = None
        self.start = 0.0
        self.end = 0.0

    def __enter__(self) -> "Span":
        tracer = self._tracer
        stack = tracer._stack()
        self.parent = stack[-1].id if stack else None
        self.id = tracer._next_id()
        stack.append(self)
        self.start = time.perf_counter()
        tracer._emit({
            "t": self.start - tracer._origin,
            "ev": "b",
            "id": self.id,
            "parent": self.parent,
            "name": self.name,
            **self.tags,
        })
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end = time.perf_counter()
        tracer = self._tracer
        stack = tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        tracer._emit({
            "t": self.end - tracer._origin,
            "ev": "e",
            "id": self.id,
            "name": self.name,
            "dur": self.end - self.start,
            **self.tags,
        })

    @property
    def duration(self) -> float:
        return self.end - self.start


class _NullSpan:
    """Shared, immutable no-op span: the disabled-path context manager."""

    __slots__ = ()
    id = 0
    parent = None
    name = ""
    start = 0.0
    end = 0.0
    duration = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Do-nothing tracer — the default on every instrumented layer.

    ``enabled`` is ``False`` so hot loops can skip even the method call;
    when they don't bother, every method here is still a safe no-op.
    """

    __slots__ = ()
    enabled = False

    def span(self, name: str, **tags) -> _NullSpan:
        return _NULL_SPAN

    def cluster_span(self, pivot: int, **tags) -> _NullSpan:
        return _NULL_SPAN

    def phase(self, name: str, start: float, seconds: float, **tags) -> None:
        return None

    def instant(self, name: str, **tags) -> None:
        return None

    def observe_kernel(self, name, lists, result) -> None:
        return None

    def scoped(self, **tags) -> "NullTracer":
        return self

    def flush(self) -> None:
        return None

    def close(self) -> None:
        return None


#: The shared default instance (tracers are stateless when disabled).
NULL_TRACER = NullTracer()


class Tracer:
    """JSONL span/event writer with per-thread nesting and sampling.

    Parameters
    ----------
    sink:
        A path (opened for writing and closed by :meth:`close`) or any
        object with a ``write`` method (kept open; caller owns it).
    sample_kernel_every:
        Emit one ``kernel`` instant per this many observed dispatches
        (sampling bounds trace volume on intersection-heavy runs).
    sample_cluster_every:
        Emit one per-cluster span per this many clusters.
    tags:
        Tags stamped on every event this tracer (and its scoped views)
        emits — e.g. ``machine=0`` on a distributed machine stream.
    """

    enabled = True

    def __init__(
        self,
        sink: Union[str, IO[str]],
        sample_kernel_every: int = DEFAULT_KERNEL_SAMPLE,
        sample_cluster_every: int = DEFAULT_CLUSTER_SAMPLE,
        tags: Optional[Dict[str, Any]] = None,
    ) -> None:
        if isinstance(sink, str):
            self._sink: IO[str] = open(sink, "w", encoding="utf-8")
            self._owns_sink = True
        else:
            self._sink = sink
            self._owns_sink = False
        self.sample_kernel_every = max(1, int(sample_kernel_every))
        self.sample_cluster_every = max(1, int(sample_cluster_every))
        self._tags = dict(tags or {})
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ids = count(1)
        self._tids: Dict[int, int] = {}
        self._kernel_seen = 0
        self._cluster_seen = 0
        self._closed = False
        self._origin = time.perf_counter()
        self._emit({
            "t": 0.0,
            "ev": "meta",
            "schema": TRACE_SCHEMA,
            "clock": "perf_counter",
            **self._tags,
        })

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _next_id(self) -> int:
        return next(self._ids)  # itertools.count is GIL-atomic

    def _tid(self) -> int:
        ident = threading.get_ident()
        found = self._tids.get(ident)
        if found is None:
            with self._lock:
                found = self._tids.setdefault(ident, len(self._tids))
        return found

    def _emit(self, payload: Dict[str, Any]) -> None:
        payload.setdefault("tid", self._tid())
        line = json.dumps(payload, separators=(",", ":"), default=str)
        with self._lock:
            if not self._closed:
                self._sink.write(line + "\n")

    # ------------------------------------------------------------------
    # Emission API (shared with NullTracer)
    # ------------------------------------------------------------------
    def span(self, name: str, **tags) -> Span:
        """A nested span context manager (begin/end event pair)."""
        if self._tags:
            tags = {**self._tags, **tags}
        return Span(self, name, tags)

    def cluster_span(self, pivot: int, **tags) -> Union[Span, _NullSpan]:
        """A per-cluster child span, subject to cluster sampling."""
        self._cluster_seen += 1
        if (self._cluster_seen - 1) % self.sample_cluster_every:
            return _NULL_SPAN
        return self.span("cluster", pivot=int(pivot), **tags)

    def phase(self, name: str, start: float, seconds: float, **tags) -> None:
        """Record a phase with caller-measured timing.  ``start`` is a
        raw ``perf_counter`` reading; ``seconds`` the exact duration the
        caller also fed to ``MatchStats.add_phase`` — which is what makes
        ``trace summarize`` agree with the stats to the last bit."""
        if self._tags:
            tags = {**self._tags, **tags}
        self._emit({
            "t": max(start - self._origin, 0.0),
            "ev": "p",
            "name": name,
            "dur": seconds,
            **tags,
        })

    def instant(self, name: str, **tags) -> None:
        """A point-in-time event (no duration)."""
        if self._tags:
            tags = {**self._tags, **tags}
        self._emit({
            "t": time.perf_counter() - self._origin,
            "ev": "i",
            "name": name,
            **tags,
        })

    def observe_kernel(self, name, lists, result) -> None:
        """Kernel-dispatch observer (install with
        :func:`repro.kernels.intersect.set_kernel_observer` or the
        :func:`repro.observability.kernel_events` context manager).
        Emits one sampled ``kernel`` instant per
        ``sample_kernel_every`` dispatches."""
        self._kernel_seen += 1
        if (self._kernel_seen - 1) % self.sample_kernel_every:
            return
        sizes = [len(values) for values in lists]
        self.instant(
            "kernel",
            kernel=name,
            k=len(sizes),
            shortest=min(sizes) if sizes else 0,
            longest=max(sizes) if sizes else 0,
            out=len(result),
        )

    def scoped(self, **tags) -> "_ScopedTracer":
        """A view of this tracer that stamps ``tags`` on every event."""
        return _ScopedTracer(self, {**self._tags, **tags})

    def flush(self) -> None:
        with self._lock:
            if not self._closed:
                self._sink.flush()

    def close(self) -> None:
        """Flush, and close the sink if this tracer opened it."""
        with self._lock:
            if self._closed:
                return
            self._sink.flush()
            if self._owns_sink:
                self._sink.close()
            self._closed = True


class _ScopedTracer:
    """Tag-stamping view over a base :class:`Tracer` (shared sink, ids
    and span stacks — events interleave into the same trace)."""

    __slots__ = ("_base", "_scope")
    enabled = True

    def __init__(self, base: Tracer, scope: Dict[str, Any]) -> None:
        self._base = base
        self._scope = scope

    def span(self, name: str, **tags) -> Span:
        return Span(self._base, name, {**self._scope, **tags})

    def cluster_span(self, pivot: int, **tags) -> Union[Span, _NullSpan]:
        base = self._base
        base._cluster_seen += 1
        if (base._cluster_seen - 1) % base.sample_cluster_every:
            return _NULL_SPAN
        return self.span("cluster", pivot=int(pivot), **tags)

    def phase(self, name: str, start: float, seconds: float, **tags) -> None:
        base = self._base
        base._emit({
            "t": max(start - base._origin, 0.0),
            "ev": "p",
            "name": name,
            "dur": seconds,
            **self._scope,
            **tags,
        })

    def instant(self, name: str, **tags) -> None:
        base = self._base
        base._emit({
            "t": time.perf_counter() - base._origin,
            "ev": "i",
            "name": name,
            **self._scope,
            **tags,
        })

    def observe_kernel(self, name, lists, result) -> None:
        base = self._base
        base._kernel_seen += 1
        if (base._kernel_seen - 1) % base.sample_kernel_every:
            return
        sizes = [len(values) for values in lists]
        self.instant(
            "kernel",
            kernel=name,
            k=len(sizes),
            shortest=min(sizes) if sizes else 0,
            longest=max(sizes) if sizes else 0,
            out=len(result),
        )

    def scoped(self, **tags) -> "_ScopedTracer":
        return _ScopedTracer(self._base, {**self._scope, **tags})

    def flush(self) -> None:
        self._base.flush()

    def close(self) -> None:
        # Scoped views never own the sink; closing is the base's job.
        self._base.flush()
