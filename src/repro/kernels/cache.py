"""Bounded memo cache for repeated candidate intersections.

During enumeration the same intersection is recomputed across sibling
subtrees: every partial embedding that reaches query vertex ``u`` with
the same ``(parent candidate, NTE parent candidates)`` combination needs
the same ``TE ∩ NTE`` result, and on symmetry-rich data graphs those
combinations repeat heavily (the same redundancy CEMR's
redundant-extension elimination and l2Match's label-pair caching
target).  :class:`IntersectionCache` memoises them under bounded
insertion-order (FIFO) eviction.

Keys are ``(query vertex, parent candidate, NTE candidate tuple)`` —
everything the intersection result depends on once the index is frozen
*for one query/index pair*.  A private cache therefore lives on one
:class:`~repro.core.enumeration.Enumerator` over one built index;
enumerators are created per run, so index mutations (streaming updates,
refinement) can never leak stale entries.

**Sharing across queries** needs more: the bare ``(u, v_p, NTE)`` key
says nothing about *which* query or data graph produced the entry, so
two different queries hitting the same data graph collide on it — query
vertex 2's TE∩NTE for one pattern is garbage for another.  A shared
cache must only ever be used through :meth:`IntersectionCache.view`,
which prefixes every key with an opaque namespace (the service layer
uses the ``(data fingerprint, query fingerprint, index shape)``
triple); entries written under one namespace are invisible to every
other.  Construct the shared instance with ``threadsafe=True`` so
concurrent probes and FIFO evictions cannot tear the dict.

Cached lists are shared, not copied: callers must treat results as
read-only (the enumerator only iterates them).
"""

from __future__ import annotations

import threading
from typing import Dict, Hashable, List, Optional

__all__ = ["IntersectionCache", "NamespacedCache", "DEFAULT_CACHE_SIZE"]

#: Default entry bound — at ~tens of candidates per cached list this
#: keeps the cache in the low megabytes even on hub-heavy graphs.
DEFAULT_CACHE_SIZE = 4096


class IntersectionCache:
    """Bounded ``key -> List[int]`` memo with hit/miss/eviction counters.

    Eviction is insertion-order FIFO, not LRU: the hit path must cost
    less than recomputing a small intersection, so it does exactly one
    dict probe and one counter increment — no recency bookkeeping.
    (Enumeration walks sibling subtrees back to back, so entries are
    hot immediately after insertion and FIFO ≈ LRU for this access
    pattern at a fraction of the constant cost.)

    ``stats`` (a :class:`~repro.core.stats.MatchStats`) is optional;
    when given, its ``cache_hits`` / ``cache_misses`` /
    ``cache_evictions`` counters are incremented alongside the cache's
    own, so one run's cache behaviour lands in the run's stats without
    the cache depending on the stats module.

    ``maxsize <= 0`` disables storage entirely (every probe misses and
    nothing is kept) — the switch the ablation benchmarks use.
    """

    __slots__ = (
        "maxsize", "hits", "misses", "evictions", "_stats", "_data", "_lock"
    )

    def __init__(
        self,
        maxsize: int = DEFAULT_CACHE_SIZE,
        stats=None,
        threadsafe: bool = False,
    ) -> None:
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._stats = stats
        self._data: Dict[Hashable, List[int]] = {}
        #: None on the single-threaded hot path (zero overhead); a real
        #: lock when the cache is shared across worker threads — two
        #: concurrent FIFO evictions otherwise race on the same oldest
        #: key and one of them KeyErrors.
        self._lock = threading.Lock() if threadsafe else None

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: Hashable) -> Optional[List[int]]:
        """The cached list for ``key``, or ``None`` — an *empty list* is
        a valid cached value, so test the return with ``is None``, not
        truthiness."""
        if self._lock is not None:
            with self._lock:
                return self._get(key)
        return self._get(key)

    def _get(self, key: Hashable) -> Optional[List[int]]:
        found = self._data.get(key)
        if found is None:
            self.misses += 1
            if self._stats is not None:
                self._stats.cache_misses += 1
            return None
        self.hits += 1
        if self._stats is not None:
            self._stats.cache_hits += 1
        return found

    def put(self, key: Hashable, value: List[int]) -> None:
        """Store ``value`` under ``key``, evicting the oldest insertion
        when full."""
        if self._lock is not None:
            with self._lock:
                return self._put(key, value)
        return self._put(key, value)

    def _put(self, key: Hashable, value: List[int]) -> None:
        data = self._data
        if len(data) >= self.maxsize and key not in data:
            if self.maxsize <= 0:
                return
            del data[next(iter(data))]
            self.evictions += 1
            if self._stats is not None:
                self._stats.cache_evictions += 1
        data[key] = value

    def view(self, namespace: Hashable, stats=None) -> "NamespacedCache":
        """A key-disjoint view of this cache: every probe and store is
        silently prefixed with ``namespace``, so independent consumers
        (different queries, different data graphs) can share one bounded
        pool without ever reading each other's entries.  ``stats`` is an
        optional per-run :class:`~repro.core.stats.MatchStats` whose
        cache counters the view increments alongside the shared ones."""
        return NamespacedCache(self, namespace, stats=stats)

    @property
    def hit_rate(self) -> float:
        """Hits over probes (0.0 before any probe)."""
        probes = self.hits + self.misses
        return self.hits / probes if probes else 0.0

    def snapshot(self) -> Dict[str, float]:
        """Counters + occupancy as one JSON-friendly dict — what the
        tracing layer records as a ``cache`` instant event."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._data),
            "maxsize": self.maxsize,
            "hit_rate": round(self.hit_rate, 6),
        }

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        self._data.clear()


class NamespacedCache:
    """A namespaced facade over a shared :class:`IntersectionCache`.

    Satisfies the same ``get``/``put`` surface the enumerator uses, so
    it can be injected via ``Enumerator(cache=...)``.  Keys are wrapped
    as ``(namespace, key)`` before touching the parent, which is what
    makes cross-query sharing sound: the bare enumeration key ``(u,
    v_p, NTE tuple)`` is only unique *within* one query/index pair.

    Hit/miss counters book into the parent (shared totals) and, when a
    per-run ``stats`` object is given, into that run's ``cache_hits`` /
    ``cache_misses`` / ``cache_evictions`` too — so concurrent requests
    sharing one pool still report their own cache behaviour without
    bleeding counters into each other.
    """

    __slots__ = ("parent", "namespace", "_stats")

    def __init__(
        self, parent: IntersectionCache, namespace: Hashable, stats=None
    ) -> None:
        self.parent = parent
        self.namespace = namespace
        self._stats = stats

    @property
    def maxsize(self) -> int:
        return self.parent.maxsize

    def get(self, key: Hashable) -> Optional[List[int]]:
        found = self.parent.get((self.namespace, key))
        if self._stats is not None:
            if found is None:
                self._stats.cache_misses += 1
            else:
                self._stats.cache_hits += 1
        return found

    def put(self, key: Hashable, value: List[int]) -> None:
        evictions_before = self.parent.evictions
        self.parent.put((self.namespace, key), value)
        if self._stats is not None:
            self._stats.cache_evictions += (
                self.parent.evictions - evictions_before
            )

    def snapshot(self) -> Dict[str, float]:
        """The parent's counters (the namespace itself keeps no tally
        beyond the optional per-run stats)."""
        return self.parent.snapshot()
