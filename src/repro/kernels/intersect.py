"""Sorted-set intersection kernels (k-way, strictly increasing inputs).

Three interchangeable kernels plus an adaptive dispatcher:

* :func:`intersect_merge` — k-way linear merge.  Cost ``O(Σ|L_i|)``;
  optimal when the lists are of comparable length, because every element
  is visited once with no search overhead.
* :func:`intersect_gallop` — the shortest list drives; each other list
  is probed with exponential (galloping) search from a resumable
  pointer.  Cost ``O(|L_min| · Σ log(gap_i))``; the kernel of choice for
  skewed size ratios (a 50-element NTE list against a 50 000-element hub
  candidate list), where merge would walk the long list end to end.
* :func:`intersect_bitset` — lists are rasterised into boolean masks
  over the shared value span and combined word-parallel (numpy when
  available — it is a declared dependency — else big-int ``&``).  Cost
  ``O(Σ|L_i| + span/8)``; wins on dense candidate domains (small label
  classes after filtering, where the lists cover much of a small span).

All kernels require each input list to be **strictly increasing** — the
invariant CECI maintains for candidate lists and adjacency tuples.  The
module-level sorted-input check (:func:`set_check_sorted`, or the
``REPRO_CHECK_SORTED`` environment variable) makes every kernel assert
that invariant, at ``O(Σ|L_i|)`` per call; it is off by default so the
hot path pays nothing.

The dispatcher (:func:`choose_kernel` / :func:`dispatch`) inspects only
list lengths and endpoint values — O(k) — so adaptivity is effectively
free next to the intersection itself.
"""

from __future__ import annotations

import os
from bisect import bisect_left
from typing import Callable, Dict, List, Sequence, Tuple

try:  # numpy is a declared dependency, but the kernels degrade gracefully
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

__all__ = [
    "KERNEL_NAMES",
    "KERNEL_CHOICES",
    "GALLOP_RATIO",
    "BITSET_MAX_SPAN",
    "BITSET_MIN_DENSITY",
    "BITSET_MIN_SHORTEST",
    "choose_kernel",
    "dispatch",
    "expand_blocks",
    "intersect",
    "intersect_merge",
    "intersect_gallop",
    "intersect_bitset",
    "intersect_ndarray",
    "kernel_observer",
    "member_mask",
    "searchsorted_blocks",
    "maybe_assert_sorted",
    "set_check_sorted",
    "set_kernel_observer",
    "sorted_checks_enabled",
]

SortedList = Sequence[int]

#: The real kernels, in dispatch-priority order.
KERNEL_NAMES: Tuple[str, ...] = ("merge", "gallop", "bitset")
#: What callers may ask for (``auto`` = adaptive dispatch).
KERNEL_CHOICES: Tuple[str, ...] = ("auto",) + KERNEL_NAMES

#: Dispatch to galloping when the longest list is at least this many
#: times the shortest — below that, merge's branch-free scan wins.
GALLOP_RATIO = 8
#: Never rasterise a span wider than this into a bitset (memory bound:
#: 64 KiB span -> 8 KiB masks).
BITSET_MAX_SPAN = 1 << 16
#: Bitset needs the *shortest* list to cover at least this fraction of
#: the shared span, otherwise the masks are mostly zeros and merge or
#: gallop touches far fewer words (measured crossover ~1/16; 1/8 keeps
#: a safety margin for the rasterisation cost).
BITSET_MIN_DENSITY = 1 / 8
#: ...and at least this many elements: rasterisation has a fixed setup
#: cost (mask allocation, array conversion) that merge undercuts on
#: small lists regardless of density (measured crossover ~300 elements).
BITSET_MIN_SHORTEST = 256

_check_sorted = os.environ.get("REPRO_CHECK_SORTED", "") not in ("", "0")


def set_check_sorted(enabled: bool) -> None:
    """Globally enable/disable the debug sorted-input assertion."""
    global _check_sorted
    _check_sorted = bool(enabled)


def sorted_checks_enabled() -> bool:
    """Whether kernels currently assert their inputs are sorted."""
    return _check_sorted


#: Optional dispatch observer ``fn(name, lists, result)`` — the hook the
#: tracing layer attaches to (see ``repro.observability.kernel_events``).
#: A module-level slot instead of a dispatch parameter keeps the hot path
#: at one ``is None`` check when nothing is listening.
_KERNEL_OBSERVER = None


def set_kernel_observer(observer):
    """Install ``observer(name, lists, result)`` on every non-trivial
    dispatch; pass ``None`` to detach.  Returns the previous observer so
    callers can restore it."""
    global _KERNEL_OBSERVER
    previous = _KERNEL_OBSERVER
    _KERNEL_OBSERVER = observer
    return previous


def kernel_observer():
    """The currently installed dispatch observer (or ``None``)."""
    return _KERNEL_OBSERVER


def maybe_assert_sorted(lists: Sequence[SortedList]) -> None:
    """Debug-mode guard: raise ``AssertionError`` on a non-strictly-
    increasing input list when checks are enabled; no-op otherwise."""
    if not _check_sorted:
        return
    for values in lists:
        for i in range(1, len(values)):
            if values[i - 1] >= values[i]:
                raise AssertionError(
                    f"intersection input not strictly increasing at "
                    f"position {i}: {values[i - 1]!r} >= {values[i]!r}"
                )


# ----------------------------------------------------------------------
# Kernels
# ----------------------------------------------------------------------
def _merge_pair(a: SortedList, b: SortedList) -> List[int]:
    """Two-pointer linear merge intersection of two sorted lists."""
    out: List[int] = []
    append = out.append
    i = j = 0
    na, nb = len(a), len(b)
    while i < na and j < nb:
        x = a[i]
        y = b[j]
        if x == y:
            append(x)
            i += 1
            j += 1
        elif x < y:
            i += 1
        else:
            j += 1
    return out


def intersect_merge(lists: Sequence[SortedList]) -> List[int]:
    """k-way intersection by iterated two-pointer merge, shortest lists
    first so the running result shrinks as early as possible."""
    maybe_assert_sorted(lists)
    if not lists:
        return []
    if len(lists) == 1:
        return list(lists[0])
    if len(lists) == 2:
        a, b = lists
        return _merge_pair(a, b) if len(a) <= len(b) else _merge_pair(b, a)
    order = sorted(range(len(lists)), key=lambda i: len(lists[i]))
    result = list(lists[order[0]])
    for i in order[1:]:
        if not result:
            return result
        result = _merge_pair(result, lists[i])
    return result


def _gallop_to(values: SortedList, target: int, lo: int, hi: int) -> int:
    """Leftmost index in ``values[lo:hi]`` whose element is >= ``target``,
    found by exponential probing followed by a bounded binary search."""
    if lo >= hi or values[lo] >= target:
        return lo
    # values[lo] < target: gallop the bound outward.
    step = 1
    prev = lo
    probe = lo + 1
    while probe < hi and values[probe] < target:
        prev = probe
        step <<= 1
        probe = lo + step
    return bisect_left(values, target, prev + 1, min(probe, hi))


def intersect_gallop(lists: Sequence[SortedList]) -> List[int]:
    """k-way intersection with the shortest list driving and galloping
    probes (resumable pointers) into the others."""
    maybe_assert_sorted(lists)
    if not lists:
        return []
    if len(lists) == 1:
        return list(lists[0])
    if len(lists) == 2:
        a, b = lists
        if len(a) > len(b):
            a, b = b, a
        out: List[int] = []
        append = out.append
        j = 0
        nb = len(b)
        for v in a:
            j = _gallop_to(b, v, j, nb)
            if j >= nb:
                return out
            if b[j] == v:
                append(v)
        return out
    order = sorted(range(len(lists)), key=lambda i: len(lists[i]))
    smallest = lists[order[0]]
    rest = [lists[i] for i in order[1:]]
    pointers = [0] * len(rest)
    lengths = [len(values) for values in rest]
    out: List[int] = []
    append = out.append
    for v in smallest:
        keep = True
        for i, other in enumerate(rest):
            j = _gallop_to(other, v, pointers[i], lengths[i])
            pointers[i] = j
            if j >= lengths[i] or other[j] != v:
                keep = False
                if j >= lengths[i]:
                    return out  # a probe list is exhausted: done
                break
        if keep:
            append(v)
    return out


#: ``_BYTE_BITS[b]`` — the set bit offsets of byte value ``b``; decodes
#: an intersection mask byte-at-a-time instead of bit-at-a-time.
_BYTE_BITS: Tuple[Tuple[int, ...], ...] = tuple(
    tuple(bit for bit in range(8) if byte >> bit & 1) for byte in range(256)
)


def intersect_bitset(lists: Sequence[SortedList]) -> List[int]:
    """k-way intersection through bit masks over the shared value span.

    Each list is rasterised into a boolean mask (one bit per value in
    ``[lo, hi]``, where the window is the intersection of the lists'
    value ranges), the masks are AND-ed word-parallel, and the surviving
    positions are decoded.  Values outside the window can't be in the
    intersection and are skipped during rasterisation.  With numpy
    (a declared dependency) rasterise/AND/decode all run at C speed;
    without it a bytearray/big-int fallback keeps the kernel available.
    """
    maybe_assert_sorted(lists)
    if not lists:
        return []
    if len(lists) == 1:
        return list(lists[0])
    if any(len(values) == 0 for values in lists):
        return []
    lo = max(values[0] for values in lists)
    hi = min(values[-1] for values in lists)
    if lo > hi:
        return []
    span = hi - lo + 1
    if _np is not None:
        acc = None
        for values in lists:
            arr = _np.asarray(values, dtype=_np.int64)
            arr = arr[(arr >= lo) & (arr <= hi)] - lo
            mask = _np.zeros(span, dtype=bool)
            mask[arr] = True
            acc = mask if acc is None else acc & mask
            if not acc.any():
                return []
        return (_np.flatnonzero(acc) + lo).tolist()
    nbytes = (span + 7) >> 3
    acc = -1  # all-ones sentinel; first mask replaces it via &
    for values in lists:
        bits = bytearray(nbytes)
        start = bisect_left(values, lo)
        for k in range(start, len(values)):
            v = values[k]
            if v > hi:
                break
            offset = v - lo
            bits[offset >> 3] |= 1 << (offset & 7)
        acc &= int.from_bytes(bits, "little")
        if not acc:
            return []
    out: List[int] = []
    append = out.append
    byte_bits = _BYTE_BITS
    for byte_index, byte in enumerate(acc.to_bytes(nbytes, "little")):
        if byte:
            base = lo + (byte_index << 3)
            for bit in byte_bits[byte]:
                append(base + bit)
    return out


# ----------------------------------------------------------------------
# Batched (frontier-at-a-time) primitives
# ----------------------------------------------------------------------
# The set-at-a-time enumeration engine (repro.core.batch) probes one CSR
# triple with a whole frontier of keys at once.  These three primitives
# are the vectorised counterparts of ``lookup_pairs`` + membership
# testing: one ``np.searchsorted`` over all probes replaces one binary
# search per partial embedding.  All inputs/outputs are int64 arrays.


def searchsorted_blocks(keys, offsets, probes):
    """Locate the value block of each probe key in a ``(keys, offsets,
    values)`` CSR triple.

    Returns ``(starts, counts)`` int64 arrays of ``len(probes)``:
    ``values[starts[i]:starts[i]+counts[i]]`` are probe ``i``'s values
    (``counts[i] == 0`` when the key is absent).  Vectorised equivalent
    of calling ``lookup_pairs`` once per probe.
    """
    n = len(keys)
    total = len(probes)
    if n == 0 or total == 0:
        zeros = _np.zeros(total, dtype=_np.int64)
        return zeros, zeros.copy()
    idx = _np.searchsorted(keys, probes)
    idx_c = _np.minimum(idx, n - 1)
    found = keys[idx_c] == probes
    starts = _np.where(found, offsets[idx_c], 0)
    counts = _np.where(found, offsets[idx_c + 1] - offsets[idx_c], 0)
    return starts.astype(_np.int64, copy=False), counts.astype(
        _np.int64, copy=False
    )


def expand_blocks(values, starts, counts):
    """Gather the ragged value blocks located by
    :func:`searchsorted_blocks` into flat arrays.

    Returns ``(rows, out)``: ``out`` is every block's values
    concatenated in probe order, ``rows[i]`` the probe index that
    produced ``out[i]``.  This is the frontier-expansion gather: one
    partial embedding (probe) fans out into ``counts[i]`` extensions.
    """
    counts = _np.asarray(counts, dtype=_np.int64)
    total = int(counts.sum())
    if total == 0:
        empty = _np.empty(0, dtype=_np.int64)
        return empty, empty.copy()
    rows = _np.repeat(_np.arange(len(counts), dtype=_np.int64), counts)
    ends = _np.cumsum(counts)
    firsts = ends - counts
    within = _np.arange(total, dtype=_np.int64) - _np.repeat(firsts, counts)
    return rows, values[_np.repeat(starts, counts) + within]


def member_mask(haystack, needles):
    """Boolean mask: which ``needles`` occur in the sorted ``haystack``.

    One vectorised ``np.searchsorted`` — the batched form of the
    per-candidate binary-search membership test used by NTE filtering.
    """
    n = len(haystack)
    if n == 0:
        return _np.zeros(len(needles), dtype=bool)
    pos = _np.minimum(_np.searchsorted(haystack, needles), n - 1)
    return haystack[pos] == needles


def intersect_ndarray(lists: Sequence[SortedList]) -> "SortedList":
    """k-way intersection of sorted numpy int64 arrays, fully vectorised.

    The shortest array drives; each other array is probed with one
    ``np.searchsorted`` (vectorised galloping) and the survivors are
    kept by boolean mask.  This is the kernel the compact CECI store
    routes its zero-copy candidate slices through: no element boxing,
    no per-call list materialisation, and the result is again an int64
    array that downstream consumers can slice or iterate.

    Requires numpy; :func:`dispatch` only selects it when every input
    is already an ``ndarray``.
    """
    maybe_assert_sorted(lists)
    if not lists:
        return _np.empty(0, dtype=_np.int64)
    order = sorted(range(len(lists)), key=lambda i: len(lists[i]))
    current = lists[order[0]]
    for i in order[1:]:
        if len(current) == 0:
            break
        other = lists[i]
        if len(other) == 0:
            return other[:0]
        probes = _np.searchsorted(other, current)
        probes[probes == len(other)] = len(other) - 1
        current = current[other[probes] == current]
    return current


_KERNELS: Dict[str, Callable[[Sequence[SortedList]], List[int]]] = {
    "merge": intersect_merge,
    "gallop": intersect_gallop,
    "bitset": intersect_bitset,
}


# ----------------------------------------------------------------------
# Adaptive dispatch
# ----------------------------------------------------------------------
def choose_kernel(lists: Sequence[SortedList]) -> str:
    """Pick a kernel for ``lists`` (>= 2 non-empty sorted lists).

    Rules, in order (see DESIGN.md §7):

    1. longest/shortest >= ``GALLOP_RATIO`` → ``gallop`` (skewed sizes:
       driving the short list skips most of the long one);
    2. shortest list >= ``BITSET_MIN_SHORTEST`` elements, shared span <=
       ``BITSET_MAX_SPAN`` and the shortest list covers >=
       ``BITSET_MIN_DENSITY`` of it → ``bitset`` (dense domain:
       word-parallel AND beats element-at-a-time compares);
    3. otherwise → ``merge``.
    """
    shortest = longest = len(lists[0])
    for values in lists[1:]:
        n = len(values)
        if n < shortest:
            shortest = n
        elif n > longest:
            longest = n
    if longest >= GALLOP_RATIO * shortest:
        return "gallop"
    if shortest >= BITSET_MIN_SHORTEST:
        lo = max(values[0] for values in lists)
        hi = min(values[-1] for values in lists)
        span = hi - lo + 1
        if 0 < span <= BITSET_MAX_SPAN and (
            shortest >= span * BITSET_MIN_DENSITY
        ):
            return "bitset"
    return "merge"


def dispatch(
    lists: Sequence[SortedList], kernel: str = "auto"
) -> Tuple[str, SortedList]:
    """Intersect ``lists`` and report which kernel did the work.

    Returns ``(name, result)``; ``name`` is ``"trivial"`` for the cases
    no kernel ever sees (no lists, a single list, an empty input list),
    ``"array"`` when every input is a sorted numpy array and ``auto``
    dispatch routes through :func:`intersect_ndarray` (the result is
    then itself an int64 array), otherwise one of :data:`KERNEL_NAMES`.
    ``kernel="auto"`` applies :func:`choose_kernel`; a concrete name
    forces that kernel.

    The two-list case is enumeration's hot path (one TE list against one
    NTE list), so it is special-cased to dodge the generic O(k) scans.
    """
    if _check_sorted:
        maybe_assert_sorted(lists)
    if len(lists) == 2:
        a, b = lists
        if len(a) == 0 or len(b) == 0:
            return "trivial", []
        if (
            kernel == "auto"
            and _np is not None
            and isinstance(a, _np.ndarray)
            and isinstance(b, _np.ndarray)
        ):
            # Compact-store slices: stay in array land, zero boxing.
            result = intersect_ndarray(lists)
            if _KERNEL_OBSERVER is not None:
                _KERNEL_OBSERVER("array", lists, result)
            return "array", result
        if kernel == "auto":
            na = len(a)
            nb = len(b)
            shortest, longest = (na, nb) if na <= nb else (nb, na)
            if longest >= GALLOP_RATIO * shortest:
                name = "gallop"
            elif shortest >= BITSET_MIN_SHORTEST:
                lo = a[0] if a[0] > b[0] else b[0]
                hi = a[-1] if a[-1] < b[-1] else b[-1]
                span = hi - lo + 1
                if 0 < span <= BITSET_MAX_SPAN and (
                    shortest >= span * BITSET_MIN_DENSITY
                ):
                    name = "bitset"
                else:
                    name = "merge"
            else:
                name = "merge"
        else:
            name = kernel
            if name not in _KERNELS:
                raise ValueError(
                    f"unknown intersection kernel {kernel!r}; "
                    f"expected one of {KERNEL_CHOICES}"
                )
        result = _KERNELS[name](lists)
        if _KERNEL_OBSERVER is not None:
            _KERNEL_OBSERVER(name, lists, result)
        return name, result
    if not lists:
        return "trivial", []
    if len(lists) == 1:
        only = lists[0]
        if _np is not None and isinstance(only, _np.ndarray):
            return "trivial", only
        return "trivial", list(only)
    for values in lists:
        if len(values) == 0:
            return "trivial", []
    if kernel == "auto" and _np is not None and all(
        isinstance(values, _np.ndarray) for values in lists
    ):
        result = intersect_ndarray(lists)
        if _KERNEL_OBSERVER is not None:
            _KERNEL_OBSERVER("array", lists, result)
        return "array", result
    if kernel == "auto":
        name = choose_kernel(lists)
    elif kernel in _KERNELS:
        name = kernel
    else:
        raise ValueError(
            f"unknown intersection kernel {kernel!r}; "
            f"expected one of {KERNEL_CHOICES}"
        )
    result = _KERNELS[name](lists)
    if _KERNEL_OBSERVER is not None:
        _KERNEL_OBSERVER(name, lists, result)
    return name, result


def intersect(lists: Sequence[SortedList], kernel: str = "auto") -> SortedList:
    """Plain intersection result (dispatch without the kernel name)."""
    return dispatch(lists, kernel)[1]
