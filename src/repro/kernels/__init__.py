"""Adaptive sorted-set intersection kernels and candidate caching.

The k-way intersection of TE/NTE candidate lists is the enumeration
primitive of CECI (Lemma 2).  This subpackage provides three
interchangeable kernels — linear merge, galloping search, and bitset —
behind an adaptive dispatcher that picks by size ratio and density, plus
a bounded memo cache for intersections repeated across sibling subtrees.
See DESIGN.md §7 for the dispatch rules and cache policy.
"""

from .cache import DEFAULT_CACHE_SIZE, IntersectionCache
from .intersect import (
    BITSET_MAX_SPAN,
    BITSET_MIN_DENSITY,
    BITSET_MIN_SHORTEST,
    GALLOP_RATIO,
    KERNEL_CHOICES,
    KERNEL_NAMES,
    choose_kernel,
    dispatch,
    expand_blocks,
    intersect,
    intersect_bitset,
    intersect_gallop,
    intersect_merge,
    intersect_ndarray,
    kernel_observer,
    maybe_assert_sorted,
    member_mask,
    searchsorted_blocks,
    set_check_sorted,
    set_kernel_observer,
    sorted_checks_enabled,
)

__all__ = [
    "BITSET_MAX_SPAN",
    "BITSET_MIN_DENSITY",
    "BITSET_MIN_SHORTEST",
    "DEFAULT_CACHE_SIZE",
    "GALLOP_RATIO",
    "IntersectionCache",
    "KERNEL_CHOICES",
    "KERNEL_NAMES",
    "choose_kernel",
    "dispatch",
    "expand_blocks",
    "intersect",
    "intersect_bitset",
    "intersect_gallop",
    "intersect_merge",
    "intersect_ndarray",
    "kernel_observer",
    "maybe_assert_sorted",
    "member_mask",
    "searchsorted_blocks",
    "set_check_sorted",
    "set_kernel_observer",
    "sorted_checks_enabled",
]
