"""Cross-query index cache — the warm path of the resident service.

Building a CECI (filter + refine + freeze) dominates small-query latency,
yet the frozen :class:`~repro.core.store.CompactCECI` depends only on the
*(data graph, query graph up to isomorphism)* pair — not on the request's
limit, budget, kernel or symmetry setting (the matcher never consults the
symmetry breaker while building).  :class:`IndexCache` therefore keys
frozen stores by ``(data fingerprint, canonical query signature)`` and
serves every structurally-equal request from one build:

* **hit** — the store is resident in the LRU;
* **warm** — the LRU evicted it, but the eviction spilled a CECIIDX3
  blob (:func:`~repro.core.persist.dump_store_bytes`) into ``spill_dir``
  and reviving the arrays is far cheaper than rebuilding;
* **coalesced** — another request is building the same key right now;
  this one waits on the in-flight build instead of duplicating it;
* **miss** — this request pays for the build (and populates the cache).

Isomorphic-but-relabeled queries share a cache slot.  The cached store
was built for one *representative* labeling, so :meth:`IndexCache.adapt`
transplants it onto the request's labeling: the canonical orders of the
two graphs compose into an isomorphism ``sigma`` (see
:func:`~repro.core.automorphism.canonical_form`), and every per-query-
vertex array is re-indexed through ``sigma`` while the query tree is
rebuilt with explicitly mapped parents (BFS tie-breaking is labeling-
dependent, so the parents must be carried, not re-derived).  The
transplanted index is *array-identical* to the cached one — data-vertex
content is untouched — so enumeration from it yields exactly the
embedding set of the request's query.  ``adapt`` re-verifies that
``sigma`` is a labeled isomorphism before trusting it, so even a
signature collision degrades to a fresh build, never a wrong answer.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

from ..core.automorphism import canonical_form
from ..core.persist import ChecksumError, dump_store_bytes, load_store_bytes
from ..core.query_tree import QueryTree
from ..core.store import CompactCECI, PairArrays
from ..graph import Graph

__all__ = ["CacheEntry", "IndexCache", "transplant_store"]


class CacheEntry:
    """One cached frozen index plus what :meth:`IndexCache.adapt` needs
    to re-target it: the representative query's canonical order and the
    build cost (for the warm-speedup accounting).  ``blob`` memoizes the
    entry's CECIIDX3 serialization for the sharded service's publish
    path (see :meth:`IndexCache.serialized`)."""

    __slots__ = (
        "key", "store", "canon_order", "build_seconds", "hits", "blob",
    )

    def __init__(
        self,
        key: Tuple[str, str],
        store: CompactCECI,
        canon_order: Tuple[int, ...],
        build_seconds: float,
    ) -> None:
        self.key = key
        self.store = store
        self.canon_order = canon_order
        self.build_seconds = build_seconds
        self.hits = 0
        self.blob: Optional[bytes] = None


def transplant_store(
    store: CompactCECI, query: Graph, sigma: List[int]
) -> CompactCECI:
    """Re-index a frozen store built for ``store.tree.query`` onto the
    isomorphic ``query`` via the vertex map ``sigma`` (representative
    vertex ``u`` plays the role of ``sigma[u]``).

    Only query-vertex-indexed containers move; the int64 candidate
    arrays themselves (data-vertex content) are shared untouched.  The
    tree is rebuilt with the *mapped* parents so it is exactly the
    relabeled original — re-deriving it by BFS could pick different
    parents and silently mismatch the TE/NTE arrays.
    """
    tree = store.tree
    n = query.num_vertices
    root = sigma[tree.root]
    order = [sigma[u] for u in tree.order]
    parents = [-1] * n
    for u in range(n):
        p = tree.parent[u]
        parents[sigma[u]] = sigma[p] if p >= 0 else -1
    mapped_tree = QueryTree(query, root, order, parents=parents)
    te: List[Optional[PairArrays]] = [None] * n
    nte: List[Optional[Dict[int, PairArrays]]] = [None] * n
    card: List[Optional[Tuple]] = [None] * n
    for u in range(n):
        te[sigma[u]] = store.te[u]
        nte[sigma[u]] = {
            sigma[u_n]: triple for u_n, triple in store.nte[u].items()
        }
        card[sigma[u]] = store.card[u]
    return CompactCECI(
        mapped_tree,
        store.data,
        store.pivots,
        te,  # type: ignore[arg-type]
        nte,  # type: ignore[arg-type]
        card,  # type: ignore[arg-type]
        nte_built=store.nte_built,
    )


def _is_isomorphism(a: Graph, b: Graph, sigma: List[int]) -> bool:
    """Whether ``sigma`` maps ``a`` onto ``b`` preserving labels and
    adjacency — the cheap O(n + m) certificate check that makes a
    canonical-signature collision harmless."""
    if a.num_vertices != b.num_vertices or a.num_edges != b.num_edges:
        return False
    if sorted(sigma) != list(range(a.num_vertices)):
        return False
    for u in a.vertices():
        if a.labels_of(u) != b.labels_of(sigma[u]):
            return False
    for s, d in a.edges:
        if not b.has_edge(sigma[s], sigma[d]):
            return False
    return True


class IndexCache:
    """Bounded LRU of frozen stores for one data graph, with a spill
    tier and in-flight build coalescing.

    Thread-safe.  ``get_or_build`` blocks only the requests that truly
    depend on the same key: the LRU lock is never held while building,
    loading a spilled blob, or waiting on another request's build.
    """

    #: ``get_or_build``'s second return value.
    TAGS = ("hit", "warm", "coalesced", "miss")

    def __init__(
        self,
        data: Graph,
        capacity: int = 32,
        spill_dir: Optional[str] = None,
        spill_max_bytes: Optional[int] = None,
        metrics=None,
        fault_plan=None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if spill_max_bytes is not None and spill_max_bytes < 1:
            raise ValueError("spill_max_bytes must be >= 1")
        self.data = data
        self.data_fingerprint = data.fingerprint()
        self.capacity = capacity
        self.spill_dir = spill_dir
        self.spill_max_bytes = spill_max_bytes
        if spill_dir is not None:
            os.makedirs(spill_dir, exist_ok=True)
        self.metrics = metrics
        #: Seeded FaultPlan consulted at the spill write/read points
        #: (torn writes, corrupted reads) — the service chaos harness.
        self.fault_plan = fault_plan
        self._lru: "OrderedDict[Tuple[str, str], CacheEntry]" = OrderedDict()
        self._inflight: Dict[Tuple[str, str], threading.Event] = {}
        self._lock = threading.Lock()
        #: Spill files in LRU order (path -> bytes on disk); pre-existing
        #: blobs found in spill_dir join in mtime order so a restarted
        #: service keeps honouring the byte bound.
        self._spill_files: "OrderedDict[str, int]" = OrderedDict()
        self._spill_writes = 0
        self._spill_reads = 0
        self.hits = 0
        self.warm_hits = 0
        self.misses = 0
        self.coalesced = 0
        self.transplants = 0
        self.evictions = 0
        self.spills = 0
        self.spill_corrupt = 0
        self.spill_evicted = 0
        if spill_dir is not None:
            found = []
            for name in os.listdir(spill_dir):
                if not name.endswith(".ceci"):
                    continue
                path = os.path.join(spill_dir, name)
                try:
                    stat = os.stat(path)
                except OSError:
                    continue
                found.append((stat.st_mtime, path, stat.st_size))
            for _, path, size in sorted(found):
                self._spill_files[path] = size

    def __len__(self) -> int:
        with self._lock:
            return len(self._lru)

    def _count(self, name: str, amount: int = 1) -> None:
        setattr(self, name, getattr(self, name) + amount)
        if self.metrics is not None:
            self.metrics.inc(f"service_index_cache_{name}", amount)

    # ------------------------------------------------------------------
    # Lookup / build
    # ------------------------------------------------------------------
    def get_or_build(
        self,
        query: Graph,
        build: Callable[[], CompactCECI],
    ) -> Tuple[CacheEntry, str, Tuple[int, ...]]:
        """The cache entry for ``query``'s isomorphism class.

        Returns ``(entry, tag, canonical order of *query*)`` — pass the
        order to :meth:`adapt` to obtain a store enumerable for this
        exact labeling.  ``build`` is called (without any cache lock
        held) only when this request loses the race for an existing
        entry and the spill tier has nothing; it must return the frozen
        store built for ``query`` itself.
        """
        signature, order = canonical_form(query)
        key = (self.data_fingerprint, signature)
        waited = False
        while True:
            with self._lock:
                entry = self._lru.get(key)
                if entry is not None:
                    self._lru.move_to_end(key)
                    entry.hits += 1
                    self._count("coalesced" if waited else "hits")
                    return entry, "coalesced" if waited else "hit", order
                event = self._inflight.get(key)
                if event is None:
                    self._inflight[key] = threading.Event()
                    break
            # Someone else is building this key: wait outside the lock,
            # then re-check (on build failure we may become the builder).
            event.wait()
            waited = True

        tag = "miss"
        try:
            entry = self._load_spilled(key, signature)
            if entry is not None:
                tag = "warm"
                self._count("warm_hits")
            else:
                started = time.perf_counter()
                store = build()
                entry = CacheEntry(
                    key, store, order, time.perf_counter() - started
                )
                self._count("misses")
        except BaseException:
            with self._lock:
                self._inflight.pop(key).set()
            raise
        with self._lock:
            self._lru[key] = entry
            self._lru.move_to_end(key)
            while len(self._lru) > self.capacity:
                _, evicted = self._lru.popitem(last=False)
                self._count("evictions")
                self._spill(evicted)
            self._inflight.pop(key).set()
        return entry, tag, order

    def adapt(
        self, entry: CacheEntry, query: Graph, order: Tuple[int, ...]
    ) -> Optional[CompactCECI]:
        """A store enumerable for ``query`` itself, from a cached entry
        of its isomorphism class — the representative store when the
        labelings coincide (bit-identical reuse), a transplant through
        ``sigma`` otherwise.  Returns ``None`` when the certificate
        check fails (signature collision): the caller must build fresh.
        """
        rep = entry.store.tree.query
        if len(order) != rep.num_vertices:
            return None
        rep_position = {u: i for i, u in enumerate(entry.canon_order)}
        sigma = [order[rep_position[u]] for u in range(rep.num_vertices)]
        if not _is_isomorphism(rep, query, sigma):
            return None
        if all(sigma[u] == u for u in range(rep.num_vertices)):
            return entry.store
        self._count("transplants")
        return transplant_store(entry.store, query, sigma)

    def serialized(
        self, entry: CacheEntry, store: Optional[CompactCECI] = None
    ) -> bytes:
        """CECIIDX3 bytes for ``store`` (default: the entry's own
        store), memoized on the entry when they coincide — so repeated
        shard publishes and spills of one hot index pay serialization
        once.  A transplanted store is serialized fresh every time: its
        per-query-vertex layout is labeling-specific and must never
        masquerade as the representative's blob."""
        if store is None or store is entry.store:
            if entry.blob is None:
                entry.blob = dump_store_bytes(entry.store)
            return entry.blob
        return dump_store_bytes(store)

    # ------------------------------------------------------------------
    # Spill tier
    # ------------------------------------------------------------------
    def _spill_path(self, key: Tuple[str, str]) -> str:
        digest = hashlib.sha256(repr(key).encode()).hexdigest()[:32]
        assert self.spill_dir is not None
        return os.path.join(self.spill_dir, f"{digest}.ceci")

    def _spill(self, entry: CacheEntry) -> None:
        """Evicted entries demote to a checksummed CECIIDX3 blob on disk
        instead of vanishing — reviving arrays is far cheaper than
        rebuilding.  The spill directory is byte-bounded: past
        ``spill_max_bytes`` the least-recently-used blobs are deleted
        (called with the cache lock held)."""
        if self.spill_dir is None:
            return
        path = self._spill_path(entry.key)
        if os.path.exists(path):
            return
        blob = dump_store_bytes(entry.store)
        write_index = self._spill_writes
        self._spill_writes += 1
        if self.fault_plan is not None and self.fault_plan.spill_write_torn_at(
            write_index
        ):
            # Injected torn write: the blob is cut mid-array, as if the
            # process died between write() and fsync().  The checksum
            # table (already fully inside the header) must catch it.
            blob = blob[: max(len(blob) * 2 // 3, 1)]
        tmp = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
        with open(tmp, "wb") as handle:
            handle.write(blob)
        os.replace(tmp, path)
        self._spill_files[path] = len(blob)
        self._spill_files.move_to_end(path)
        self._count("spills")
        self._enforce_spill_bound(keep=path)

    def _enforce_spill_bound(self, keep: Optional[str] = None) -> None:
        """Delete least-recently-used spill files until the directory is
        back under ``spill_max_bytes`` (the just-written ``keep`` blob
        survives even when it alone exceeds the bound)."""
        if self.spill_max_bytes is None:
            return
        total = sum(self._spill_files.values())
        for path, size in list(self._spill_files.items()):
            if total <= self.spill_max_bytes:
                break
            if path == keep:
                continue
            self._spill_files.pop(path, None)
            try:
                os.remove(path)
            except OSError:
                pass
            total -= size
            self._count("spill_evicted")

    def _quarantine(self, path: str, reason: str) -> None:
        """Move a corrupt/mismatched spill blob aside (``*.corrupt``) so
        it is rebuilt once instead of re-read and re-failed on every
        subsequent miss, and count it."""
        try:
            os.replace(path, f"{path}.corrupt")
        except OSError:
            try:
                os.remove(path)
            except OSError:
                pass
        with self._lock:
            self._spill_files.pop(path, None)
        self._count("spill_corrupt")

    def _load_spilled(
        self, key: Tuple[str, str], signature: str
    ) -> Optional[CacheEntry]:
        """Revive a spilled entry, or ``None``.  A blob that fails its
        block checksums, cannot be parsed, or whose revived query's
        canonical signature does not match the key is *quarantined*
        (renamed ``*.corrupt``), never silently retried.  The revived
        query graph went through the persist label round-trip, so its
        signature is re-derived and must match — a mismatch (labels
        that don't survive ``repr``) falls back to a fresh build."""
        if self.spill_dir is None:
            return None
        path = self._spill_path(key)
        if not os.path.exists(path):
            return None
        read_index = self._spill_reads
        self._spill_reads += 1
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except OSError:
            return None
        if self.fault_plan is not None and self.fault_plan.spill_read_corrupt_at(
            read_index
        ):
            # Injected read-side corruption: one byte flipped inside the
            # array region (bit rot / torn sector on the read path).
            flip = max(len(raw) - 9, 0)
            raw = raw[:flip] + bytes([raw[flip] ^ 0x01]) + raw[flip + 1:]
        try:
            store = load_store_bytes(raw, self.data)
        except ChecksumError as exc:
            self._quarantine(path, f"checksum: {exc}")
            return None
        except Exception as exc:  # noqa: BLE001 - any parse failure
            # (legacy un-checksummed blobs corrupt in ways numpy reports
            # idiosyncratically) means the blob can never be served.
            self._quarantine(path, f"unparseable: {exc!r}")
            return None
        revived_sig, revived_order = canonical_form(store.tree.query)
        if revived_sig != signature:
            self._quarantine(path, "canonical signature mismatch")
            return None
        with self._lock:
            if path in self._spill_files:
                self._spill_files.move_to_end(path)
        return CacheEntry(key, store, revived_order, 0.0)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, float]:
        """Counters + occupancy as one JSON-friendly dict."""
        with self._lock:
            entries = len(self._lru)
            spill_files = len(self._spill_files)
            spill_bytes = sum(self._spill_files.values())
        probes = self.hits + self.warm_hits + self.coalesced + self.misses
        served = self.hits + self.warm_hits + self.coalesced
        return {
            "hits": self.hits,
            "warm_hits": self.warm_hits,
            "coalesced": self.coalesced,
            "misses": self.misses,
            "transplants": self.transplants,
            "evictions": self.evictions,
            "spills": self.spills,
            "spill_corrupt": self.spill_corrupt,
            "spill_evicted": self.spill_evicted,
            "spill_files": spill_files,
            "spill_bytes": spill_bytes,
            "entries": entries,
            "capacity": self.capacity,
            "hit_rate": round(served / probes, 6) if probes else 0.0,
        }
