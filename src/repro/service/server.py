"""JSON-lines front end for the resident service (``repro serve``).

One request per input line, one response per output line — the shape a
driver script, a socket shim, or an interactive session can all speak
without a dependency on any RPC framework:

Request lines::

    {"query": {"n": 3, "edges": [[0,1],[1,2],[0,2]],
               "labels": [["a"], ["a"], ["b"]]},
     "limit": 10, "deadline_seconds": 1.0, "kernel": "auto",
     "embeddings": true, "id": 7}

``labels`` is optional (unlabeled queries), as are every knob and the
``id`` echo.  ``deadline_seconds`` is the enumeration *budget* deadline
(a tripped budget returns a ``truncated`` prefix);
``service_deadline_seconds`` is the end-to-end service deadline covering
queue wait + index build + matching (an expired one returns ``timeout``
with no embeddings).  Control lines use either the legacy ``cmd`` key or
the ``op`` key (one verb per line, same vocabulary):

* ``{"cmd": "metrics"}`` — drain, then print the metrics/cache
  snapshot (the historical, deterministic form);
* ``{"op": "metrics"}`` — the *live* snapshot, without draining:
  scrape-time gauges (in-flight, queue depth, healthy workers) reflect
  this instant, which is the point of an in-band health query;
* ``{"op": "flight", "id": 7, "limit": 10}`` — dump retained flight
  records (both filters optional; requires ``--flight-records``);
* ``{"cmd"|"op": "shutdown"}`` — drain and stop the loop
  (end-of-input does the same).

Response lines mirror :class:`~repro.service.request.MatchResponse`::

    {"id": 7, "status": "ok", "count": 2, "embeddings": [[0,1,2], ...],
     "cache": "hit", "truncated": false, "stop_reason": null,
     "latency_seconds": ..., "service_seconds": ..., "retries": 0}

A malformed line yields ``{"status": "failed", "error": ...}`` instead
of killing the loop — a resident service must outlive bad input.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, TextIO

from ..graph import Graph
from ..resilience.budget import Budget
from .request import MatchRequest, MatchResponse, Status
from .service import MatchService

__all__ = ["query_from_json", "response_to_json", "serve"]


def query_from_json(payload: Dict) -> Graph:
    """Build the query graph from a request's ``query`` object."""
    if not isinstance(payload, dict):
        raise ValueError("query must be an object")
    n = payload.get("n")
    if not isinstance(n, int):
        raise ValueError("query.n (vertex count) must be an integer")
    edges = [
        (int(s), int(d)) for s, d in payload.get("edges", [])
    ]
    labels = payload.get("labels")
    return Graph(n, edges, labels)


def _budget_from_json(line: Dict) -> Optional[Budget]:
    axes = {
        "deadline_seconds": line.get("deadline_seconds"),
        "max_calls": line.get("max_calls"),
        "max_embeddings": line.get("max_embeddings"),
        "max_memory_bytes": line.get("max_memory_bytes"),
    }
    if all(value is None for value in axes.values()):
        return None
    return Budget(**axes)


def request_from_json(line: Dict) -> MatchRequest:
    """Decode one request line (raises ``ValueError``/``KeyError`` on
    malformed input — the loop turns those into ``failed`` lines)."""
    kwargs = {}
    if line.get("id") is not None:
        kwargs["request_id"] = int(line["id"])
    deadline = line.get("service_deadline_seconds")
    return MatchRequest(
        query=query_from_json(line["query"]),
        limit=line.get("limit"),
        budget=_budget_from_json(line),
        break_automorphisms=bool(line.get("break_automorphisms", True)),
        kernel=line.get("kernel", "auto"),
        deadline_seconds=float(deadline) if deadline is not None else None,
        **kwargs,
    )


def response_to_json(
    response: MatchResponse, include_embeddings: bool = True
) -> Dict:
    """One response as a JSON-ready dict."""
    out: Dict = {
        "id": response.request_id,
        "status": response.status,
        "count": response.count,
        "truncated": response.truncated,
        "stop_reason": response.stop_reason,
        "cache": response.cache,
        "latency_seconds": response.latency_seconds,
        "service_seconds": response.service_seconds,
        "retries": response.retries,
        "error": response.error,
        # Build-vs-enumerate time, client-visible without server logs.
        "phase_seconds": dict(response.stats.phase_seconds),
    }
    if response.shard_fanout is not None:
        # Only the sharded tier stamps fan-out; single-process responses
        # keep their historical wire shape byte-for-byte.
        out["shards"] = response.shard_fanout
    if include_embeddings:
        out["embeddings"] = [
            [int(v) for v in embedding] for embedding in response.embeddings
        ]
    return out


def serve(
    service: MatchService,
    in_stream: TextIO,
    out_stream: TextIO,
) -> int:
    """Run the request/response loop until shutdown or end-of-input.
    Returns the number of match requests handled."""
    handled = 0
    for raw in in_stream:
        raw = raw.strip()
        if not raw:
            continue
        try:
            line = json.loads(raw)
        except json.JSONDecodeError as exc:
            _emit(out_stream, {"status": Status.FAILED, "error": str(exc)})
            continue
        command = None
        key = None
        if isinstance(line, dict):
            for key in ("cmd", "op"):
                if line.get(key) is not None:
                    command = line[key]
                    break
        if command == "shutdown":
            break
        if command == "metrics":
            if key == "cmd":
                # Legacy form: deterministic post-drain snapshot.
                service.drain()
            _emit(out_stream, {key: "metrics", **service.snapshot()})
            continue
        if command == "flight":
            records = service.flight_records(
                request_id=(
                    int(line["id"]) if line.get("id") is not None else None
                ),
                limit=(
                    int(line["limit"])
                    if line.get("limit") is not None
                    else None
                ),
            )
            payload: Dict = {
                key: "flight",
                "enabled": service.flight is not None,
                "count": len(records),
                "records": records,
            }
            if service.flight is None:
                payload["error"] = (
                    "flight recorder disabled (start the service with "
                    "flight_records > 0 / --flight-records)"
                )
            _emit(out_stream, payload)
            continue
        try:
            request = request_from_json(line)
        except (ValueError, KeyError, TypeError) as exc:
            _emit(out_stream, {
                "id": line.get("id") if isinstance(line, dict) else None,
                "status": Status.FAILED,
                "error": f"bad request: {exc}",
            })
            continue
        response = service.match(request)
        handled += 1
        _emit(
            out_stream,
            response_to_json(
                response,
                include_embeddings=bool(line.get("embeddings", True)),
            ),
        )
    return handled


def _emit(out_stream: TextIO, payload: Dict) -> None:
    out_stream.write(json.dumps(payload) + "\n")
    out_stream.flush()
