"""Resident query service: batching, cross-query caching, admission
control (DESIGN.md §10).

The matcher answers one query per process; this package keeps a data
graph resident and answers *streams* of queries:

* :class:`~repro.service.service.MatchService` — bounded worker pool,
  admission control, fair cluster-level batching;
* :class:`~repro.service.cache.IndexCache` — cross-query LRU of frozen
  indexes keyed by canonical query signature, with a CECIIDX3 spill
  tier and in-flight build coalescing;
* :class:`~repro.service.request.MatchRequest` /
  :class:`~repro.service.request.MatchResponse` — the request surface;
* :mod:`~repro.service.loadgen` — deterministic open-loop benchmark
  (``repro bench-service``);
* :mod:`~repro.service.server` — JSON-lines front end (``repro serve``);
* :class:`~repro.service.shards.ShardedMatchService` — the multi-process
  shard tier (``repro serve --shards N``): pivot partitions fanned out
  across worker processes sharing mmap'd CECIIDX3 indexes, with
  exact-merge responses indistinguishable from the single-process tier.
"""

from .cache import CacheEntry, IndexCache, transplant_store
from .loadgen import (
    generate_workload,
    run_benchmark,
    run_chaos,
    run_shard_benchmark,
    sample_query,
)
from .request import MatchRequest, MatchResponse, Status
from .scheduler import FairTaskQueue, fair_interleave
from .server import serve
from .service import MatchService, PendingMatch, service_metric_specs
from .shards import ShardedMatchService, sharded_metric_specs

__all__ = [
    "CacheEntry",
    "FairTaskQueue",
    "IndexCache",
    "MatchRequest",
    "MatchResponse",
    "MatchService",
    "PendingMatch",
    "ShardedMatchService",
    "Status",
    "fair_interleave",
    "generate_workload",
    "run_benchmark",
    "run_chaos",
    "run_shard_benchmark",
    "sample_query",
    "serve",
    "service_metric_specs",
    "sharded_metric_specs",
    "transplant_store",
]
