"""Fair interleaving of per-cluster work units across concurrent queries.

The service decomposes every unbounded request into its embedding
clusters (the Section 4.2 work units) and feeds all requests' units to
one worker pool.  A plain FIFO would let one huge query's hundreds of
units starve every small query queued behind it; the classical fix is
*weighted fair queuing*: each job owns a virtual clock that advances by
the **normalized** workload of each of its units (its total workload
maps onto ``[0, 1]``), and the pool always runs the task with the
smallest virtual finish time.  Every admitted job therefore progresses
through its own work at the same virtual rate regardless of how big its
neighbours are — a 3-unit query interleaves evenly with a 300-unit one
instead of waiting for all 300.

Budgeted/limited requests run *solo* (un-decomposed, to reproduce the
sequential truncation prefix exactly — see
:class:`~repro.service.request.MatchRequest`) and are deadline-
sensitive, so solo tasks enter at virtual time ``-1.0``: ahead of every
batched unit, FIFO among themselves via the monotone sequence number.

:func:`fair_interleave` is the pure-function core (what the property
tests exercise); :class:`FairTaskQueue` wraps it into the blocking
producer/consumer channel between the service's scheduler thread and
its workers.  The per-job *unit lists* come from the same pool the
parallel executors schedule (:mod:`repro.parallel.scheduling` consumes
identical ``(prefix, workload)`` units); the service additionally runs
:func:`~repro.parallel.scheduling.dynamic_schedule` over each admitted
job's unit costs to publish the predicted makespan/skew as gauges.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Generic, Iterator, List, Optional, Sequence, Tuple, TypeVar

__all__ = ["fair_interleave", "FairTaskQueue"]

T = TypeVar("T")

#: Virtual time assigned to solo (budgeted/limited) tasks — strictly
#: ahead of every batched unit, whose virtual times live in ``(0, 1]``.
SOLO_VTIME = -1.0

#: Virtual time assigned to *recovered* tasks (work re-enqueued after
#: its executor died mid-flight) — strictly ahead even of queued solo
#: tasks: the lost task's request has already waited one full execution
#: attempt, so recovery runs head-of-line or its latency doubles.
RECOVERY_VTIME = -2.0


def fair_interleave(
    unit_workloads: Sequence[Sequence[float]],
) -> List[Tuple[int, int]]:
    """Weighted-fair order over several jobs' unit lists.

    ``unit_workloads[j][i]`` is the workload of job ``j``'s ``i``-th
    unit; the result lists ``(job, unit)`` pairs in execution order.
    Each job's units stay in their own order (the service relies on
    in-job order being preserved so per-pivot results can be
    concatenated back into sequential enumeration order), and jobs
    advance proportionally to their normalized progress: after any
    prefix of the schedule, no job is more than one unit ahead of
    another in fraction-of-total-work terms.
    """
    heap: List[Tuple[float, int, int]] = []
    totals = []
    for j, workloads in enumerate(unit_workloads):
        total = float(sum(workloads)) or 1.0
        totals.append(total)
        if workloads:
            heap.append((float(workloads[0]) / total, j, 0))
    heapq.heapify(heap)
    out: List[Tuple[int, int]] = []
    while heap:
        vtime, j, i = heapq.heappop(heap)
        out.append((j, i))
        workloads = unit_workloads[j]
        if i + 1 < len(workloads):
            heapq.heappush(
                heap, (vtime + float(workloads[i + 1]) / totals[j], j, i + 1)
            )
    return out


class FairTaskQueue(Generic[T]):
    """Blocking priority channel ordered by ``(virtual time, seq)``.

    ``push_job`` enqueues one job's units with cumulative normalized
    virtual times — so units of concurrently-admitted jobs interleave
    exactly as :func:`fair_interleave` would order them — and
    ``push_solo`` enqueues a deadline-sensitive task ahead of all of
    them.  ``pop`` blocks until a task is available or the queue is
    closed *and* drained, in which case it returns ``None`` (the worker
    shutdown signal).
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, T]] = []
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._seq = itertools.count()
        self._closed = False
        #: Lifetime telemetry (guarded by ``_lock``): tasks enqueued by
        #: kind and tasks handed to workers — the numbers behind the
        #: service's scheduler-depth gauges.
        self._pushed_solo = 0
        self._pushed_units = 0
        self._popped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` was called — lets a worker polling
        ``pop(timeout=...)`` tell shutdown (``None`` + closed) apart
        from an idle interval (``None`` + open)."""
        with self._lock:
            return self._closed

    def push(self, vtime: float, item: T) -> None:
        """Enqueue one task at an explicit virtual time."""
        with self._ready:
            if self._closed:
                raise RuntimeError("task queue is closed")
            heapq.heappush(self._heap, (vtime, next(self._seq), item))
            if vtime <= SOLO_VTIME:
                self._pushed_solo += 1
            else:
                self._pushed_units += 1
            self._ready.notify()

    def push_solo(self, item: T) -> None:
        """Enqueue a solo task ahead of every batched unit."""
        self.push(SOLO_VTIME, item)

    def push_recovered(self, item: T) -> None:
        """Re-enqueue a task lost to a dead executor, head-of-line:
        ahead of queued solo tasks and every batched unit (the sharded
        service's crash-recovery re-dispatch path)."""
        self.push(RECOVERY_VTIME, item)

    def push_job(
        self, items: Sequence[T], workloads: Sequence[float]
    ) -> None:
        """Enqueue one job's unit tasks under cumulative normalized
        virtual times (``len(items) == len(workloads)``)."""
        if len(items) != len(workloads):
            raise ValueError("one workload per item required")
        total = float(sum(workloads)) or 1.0
        vtime = 0.0
        with self._ready:
            if self._closed:
                raise RuntimeError("task queue is closed")
            for item, workload in zip(items, workloads):
                vtime += float(workload) / total
                heapq.heappush(self._heap, (vtime, next(self._seq), item))
            self._pushed_units += len(items)
            self._ready.notify_all()

    def pop(self, timeout: Optional[float] = None) -> Optional[T]:
        """Next task by virtual-time order; ``None`` once the queue is
        closed and empty (or on timeout)."""
        with self._ready:
            while not self._heap:
                if self._closed:
                    return None
                if not self._ready.wait(timeout=timeout):
                    return None
            self._popped += 1
            return heapq.heappop(self._heap)[2]

    def snapshot(self) -> dict:
        """Queue telemetry: current depth plus lifetime push/pop
        counters, one consistent read."""
        with self._lock:
            return {
                "depth": len(self._heap),
                "pushed_solo": self._pushed_solo,
                "pushed_units": self._pushed_units,
                "popped": self._popped,
                "closed": self._closed,
            }

    def close(self) -> None:
        """No more pushes; blocked ``pop`` calls drain then return
        ``None``."""
        with self._ready:
            self._closed = True
            self._ready.notify_all()

    def __iter__(self) -> Iterator[T]:
        while True:
            item = self.pop()
            if item is None:
                return
            yield item
