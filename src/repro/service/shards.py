"""Sharded multi-process service tier over the compact store.

:class:`ShardedMatchService` scales the resident
:class:`~repro.service.service.MatchService` past one process: the data
graph's pivot space is partitioned across ``shards`` worker *processes*
(via :func:`~repro.distributed.partition.distribute_pivots`, the same
Section 6.2 planner the simulated distributed executor uses), and each
query fans out to the shards whose partitions hold its clusters.  The
pieces:

* **shared-mmap index publication** — the parent resolves each query's
  index through the ordinary cross-query
  :class:`~repro.service.cache.IndexCache` (hit/warm/coalesce/build),
  then *publishes* the frozen ``CompactCECI`` once as a checksummed
  CECIIDX3 file (:func:`~repro.core.persist.publish_ceci` semantics:
  write-to-temp, fsync, rename).  Every shard process
  :func:`~repro.core.persist.load_ceci`\\ s the same file with
  ``mmap=True``, so N processes share one copy of the candidate arrays
  through the OS page cache — the index is frozen once and mapped
  everywhere, never rebuilt or re-pickled per shard;
* **partition-aware routing** — unbounded requests are decomposed by
  ``distribute_pivots`` into one *task per shard* (each task carries
  that shard's pivot list); budgeted/limited requests run **solo** on
  the least-loaded shard, un-decomposed, so their truncation prefixes
  are bit-identical to the sequential matcher's (the same invariant the
  single-process tier keeps);
* **exact merge** — each shard enumerates its pivots' clusters into
  per-pivot embedding lists; the parent concatenates them back in
  ``store.pivots`` order, which *is* sequential ``collect`` order, so a
  sharded answer is indistinguishable from a single-process one
  (embeddings, counts, truncation flags, statuses) — the property the
  differential suite in ``tests/test_service_shards.py`` enforces;
* **crash recovery** — a shard process death is observed as pipe EOF;
  the parent respawns the shard and re-dispatches the lost task
  head-of-line (:meth:`~repro.service.scheduler.FairTaskQueue.push_recovered`).
  Task results are atomic (a shard replies with a *whole* task's
  results or nothing), so recovery is exactly-once: no partial answer
  can ever be merged;
* **publish integrity** — shards CRC-verify every CECIIDX3 block before
  mapping; a torn publish (fault-injected or real) raises
  :class:`~repro.core.persist.ChecksumError` inside the shard, which
  reports ``corrupt_index`` instead of serving garbage.  The parent
  republishes a pristine blob under a bumped version (stale mmaps keep
  reading their old file; a new filename can never tear an existing
  reader) and re-dispatches.

**What the sharded tier deliberately does not do.**  Request-level
retry policies, slow-query logs and query history stay single-process
features; the sharded tier's recovery unit is the *task redispatch*
(bounded by ``max_redispatch``), which is both cheaper and exact.
Budget *deadline* clocks start when a shard begins the solo run rather
than at parent prepare time — wall-deadline truncation is
nondeterministic under any tier; the deterministic budget axes
(``max_calls``, ``max_embeddings``) count identically to a sequential
run because the solo shard replays the exact sequential recursion.

**Speedup accounting.**  Each shard measures per-task *CPU* seconds
with ``time.process_time()`` — immune to time-slice contention when N
shard processes share fewer cores — and the parent accumulates them
per shard.  The horizontal-scaling benchmark
(:func:`~repro.service.loadgen.run_shard_benchmark`) reports
``shard_speedup`` as the critical-path ratio (max per-shard busy
seconds at 1 shard over at k shards), the same simulated-speedup
substitution DESIGN.md §2 documents for the thread-parallel figures,
alongside raw ``wall_speedup``.
"""

from __future__ import annotations

import itertools
import os
import shutil
import tempfile
import threading
import time
from collections import OrderedDict
from multiprocessing import get_context
from typing import Dict, List, Optional, Set, Tuple

from ..core.automorphism import SymmetryBreaker
from ..core.enumeration import Embedding, Enumerator
from ..core.matcher import CECIMatcher
from ..core.persist import ChecksumError, load_ceci, publish_bytes
from ..core.stats import MatchStats
from ..core.store import CompactCECI
from ..distributed.partition import distribute_pivots
from ..graph import Graph
from ..observability.flight import FlightRecorder
from ..observability.metrics import MetricSpec, MetricsRegistry
from ..resilience.budget import BudgetExhausted
from ..resilience.faults import FaultPlan, InjectedBuildError
from .cache import IndexCache
from .request import MatchRequest, MatchResponse, Status
from .scheduler import FairTaskQueue
from .service import PendingMatch, rejected_response, service_metric_specs

__all__ = ["ShardedMatchService", "sharded_metric_specs"]

#: How many distinct published index files one shard keeps mapped at
#: once (an OrderedDict LRU keyed by path; a bumped publish version is a
#: new path, so a republished index is never served stale).
_SHARD_STORE_CACHE = 8

#: How often the deadline monitor scans in-flight jobs (seconds).
_MONITOR_INTERVAL = 0.01


def sharded_metric_specs() -> Tuple[MetricSpec, ...]:
    """The single-process service specs plus the shard tier's own:
    fan-out/routing, process supervision, and publish-integrity
    counters (all ``service_shard_*``)."""
    return service_metric_specs() + (
        MetricSpec(
            "service_shard_tasks_total",
            help="Tasks dispatched to shard processes.",
        ),
        MetricSpec(
            "service_shard_solo_routed",
            help="Budgeted/limited requests routed solo to one shard.",
        ),
        MetricSpec(
            "service_shard_fanout",
            kind="histogram",
            help="Shards contributing to each fanned-out request.",
        ),
        MetricSpec(
            "service_shard_crashes",
            help="Shard processes observed dead (pipe EOF).",
        ),
        MetricSpec(
            "service_shard_respawns",
            help="Shard processes replaced after a death.",
        ),
        MetricSpec(
            "service_shard_redispatches",
            help="Tasks re-dispatched after a shard crash or a corrupt "
                 "shared index.",
        ),
        MetricSpec(
            "service_shard_publishes",
            help="Shared CECIIDX3 index files published.",
        ),
        MetricSpec(
            "service_shard_republishes",
            help="Pristine re-publishes after a shard reported a "
                 "corrupt shared index.",
        ),
        MetricSpec(
            "service_shard_corrupt_loads",
            help="Shard-side checksum failures loading a shared index.",
        ),
        MetricSpec(
            "service_shard_count",
            kind="gauge",
            merge="max",
            help="Configured shard processes.",
        ),
        MetricSpec(
            "service_shard_inflight",
            kind="gauge",
            merge="max",
            help="Tasks currently held by shard processes (scrape-time).",
        ),
    )


# ----------------------------------------------------------------------
# Shard process (child side)
# ----------------------------------------------------------------------
def _shard_store(
    path: str, data: Graph, stores: "OrderedDict[str, CompactCECI]"
) -> CompactCECI:
    """The mmap-backed store for ``path``, via the shard's LRU."""
    store = stores.get(path)
    if store is not None:
        stores.move_to_end(path)
        return store
    loaded = load_ceci(path, data, mmap=True, verify=True)
    assert isinstance(loaded, CompactCECI)
    stores[path] = loaded
    while len(stores) > _SHARD_STORE_CACHE:
        stores.popitem(last=False)
    return loaded


def _run_shard_task(
    spec: Dict,
    data: Graph,
    stores: "OrderedDict[str, CompactCECI]",
    use_intersection: bool,
) -> Dict:
    """Execute one task spec inside a shard process.

    The symmetry breaker is built from the *request's own* query graph
    (shipped in the spec), not the header-round-tripped query inside
    the CECIIDX3 file, so the chosen orbit representatives are exactly
    the single-process tier's.
    """
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    store = _shard_store(spec["index_path"], data, stores)
    query: Graph = spec["query"]
    symmetry = SymmetryBreaker(query, enabled=spec["break_automorphisms"])
    stats = MatchStats()
    payload: Dict
    if spec["kind"] == "solo":
        tracker = None
        budget = spec.get("budget")
        if budget is not None and not budget.unlimited:
            tracker = budget.tracker().start()
        enumerator = Enumerator(
            store,
            symmetry=symmetry,
            use_intersection=use_intersection,
            stats=stats,
            tracker=tracker,
            kernel=spec["kernel"],
        )
        embeddings = enumerator.collect(spec.get("limit"))
        payload = {
            "kind": "solo",
            "embeddings": embeddings,
            "truncated": enumerator.truncated,
            "stop_reason": enumerator.stop_reason,
        }
    else:
        # One enumerator per cluster, mirroring the single-process
        # tier's per-unit isolation; symmetry-inadmissible pivots come
        # back empty exactly as sequential ``collect`` skips them.
        parts: Dict[int, List[Embedding]] = {}
        for pivot in spec["pivots"]:
            enumerator = Enumerator(
                store,
                symmetry=symmetry,
                use_intersection=use_intersection,
                stats=stats,
                kernel=spec["kernel"],
            )
            parts[pivot] = enumerator.collect_from_unit((pivot,))
        payload = {"kind": "units", "parts": parts}
    stats.add_phase("enumerate", time.perf_counter() - wall0)
    payload["stats"] = stats
    # Per-process CPU seconds: the honest busy measure when N shard
    # processes time-share fewer cores (perf_counter would charge
    # scheduler wait to the task).
    payload["busy"] = time.process_time() - cpu0
    payload["seconds"] = time.perf_counter() - wall0
    return payload


def _shard_main(shard_id: int, conn, data: Graph, config: Dict) -> None:
    """Entry point of one shard process: a request/reply loop over the
    duplex pipe.  Replies are atomic per task — a whole task's results
    or an error — which is what makes parent-side crash recovery
    exactly-once.  Fault-plan predicates fire on the per-shard task
    counter, so a chaos plan replays identically."""
    plan: Optional[FaultPlan] = config.get("fault_plan")
    use_intersection: bool = config.get("use_intersection", True)
    stores: "OrderedDict[str, CompactCECI]" = OrderedDict()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message[0] == "close":
            return
        # ``pick`` is the parent-owned per-shard dispatch counter: it
        # survives respawns, so a crash pick fires exactly once instead
        # of re-killing every fresh incarnation at its own pick 0.
        _, task_id, pick, spec = message
        if plan is not None and plan.shard_crashes_at(shard_id, pick):
            # Simulated process death: no reply, no cleanup — the
            # parent sees pipe EOF, exactly like a real crash.
            os._exit(1)
        if plan is not None and plan.shard_stalls_at(shard_id, pick):
            time.sleep(plan.shard_stall_seconds)
        try:
            payload = _run_shard_task(spec, data, stores, use_intersection)
            conn.send(("result", task_id, payload))
        except ChecksumError as exc:
            # Never serve from a torn publish: drop any stale mapping
            # and report so the parent can republish and re-dispatch.
            stores.pop(spec["index_path"], None)
            conn.send(("error", task_id, "corrupt_index", str(exc)))
        except Exception as exc:  # noqa: BLE001 - fail the task, keep
            # the shard serving its other tenants
            conn.send(("error", task_id, "error", repr(exc)))


# ----------------------------------------------------------------------
# Parent-side bookkeeping
# ----------------------------------------------------------------------
class _ShardJob:
    """Mutable execution state of one admitted sharded request."""

    __slots__ = (
        "request", "pending", "submitted_at", "prepared_at", "deadline_at",
        "cache_tag", "fingerprint", "index_path", "pivot_order", "parts",
        "remaining", "stats", "fanout", "redispatches", "cancelled",
        "done", "lock", "flight",
    )

    def __init__(
        self,
        request: MatchRequest,
        pending: PendingMatch,
        submitted_at: float,
    ) -> None:
        self.request = request
        self.pending = pending
        self.submitted_at = submitted_at
        self.prepared_at = submitted_at
        self.deadline_at: Optional[float] = None
        self.cache_tag: Optional[str] = None
        self.fingerprint: Optional[str] = None
        self.index_path: Optional[str] = None
        #: ``store.pivots`` order — the exact-merge key: per-pivot parts
        #: concatenate back in this order, which is sequential
        #: ``collect`` order.
        self.pivot_order: List[int] = []
        self.parts: Dict[int, List[Embedding]] = {}
        self.remaining = 0
        self.stats = MatchStats()
        self.fanout = 0
        self.redispatches = 0
        self.cancelled = False
        self.done = False
        self.lock = threading.Lock()
        self.flight = None


class _ShardTask:
    """One dispatchable unit: a whole task spec bound to a job."""

    __slots__ = ("task_id", "job", "spec")

    def __init__(self, task_id: int, job: _ShardJob, spec: Dict) -> None:
        self.task_id = task_id
        self.job = job
        self.spec = spec


class _Shard:
    """Parent-side handle of one shard process (guarded as noted)."""

    __slots__ = ("index", "proc", "conn", "reader", "busy_seconds", "tasks")

    def __init__(self, index: int) -> None:
        self.index = index
        self.proc = None
        self.conn = None
        self.reader: Optional[threading.Thread] = None
        #: Accumulated per-task CPU seconds (guarded by the service's
        #: ``_task_lock``) — the benchmark's critical-path input.
        self.busy_seconds = 0.0
        self.tasks = 0


_CLOSE = object()


class ShardedMatchService:
    """A resident matcher sharded across ``shards`` worker processes.

    Duck-types the :class:`~repro.service.service.MatchService` surface
    the server loop, the load generator and the chaos harness consume
    (``match``/``submit``/``drain``/``close``/``snapshot``/
    ``metrics_snapshot``/``flight_records``/``healthy_workers``), and
    keeps its exactness contract: a sharded response's embeddings,
    counts, truncation flags and statuses are indistinguishable from the
    single-process tier's.

    ``share_dir`` is where published CECIIDX3 files live (a private
    temporary directory by default, removed on close); ``max_redispatch``
    bounds how many times one request's lost tasks are re-dispatched
    after shard crashes before the request resolves ``CRASHED``;
    ``partition_mode`` is forwarded to
    :func:`~repro.distributed.partition.distribute_pivots`.

    Use as a context manager, or call :meth:`close` when done.
    """

    def __init__(
        self,
        data: Graph,
        shards: int = 2,
        max_pending: int = 64,
        index_capacity: int = 32,
        spill_dir: Optional[str] = None,
        order_strategy: str = "bfs",
        use_refinement: bool = True,
        use_intersection: bool = True,
        metrics: Optional[MetricsRegistry] = None,
        deadline_seconds: Optional[float] = None,
        fault_plan: Optional[FaultPlan] = None,
        flight_records: int = 0,
        share_dir: Optional[str] = None,
        partition_mode: str = "memory",
        max_redispatch: int = 3,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.data = data
        self.shards = shards
        #: ``loadgen.run_benchmark`` reports ``service.workers`` as the
        #: concurrency knob; for the sharded tier that is the shard
        #: count.
        self.workers = shards
        self.max_pending = max_pending
        self.order_strategy = order_strategy
        self.use_refinement = use_refinement
        self.use_intersection = use_intersection
        self.deadline_seconds = deadline_seconds
        self.fault_plan = fault_plan
        self.partition_mode = partition_mode
        self.max_redispatch = max_redispatch
        self.metrics = (
            metrics
            if metrics is not None
            else MetricsRegistry(sharded_metric_specs())
        )
        for spec in sharded_metric_specs():
            self.metrics.register(spec)
        self.metrics.set_gauge("service_shard_count", shards)
        self.flight = (
            FlightRecorder(flight_records) if flight_records > 0 else None
        )
        self.index_cache = IndexCache(
            data,
            capacity=index_capacity,
            spill_dir=spill_dir,
            metrics=self.metrics,
            fault_plan=fault_plan,
        )
        #: The sharded tier has no cross-request intersection pool:
        #: memoized intersections live per shard process (private
        #: per-enumerator caches), where the enumeration happens.
        self.intersection_pool = None
        self.history = None
        self._owns_share_dir = share_dir is None
        self.share_dir = (
            tempfile.mkdtemp(prefix="repro-shards-")
            if share_dir is None
            else share_dir
        )
        os.makedirs(self.share_dir, exist_ok=True)
        # Published indexes: fingerprint -> (path, version, pristine
        # blob kept for republish after a shard-side checksum failure).
        self._published: Dict[str, Tuple[str, int, bytes]] = {}
        self._publish_lock = threading.Lock()
        self._publish_picks = itertools.count()
        self._build_picks = itertools.count()
        self._task_ids = itertools.count(1)
        self._state_lock = threading.Lock()
        self._idle = threading.Condition(self._state_lock)
        self._inflight = 0
        self._peak = 0
        self._closed = False
        self._stopping = False
        self._close_done = threading.Event()
        self._jobs: Set[_ShardJob] = set()
        self._inbox: List = []
        self._inbox_ready = threading.Condition()
        # Per-shard dispatch state: an outbox queue, a window-of-one
        # semaphore (at most one task in flight per shard pipe, so a
        # crash loses at most one task), and the in-flight task table.
        self._outboxes: List[FairTaskQueue[_ShardTask]] = [
            FairTaskQueue() for _ in range(shards)
        ]
        self._windows = [threading.Semaphore(1) for _ in range(shards)]
        #: One send lock per shard pipe: a dispatcher's task send and
        #: close()'s shutdown message must never interleave bytes.
        self._send_locks = [threading.Lock() for _ in range(shards)]
        #: Parent-owned per-shard dispatch counters feeding the fault
        #: plan's (shard, pick) predicates — monotone across respawns.
        self._dispatch_counts = [0] * shards
        self._task_lock = threading.Lock()
        self._inflight_tasks: Dict[int, _ShardTask] = {}
        self._current: Dict[int, int] = {}  # shard -> in-flight task_id
        self._fork_lock = threading.Lock()
        self._shards: List[_Shard] = [_Shard(i) for i in range(shards)]
        ctx = get_context("fork")
        self._ctx = ctx
        # Fork every shard *before* starting any parent thread: a
        # fork from a single-threaded parent can never inherit a lock
        # held mid-acquire by another thread.  (Respawns after a crash
        # do fork from a threaded parent — the child runs only
        # `_shard_main` over already-imported modules, the standard
        # accepted trade-off for supervision.)
        for shard in self._shards:
            self._fork_shard(shard)
        self._threads: List[threading.Thread] = []
        for shard in self._shards:
            self._start_reader(shard)
        for index in range(shards):
            thread = threading.Thread(
                target=self._dispatch_loop,
                args=(index,),
                name=f"shard-dispatch-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        self._scheduler = threading.Thread(
            target=self._scheduler_loop, name="shard-scheduler", daemon=True
        )
        self._scheduler.start()
        self._monitor_stop = threading.Event()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="shard-monitor", daemon=True
        )
        self._monitor.start()

    # ------------------------------------------------------------------
    # Process lifecycle
    # ------------------------------------------------------------------
    def _fork_shard(self, shard: _Shard) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        config = {
            "fault_plan": self.fault_plan,
            "use_intersection": self.use_intersection,
        }
        proc = self._ctx.Process(
            target=_shard_main,
            args=(shard.index, child_conn, self.data, config),
            name=f"repro-shard-{shard.index}",
            daemon=True,
        )
        proc.start()
        child_conn.close()  # parent keeps only its end
        shard.proc = proc
        shard.conn = parent_conn

    def _start_reader(self, shard: _Shard) -> None:
        thread = threading.Thread(
            target=self._reader_loop,
            args=(shard, shard.conn, shard.proc),
            name=f"shard-reader-{shard.index}",
            daemon=True,
        )
        thread.start()
        shard.reader = thread
        self._threads.append(thread)

    # ------------------------------------------------------------------
    # Public API (MatchService surface)
    # ------------------------------------------------------------------
    def submit(self, request: MatchRequest) -> PendingMatch:
        """Admit (or shed) one request; never blocks on matching work."""
        pending = PendingMatch(request)
        now = time.perf_counter()
        with self._state_lock:
            if self._closed:
                raise RuntimeError("service is closed")
            if self._inflight >= self.max_pending:
                pending._resolve(rejected_response(
                    request, self._inflight, self.max_pending,
                    self.metrics, self.flight,
                ))
                return pending
            self._inflight += 1
            if self._inflight > self._peak:
                self._peak = self._inflight
                self.metrics.set_gauge("service_queue_depth_peak", self._peak)
            job = _ShardJob(request, pending, now)
            if self.flight is not None:
                job.flight = self.flight.begin(request.request_id)
                job.flight.event(
                    "admit", outcome="admitted",
                    queue_depth=self._inflight, solo=request.solo,
                )
            deadline = request.deadline_seconds
            if deadline is None:
                deadline = self.deadline_seconds
            if deadline is not None:
                job.deadline_at = now + deadline
            pending._job = job
            self._jobs.add(job)
        with self._inbox_ready:
            self._inbox.append(job)
            self._inbox_ready.notify()
        return pending

    def match(self, request: MatchRequest) -> MatchResponse:
        """Submit and wait — the synchronous convenience path."""
        return self.submit(request).result()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until no request is in flight; False on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while self._inflight > 0:
                left = None
                if deadline is not None:
                    left = deadline - time.monotonic()
                    if left <= 0:
                        return False
                self._idle.wait(timeout=left)
        return True

    def close(self, timeout: Optional[float] = None) -> bool:
        """Drain in-flight work, then stop threads and shard processes
        (idempotent; concurrent callers wait for the first closer)."""
        with self._state_lock:
            first = not self._closed
            self._closed = True
        if not first:
            return self._close_done.wait(timeout=timeout)
        drained = self.drain(timeout)
        self._stopping = True
        if not drained:
            with self._state_lock:
                leftovers = list(self._jobs)
            for job in leftovers:
                self._finalize(
                    job, [], Status.TIMEOUT,
                    error="request still in flight when close() timed out",
                )
        with self._inbox_ready:
            self._inbox.append(_CLOSE)
            self._inbox_ready.notify()
        self._monitor_stop.set()
        for outbox in self._outboxes:
            outbox.close()
        # Release every dispatch window so dispatchers can observe the
        # closed outboxes instead of blocking on a permit forever.
        for window in self._windows:
            window.release()
        with self._fork_lock:
            for shard in self._shards:
                try:
                    with self._send_locks[shard.index]:
                        shard.conn.send(("close",))
                except Exception:  # noqa: BLE001 - already-dead shard
                    pass
            for shard in self._shards:
                proc = shard.proc
                if proc is not None:
                    proc.join(timeout=2.0)
                    if proc.is_alive():
                        proc.terminate()
                        proc.join(timeout=1.0)
                try:
                    shard.conn.close()
                except Exception:  # noqa: BLE001
                    pass
        self._scheduler.join(timeout=2.0)
        self._monitor.join(timeout=2.0)
        for thread in self._threads:
            thread.join(timeout=2.0)
        stopped = (
            not self._scheduler.is_alive()
            and not self._monitor.is_alive()
            and not any(thread.is_alive() for thread in self._threads)
        )
        if self._owns_share_dir:
            shutil.rmtree(self.share_dir, ignore_errors=True)
        self._close_done.set()
        return drained and stopped

    def __enter__(self) -> "ShardedMatchService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def healthy_workers(self) -> int:
        """How many shard processes are currently alive — the chaos
        harness's pool-at-full-strength check."""
        with self._fork_lock:
            return sum(
                1
                for shard in self._shards
                if shard.proc is not None and shard.proc.is_alive()
            )

    def metrics_snapshot(self) -> MetricsRegistry:
        """Point-in-time registry copy with scrape-time gauges folded
        in, shaped exactly like the single-process tier's."""
        registry = MetricsRegistry(sharded_metric_specs())
        registry.merge(self.metrics)
        with self._state_lock:
            inflight = self._inflight
        registry.set_gauge("service_inflight", inflight)
        registry.set_gauge(
            "service_task_queue_depth",
            sum(len(outbox) for outbox in self._outboxes),
        )
        registry.set_gauge("service_healthy_workers", self.healthy_workers())
        registry.set_gauge("service_shard_count", self.shards)
        with self._task_lock:
            registry.set_gauge(
                "service_shard_inflight", len(self._inflight_tasks)
            )
        return registry

    def snapshot(self) -> Dict[str, object]:
        """Registry + cache + per-shard dispatch state as one dict."""
        out: Dict[str, object] = {
            "metrics": self.metrics_snapshot().as_dict(),
            "index_cache": self.index_cache.snapshot(),
            "scheduler": {
                "shards": [outbox.snapshot() for outbox in self._outboxes],
            },
            "healthy_workers": self.healthy_workers(),
            "shards": self.shard_telemetry(),
        }
        if self.flight is not None:
            out["flight_records"] = len(self.flight)
        return out

    def flight_records(
        self,
        request_id: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> List[Dict]:
        """Retained flight records (empty when the recorder is off)."""
        if self.flight is None:
            return []
        return self.flight.records(request_id=request_id, limit=limit)

    def shard_telemetry(self) -> Dict[str, object]:
        """Per-shard accounting the horizontal-scaling benchmark reads:
        accumulated CPU-busy seconds and task counts, per shard."""
        with self._task_lock:
            return {
                "busy_seconds": [s.busy_seconds for s in self._shards],
                "tasks": [s.tasks for s in self._shards],
            }

    # ------------------------------------------------------------------
    # Scheduler thread: admit -> resolve index -> publish -> fan out
    # ------------------------------------------------------------------
    def _scheduler_loop(self) -> None:
        while True:
            with self._inbox_ready:
                while not self._inbox:
                    self._inbox_ready.wait()
                item = self._inbox.pop(0)
            if item is _CLOSE:
                return
            job: _ShardJob = item
            if job.done:
                continue
            status = self._abort_status(job)
            if status is None:
                try:
                    self._prepare(job)
                except BudgetExhausted as stop:
                    job.stats.budget_stops += 1
                    self._finalize(
                        job, [], Status.TRUNCATED, stop_reason=stop.reason
                    )
                    continue
                except InjectedBuildError as exc:
                    self._finalize(job, [], Status.FAILED, error=repr(exc))
                    continue
                except Exception as exc:  # noqa: BLE001 - one bad
                    # request must not take the scheduler down
                    self._finalize(job, [], Status.FAILED, error=repr(exc))
                    continue
                status = self._abort_status(job)
            if status is not None:
                self._finalize(
                    job, [], status, error=self._abort_error(status)
                )
                continue
            self._plan(job)

    def _abort_status(self, job: _ShardJob) -> Optional[str]:
        if job.cancelled:
            return Status.CANCELLED
        if (
            job.deadline_at is not None
            and time.perf_counter() >= job.deadline_at
        ):
            return Status.TIMEOUT
        return None

    @staticmethod
    def _abort_error(status: str) -> str:
        if status == Status.TIMEOUT:
            return "end-to-end service deadline exceeded"
        return "cancelled by caller"

    def _fresh_matcher(self, query: Graph) -> CECIMatcher:
        return CECIMatcher(
            query,
            self.data,
            order_strategy=self.order_strategy,
            break_automorphisms=False,
            use_refinement=self.use_refinement,
            use_intersection=self.use_intersection,
            store="compact",
        )

    def _prepare(self, job: _ShardJob) -> None:
        """Resolve the request's index through the cache tiers, then
        publish it for the shard processes to mmap."""
        request = job.request
        job.prepared_at = time.perf_counter()
        if job.flight is not None:
            job.flight.event(
                "prepare",
                queue_seconds=round(job.prepared_at - job.submitted_at, 6),
            )
        build_stats: List[MatchStats] = []

        def build() -> CompactCECI:
            build_index = next(self._build_picks)
            if (
                self.fault_plan is not None
                and self.fault_plan.build_fails_at(build_index)
            ):
                raise InjectedBuildError(build_index)
            matcher = self._fresh_matcher(request.query)
            store = matcher.build()
            build_stats.append(matcher.stats)
            assert isinstance(store, CompactCECI)
            return store

        entry, tag, order = self.index_cache.get_or_build(
            request.query, build
        )
        store = self.index_cache.adapt(entry, request.query, order)
        if store is None:
            # Canonical-signature collision: build privately.
            matcher = self._fresh_matcher(request.query)
            built = matcher.build()
            assert isinstance(built, CompactCECI)
            store = built
            build_stats.append(matcher.stats)
            tag = "miss"
        job.cache_tag = tag
        job.pivot_order = [int(p) for p in store.pivots]
        self.metrics.inc("service_cache_outcomes", label=tag)
        for stats in build_stats:
            job.stats.merge(stats)
            self.metrics.observe(
                "service_build_seconds",
                sum(
                    stats.phase_seconds.get(phase, 0.0)
                    for phase in ("preprocess", "filter", "refine", "freeze")
                ),
            )
        job.fingerprint = request.query.fingerprint()
        job.index_path = self._publish(job.fingerprint, entry, store)
        if job.flight is not None:
            job.flight.event(
                "index", tier=tag,
                transplanted=(tag != "miss" and store is not entry.store),
                path=os.path.basename(job.index_path),
            )

    def _publish(self, fingerprint: str, entry, store: CompactCECI) -> str:
        """Publish ``store`` once per query fingerprint as a checksummed
        CECIIDX3 file every shard can mmap.  Version numbers live in
        the *filename*: a republish never rewrites a file some shard
        already mapped, so a stale reader can at worst re-verify an
        intact old version, never observe a torn new one."""
        with self._publish_lock:
            existing = self._published.get(fingerprint)
            if existing is not None:
                return existing[0]
            blob = self.index_cache.serialized(entry, store)
            version = 0
            path = os.path.join(
                self.share_dir, f"{fingerprint}.v{version}.ceci"
            )
            out = blob
            pick = next(self._publish_picks)
            if (
                self.fault_plan is not None
                and self.fault_plan.publish_torn_at(pick)
            ):
                # Torn publish: the file ends mid-block, as if the
                # publisher died between write and fsync.
                out = blob[: (2 * len(blob)) // 3]
            publish_bytes(out, path)
            self._published[fingerprint] = (path, version, blob)
            self.metrics.inc("service_shard_publishes")
            return path

    def _republish(self, fingerprint: str, bad_path: str) -> Optional[str]:
        """Publish the pristine blob under a bumped version after a
        shard reported checksum failure on ``bad_path``.  Idempotent
        per torn version: when several shards report the same torn file
        only the first bumps; the rest are pointed at the repair.  The
        torn file is left in place — other in-flight tasks referencing
        it fail their own checksum and land here too, never read
        garbage.  The recovery path writes the known-good bytes
        directly: the torn-publish fault models the initial write, not
        the repair."""
        with self._publish_lock:
            existing = self._published.get(fingerprint)
            if existing is None:
                return None
            path, version, blob = existing
            if path != bad_path:
                return path  # already republished past the torn version
            version += 1
            path = os.path.join(
                self.share_dir, f"{fingerprint}.v{version}.ceci"
            )
            publish_bytes(blob, path)
            self._published[fingerprint] = (path, version, blob)
            self.metrics.inc("service_shard_republishes")
            return path

    def _plan(self, job: _ShardJob) -> None:
        """Fan the job out: solo to the least-loaded shard, otherwise
        one task per shard owning a nonempty pivot partition."""
        request = job.request
        if request.solo:
            shard = self._least_loaded()
            spec = {
                "kind": "solo",
                "index_path": job.index_path,
                "query": request.query,
                "break_automorphisms": request.break_automorphisms,
                "kernel": request.kernel,
                "limit": request.limit,
                "budget": request.budget,
            }
            with job.lock:
                job.fanout = 1
                job.remaining = 1
            self.metrics.inc("service_shard_solo_routed")
            if job.flight is not None:
                job.flight.event("planned", mode="solo", shard=shard)
            self._enqueue(shard, _ShardTask(next(self._task_ids), job, spec),
                          solo=True)
            return
        pivots = job.pivot_order
        if not pivots:
            self._finalize(job, [], Status.OK)
            return
        assignments = distribute_pivots(
            self.data, pivots, self.shards, mode=self.partition_mode
        )
        owned = [
            (shard, list(assigned))
            for shard, assigned in enumerate(assignments)
            if assigned
        ]
        if not owned:  # defensive: planner returned nothing to do
            self._finalize(job, [], Status.OK)
            return
        with job.lock:
            job.fanout = len(owned)
            job.remaining = len(owned)
        self.metrics.observe("service_shard_fanout", len(owned))
        if job.flight is not None:
            job.flight.event(
                "planned", mode="fanout", shards=len(owned),
                pivots=len(pivots),
            )
        for shard, assigned in owned:
            spec = {
                "kind": "units",
                "index_path": job.index_path,
                "query": request.query,
                "break_automorphisms": request.break_automorphisms,
                "kernel": request.kernel,
                "pivots": assigned,
            }
            self._enqueue(
                shard, _ShardTask(next(self._task_ids), job, spec)
            )

    def _least_loaded(self) -> int:
        with self._task_lock:
            depth = [
                len(self._outboxes[i]) + (1 if i in self._current else 0)
                for i in range(self.shards)
            ]
        return min(range(self.shards), key=lambda i: depth[i])

    def _enqueue(
        self, shard: int, task: _ShardTask, solo: bool = False
    ) -> None:
        try:
            if solo:
                self._outboxes[shard].push_solo(task)
            else:
                self._outboxes[shard].push(1.0, task)
        except RuntimeError:
            # Outbox closed mid-push (timed-out close): the close path
            # force-finalizes every leftover job.
            return

    # ------------------------------------------------------------------
    # Dispatcher threads: one per shard, window of one
    # ------------------------------------------------------------------
    def _dispatch_loop(self, shard_index: int) -> None:
        outbox = self._outboxes[shard_index]
        window = self._windows[shard_index]
        while True:
            window.acquire()
            task = outbox.pop()
            if task is None:  # closed and drained
                return
            if task.job.done:  # finalized while queued — skip the send
                window.release()
                self._discard_task(task)
                continue
            with self._task_lock:
                self._inflight_tasks[task.task_id] = task
                self._current[shard_index] = task.task_id
                pick = self._dispatch_counts[shard_index]
                self._dispatch_counts[shard_index] += 1
            try:
                with self._fork_lock:
                    conn = self._shards[shard_index].conn
                with self._send_locks[shard_index]:
                    conn.send(("task", task.task_id, pick, task.spec))
                self.metrics.inc("service_shard_tasks_total")
                if task.job.flight is not None:
                    task.job.flight.event(
                        "shard_dispatch", shard=shard_index,
                        task=task.task_id, kind=task.spec["kind"],
                    )
            except Exception:  # noqa: BLE001 - dead pipe: the reader
                # respawns the shard; requeue and hand the permit back.
                # Whoever claims the in-flight record owns the permit
                # release — if the reader's crash recovery claimed it
                # first, it also released, and we must not double up.
                removed = self._take_task(shard_index, task.task_id)
                if removed is not None:
                    window.release()
                    if not self._stopping:
                        try:
                            outbox.push_recovered(task)
                        except RuntimeError:
                            pass
                time.sleep(0.005)

    def _take_task(
        self, shard_index: int, task_id: int
    ) -> Optional[_ShardTask]:
        """Atomically claim (remove) an in-flight task record.  Exactly
        one of the dispatcher's failure path, the reader's result path
        and the reader's crash-recovery path wins; the winner owns the
        window permit release."""
        with self._task_lock:
            record = self._inflight_tasks.pop(task_id, None)
            if self._current.get(shard_index) == task_id:
                del self._current[shard_index]
            return record

    def _discard_task(self, task: _ShardTask) -> None:
        """Bookkeeping for a task dropped before dispatch (its job was
        already finalized): keep ``remaining`` consistent."""
        with task.job.lock:
            task.job.remaining -= 1

    # ------------------------------------------------------------------
    # Reader threads: results, errors, crash recovery
    # ------------------------------------------------------------------
    def _reader_loop(self, shard: _Shard, conn, proc) -> None:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                if not self._stopping:
                    self._handle_shard_death(shard, conn, proc)
                return
            self._handle_message(shard.index, message)

    def _handle_shard_death(self, shard: _Shard, conn, proc) -> None:
        """Pipe EOF from a live service: the shard process died.  Claim
        its in-flight task, respawn the process (new pipe, new reader
        thread), then re-dispatch or fail the lost task."""
        with self._fork_lock:
            if self._stopping or shard.conn is not conn:
                return
            self.metrics.inc("service_shard_crashes")
            record: Optional[_ShardTask] = None
            with self._task_lock:
                task_id = self._current.get(shard.index)
            if task_id is not None:
                record = self._take_task(shard.index, task_id)
            try:
                conn.close()
            except Exception:  # noqa: BLE001
                pass
            if proc is not None:
                proc.join(timeout=1.0)
            self._fork_shard(shard)
            self._start_reader(shard)
            self.metrics.inc("service_shard_respawns")
        if record is not None:
            self._recover_task(shard.index, record, reason="shard crash")

    def _recover_task(
        self, shard_index: int, record: _ShardTask, reason: str
    ) -> None:
        """Re-dispatch a lost task head-of-line, bounded by
        ``max_redispatch`` per request; the claimed window permit is
        handed back here."""
        job = record.job
        self._windows[shard_index].release()
        with job.lock:
            if job.done:
                return
            job.redispatches += 1
            exhausted = job.redispatches > self.max_redispatch
        if job.flight is not None:
            job.flight.event(
                "shard_recover", shard=shard_index, task=record.task_id,
                reason=reason, attempt=job.redispatches,
            )
        if exhausted:
            self._finalize(
                job, [], Status.CRASHED,
                error=(
                    f"task re-dispatched {self.max_redispatch} times "
                    f"({reason}) without completing"
                ),
            )
            return
        self.metrics.inc("service_shard_redispatches")
        try:
            self._outboxes[shard_index].push_recovered(record)
        except RuntimeError:
            pass  # closing: leftover jobs are force-finalized

    def _handle_message(self, shard_index: int, message: Tuple) -> None:
        kind = message[0]
        if kind == "result":
            _, task_id, payload = message
            record = self._take_task(shard_index, task_id)
            if record is None:
                return  # already recovered elsewhere
            with self._task_lock:
                shard = self._shards[shard_index]
                shard.busy_seconds += float(payload.get("busy", 0.0))
                shard.tasks += 1
            self._windows[shard_index].release()
            self._absorb_result(shard_index, record, payload)
        elif kind == "error":
            _, task_id, err_kind, detail = message
            record = self._take_task(shard_index, task_id)
            if record is None:
                return
            self._windows[shard_index].release()
            if err_kind == "corrupt_index":
                self.metrics.inc("service_shard_corrupt_loads")
                self._handle_corrupt(shard_index, record, detail)
            else:
                self._finalize(record.job, [], Status.FAILED, error=detail)

    def _handle_corrupt(
        self, shard_index: int, record: _ShardTask, detail: str
    ) -> None:
        """A shard refused a torn published index: republish pristine
        bytes under a bumped version and re-dispatch against the new
        path.  The window permit was already released by the caller, so
        recovery must not release it again — re-enqueue directly."""
        job = record.job
        path = (
            self._republish(job.fingerprint, record.spec["index_path"])
            if job.fingerprint is not None
            else None
        )
        if path is None:
            self._finalize(job, [], Status.FAILED, error=detail)
            return
        record.spec["index_path"] = path
        with job.lock:
            if job.done:
                return
            job.redispatches += 1
            exhausted = job.redispatches > self.max_redispatch
        if job.flight is not None:
            job.flight.event(
                "shard_republish", shard=shard_index,
                task=record.task_id, attempt=job.redispatches,
            )
        if exhausted:
            self._finalize(
                job, [], Status.FAILED,
                error=f"shared index stayed corrupt after republish: {detail}",
            )
            return
        self.metrics.inc("service_shard_redispatches")
        try:
            self._outboxes[shard_index].push_recovered(record)
        except RuntimeError:
            pass

    def _absorb_result(
        self, shard_index: int, record: _ShardTask, payload: Dict
    ) -> None:
        job = record.job
        if job.flight is not None:
            job.flight.event(
                "shard_result", shard=shard_index, task=record.task_id,
                seconds=round(float(payload.get("seconds", 0.0)), 6),
                busy=round(float(payload.get("busy", 0.0)), 6),
            )
        if payload["kind"] == "solo":
            with job.lock:
                if job.done:
                    return
                job.stats.merge(payload["stats"])
            status = (
                Status.TRUNCATED if payload["truncated"] else Status.OK
            )
            self._finalize(
                job,
                payload["embeddings"],
                status,
                stop_reason=payload["stop_reason"],
            )
            return
        with job.lock:
            if job.done:
                job.remaining -= 1
                return
            job.parts.update(payload["parts"])
            job.stats.merge(payload["stats"])
            job.remaining -= 1
            last = job.remaining == 0
        if last:
            embeddings: List[Embedding] = []
            for pivot in job.pivot_order:
                part = job.parts.get(pivot)
                if part:
                    embeddings.extend(part)
            self._finalize(job, embeddings, Status.OK)

    # ------------------------------------------------------------------
    # Deadline/cancel monitor thread
    # ------------------------------------------------------------------
    def _monitor_loop(self) -> None:
        while not self._monitor_stop.wait(_MONITOR_INTERVAL):
            now = time.perf_counter()
            with self._state_lock:
                jobs = list(self._jobs)
            for job in jobs:
                if job.done:
                    continue
                if job.cancelled:
                    self._finalize(
                        job, [], Status.CANCELLED,
                        error=self._abort_error(Status.CANCELLED),
                    )
                elif (
                    job.deadline_at is not None and now >= job.deadline_at
                ):
                    self._finalize(
                        job, [], Status.TIMEOUT,
                        error=self._abort_error(Status.TIMEOUT),
                    )

    # ------------------------------------------------------------------
    def _finalize(
        self,
        job: _ShardJob,
        embeddings: List[Embedding],
        status: str,
        stop_reason: Optional[str] = None,
        error: Optional[str] = None,
    ) -> None:
        with job.lock:
            if job.done:  # first resolution wins
                return
            job.done = True
        now = time.perf_counter()
        latency = now - job.submitted_at
        service_seconds = now - job.prepared_at
        self.metrics.inc("service_requests_total", label=status)
        self.metrics.observe("service_request_seconds", latency)
        self.metrics.observe("service_time_seconds", service_seconds)
        if job.flight is not None:
            job.flight.event("final", status=status)
            job.flight.finish(
                status=status,
                cache=job.cache_tag,
                retries=job.redispatches,
                latency_seconds=latency,
                service_seconds=service_seconds,
                stop_reason=stop_reason,
                error=error,
            )
        job.pending._resolve(MatchResponse(
            request_id=job.request.request_id,
            status=status,
            embeddings=embeddings,
            truncated=status == Status.TRUNCATED,
            stop_reason=stop_reason,
            cache=job.cache_tag,
            stats=job.stats,
            latency_seconds=latency,
            service_seconds=service_seconds,
            retries=job.redispatches,
            shard_fanout=job.fanout or None,
            error=error,
        ))
        with self._idle:
            self._jobs.discard(job)
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.notify_all()
