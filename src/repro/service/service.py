"""The resident match service: one data graph, many concurrent queries.

:class:`MatchService` loads (or receives) a data graph once and answers
:class:`~repro.service.request.MatchRequest`\\ s through a bounded worker
pool.  The pieces, and where each lives:

* **admission control** — :meth:`submit` counts in-flight requests; past
  ``max_pending`` a request is shed immediately with a ``REJECTED``
  response, before it can touch any shared state;
* **index reuse** — a scheduler thread resolves each admitted request's
  index through the cross-query :class:`~repro.service.cache.IndexCache`
  (LRU hit / spilled-blob warm / in-flight coalesce / fresh build);
* **batching & fairness** — unbounded requests are decomposed into their
  embedding clusters and all requests' cluster units interleave on one
  :class:`~repro.service.scheduler.FairTaskQueue`, so a huge query never
  starves its neighbours; budgeted/limited requests run *solo* ahead of
  the batch so their truncation prefixes are exactly the sequential
  matcher's;
* **isolation** — every unit enumerates into a private
  :class:`~repro.core.stats.MatchStats` merged under the job's lock, and
  the shared TE∩NTE intersection pool is only reached through
  per-request :meth:`~repro.kernels.cache.IntersectionCache.view`
  namespaces, so neither counters nor cached intersections can bleed
  between requests.

**Exactness.**  A response's embedding list is bit-identical to a fresh
``CECIMatcher(query, data).run(limit)`` whenever the request's labeling
matches the cached representative's (always true for cold builds and
exact repeats): the frozen store is the same arrays, solo runs replay
the sequential recursion, and batched runs concatenate per-pivot cluster
results back in pivot order — which *is* sequential ``collect`` order.
For an isomorphic-but-relabeled hit the transplanted index yields the
same embedding *set* (enumeration order may differ; symmetry breaking is
applied with the request's own breaker, so the chosen representatives
are the request's, not the cached labeling's).
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Tuple

from ..core.automorphism import SymmetryBreaker
from ..core.enumeration import Embedding, Enumerator
from ..core.matcher import CECIMatcher
from ..core.stats import MatchStats
from ..core.store import CompactCECI
from ..graph import Graph
from ..kernels import DEFAULT_CACHE_SIZE, IntersectionCache
from ..observability.metrics import MetricSpec, MetricsRegistry
from ..parallel.scheduling import dynamic_schedule
from ..resilience.budget import BudgetExhausted, BudgetTracker
from .cache import IndexCache
from .request import MatchRequest, MatchResponse, Status
from .scheduler import FairTaskQueue

__all__ = ["MatchService", "PendingMatch", "service_metric_specs"]


def service_metric_specs() -> Tuple[MetricSpec, ...]:
    """Spec table for the service's own registry (request outcomes,
    cache tiers, queue pressure, latency histograms)."""
    return (
        MetricSpec(
            "service_requests_total",
            labeled=True,
            label_name="status",
            help="Requests by terminal status.",
        ),
        MetricSpec(
            "service_cache_outcomes",
            labeled=True,
            label_name="tier",
            help="Index resolutions by tier (miss/hit/warm/coalesced).",
        ),
        MetricSpec(
            "service_units_total",
            help="Cluster work units executed by the pool.",
        ),
        MetricSpec(
            "service_index_cache_hits",
            help="Index LRU hits.",
        ),
        MetricSpec(
            "service_index_cache_warm_hits",
            help="Indexes revived from spilled CECIIDX3 blobs.",
        ),
        MetricSpec(
            "service_index_cache_coalesced",
            help="Requests that shared a concurrent in-flight build.",
        ),
        MetricSpec(
            "service_index_cache_misses",
            help="Indexes built from scratch.",
        ),
        MetricSpec(
            "service_index_cache_evictions",
            help="LRU entries evicted.",
        ),
        MetricSpec(
            "service_index_cache_spills",
            help="Evicted entries written to the spill tier.",
        ),
        MetricSpec(
            "service_queue_depth_peak",
            kind="gauge",
            merge="max",
            help="Peak concurrent in-flight requests.",
        ),
        MetricSpec(
            "service_plan_makespan",
            kind="gauge",
            merge="max",
            help="Predicted pool makespan of the last batched job "
                 "(dynamic_schedule over its unit costs).",
        ),
        MetricSpec(
            "service_plan_skew",
            kind="gauge",
            merge="max",
            help="Predicted balance skew of the last batched job.",
        ),
        MetricSpec(
            "service_request_seconds",
            kind="histogram",
            help="Submit-to-completion latency.",
        ),
        MetricSpec(
            "service_time_seconds",
            kind="histogram",
            help="Prepare+execute time, excluding queue wait.",
        ),
        MetricSpec(
            "service_build_seconds",
            kind="histogram",
            help="Index build time paid by cache misses.",
        ),
    )


class PendingMatch:
    """Handle for one submitted request — a one-shot future."""

    __slots__ = ("request", "_event", "_response")

    def __init__(self, request: MatchRequest) -> None:
        self.request = request
        self._event = threading.Event()
        self._response: Optional[MatchResponse] = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> MatchResponse:
        """Block until the response is ready."""
        if not self._event.wait(timeout=timeout):
            raise TimeoutError(
                f"request {self.request.request_id} still pending"
            )
        assert self._response is not None
        return self._response

    def _resolve(self, response: MatchResponse) -> None:
        self._response = response
        self._event.set()


class _Job:
    """Mutable execution state of one admitted request."""

    __slots__ = (
        "request", "pending", "submitted_at", "prepared_at", "symmetry",
        "store", "cache_tag", "namespace", "tracker", "stats", "parts",
        "remaining", "truncated", "stop_reason", "error", "lock",
    )

    def __init__(
        self,
        request: MatchRequest,
        pending: PendingMatch,
        submitted_at: float,
    ) -> None:
        self.request = request
        self.pending = pending
        self.submitted_at = submitted_at
        self.prepared_at = submitted_at
        self.symmetry: Optional[SymmetryBreaker] = None
        self.store: Optional[CompactCECI] = None
        self.cache_tag: Optional[str] = None
        self.namespace: Optional[Tuple[str, ...]] = None
        self.tracker: Optional[BudgetTracker] = None
        self.stats = MatchStats()
        self.parts: List[Optional[List[Embedding]]] = []
        self.remaining = 0
        self.truncated = False
        self.stop_reason: Optional[str] = None
        self.error: Optional[str] = None
        self.lock = threading.Lock()


#: Task shapes on the worker channel: ``(job, -1, ())`` runs solo,
#: ``(job, i, prefix)`` runs cluster unit ``i``.
_Task = Tuple[_Job, int, Tuple[int, ...]]

_CLOSE = object()


class MatchService:
    """A resident matcher over one data graph.

    Engine knobs that shape the *index* (order strategy, filters,
    refinement, intersection mode) are fixed service-wide — that is the
    invariant making cross-query index reuse sound.  Per-request knobs
    (limit, budget, kernel, symmetry) ride on each
    :class:`~repro.service.request.MatchRequest`.

    Use as a context manager, or call :meth:`close` when done.
    """

    def __init__(
        self,
        data: Graph,
        workers: int = 2,
        max_pending: int = 64,
        index_capacity: int = 32,
        spill_dir: Optional[str] = None,
        intersection_cache_size: int = DEFAULT_CACHE_SIZE,
        order_strategy: str = "bfs",
        use_refinement: bool = True,
        use_intersection: bool = True,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.data = data
        self.workers = workers
        self.max_pending = max_pending
        self.order_strategy = order_strategy
        self.use_refinement = use_refinement
        self.use_intersection = use_intersection
        self.metrics = (
            metrics
            if metrics is not None
            else MetricsRegistry(service_metric_specs())
        )
        for spec in service_metric_specs():
            self.metrics.register(spec)
        self.index_cache = IndexCache(
            data,
            capacity=index_capacity,
            spill_dir=spill_dir,
            metrics=self.metrics,
        )
        #: Shared TE∩NTE memo pool; reached only through per-request
        #: namespaced views (see repro.kernels.cache) so two queries can
        #: never read each other's intersections.
        self.intersection_pool = (
            IntersectionCache(intersection_cache_size, threadsafe=True)
            if intersection_cache_size > 0
            else None
        )
        self._state_lock = threading.Lock()
        self._idle = threading.Condition(self._state_lock)
        self._inflight = 0
        self._peak = 0
        self._closed = False
        self._inbox: "list" = []
        self._inbox_ready = threading.Condition()
        self._tasks: FairTaskQueue[_Task] = FairTaskQueue()
        self._scheduler = threading.Thread(
            target=self._scheduler_loop, name="svc-scheduler", daemon=True
        )
        self._pool = [
            threading.Thread(
                target=self._worker_loop, name=f"svc-worker-{w}", daemon=True
            )
            for w in range(workers)
        ]
        self._scheduler.start()
        for thread in self._pool:
            thread.start()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def submit(self, request: MatchRequest) -> PendingMatch:
        """Admit (or shed) one request; never blocks on matching work."""
        pending = PendingMatch(request)
        now = time.perf_counter()
        with self._state_lock:
            if self._closed:
                raise RuntimeError("service is closed")
            if self._inflight >= self.max_pending:
                self.metrics.inc(
                    "service_requests_total", label=Status.REJECTED
                )
                pending._resolve(MatchResponse(
                    request_id=request.request_id,
                    status=Status.REJECTED,
                    error=(
                        f"queue depth {self._inflight} at limit "
                        f"{self.max_pending}"
                    ),
                ))
                return pending
            self._inflight += 1
            if self._inflight > self._peak:
                self._peak = self._inflight
                self.metrics.set_gauge("service_queue_depth_peak", self._peak)
        with self._inbox_ready:
            self._inbox.append(_Job(request, pending, now))
            self._inbox_ready.notify()
        return pending

    def match(self, request: MatchRequest) -> MatchResponse:
        """Submit and wait — the synchronous convenience path."""
        return self.submit(request).result()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until no request is in flight; False on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while self._inflight > 0:
                left = None
                if deadline is not None:
                    left = deadline - time.monotonic()
                    if left <= 0:
                        return False
                self._idle.wait(timeout=left)
        return True

    def close(self) -> None:
        """Drain in-flight work, then stop every thread (idempotent)."""
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
        self.drain()
        with self._inbox_ready:
            self._inbox.append(_CLOSE)
            self._inbox_ready.notify()
        self._scheduler.join()
        self._tasks.close()
        for thread in self._pool:
            thread.join()

    def __enter__(self) -> "MatchService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def snapshot(self) -> Dict[str, object]:
        """Registry + cache tiers as one JSON-friendly dict."""
        out: Dict[str, object] = {
            "metrics": self.metrics.as_dict(),
            "index_cache": self.index_cache.snapshot(),
        }
        if self.intersection_pool is not None:
            out["intersection_pool"] = self.intersection_pool.snapshot()
        return out

    # ------------------------------------------------------------------
    # Scheduler thread: admit -> resolve index -> plan tasks
    # ------------------------------------------------------------------
    def _scheduler_loop(self) -> None:
        while True:
            with self._inbox_ready:
                while not self._inbox:
                    self._inbox_ready.wait()
                item = self._inbox.pop(0)
            if item is _CLOSE:
                return
            job: _Job = item
            try:
                self._prepare(job)
            except BudgetExhausted as stop:
                job.stats.budget_stops += 1
                self._finalize(
                    job, [], Status.TRUNCATED, stop_reason=stop.reason
                )
                continue
            except Exception as exc:  # noqa: BLE001 - one bad request
                # must not take the scheduler (and service) down with it
                self._finalize(job, [], Status.FAILED, error=repr(exc))
                continue
            self._plan(job)

    def _prepare(self, job: _Job) -> None:
        """Resolve the request's index (cache tiers, then build), start
        its budget clock, and build its symmetry breaker."""
        request = job.request
        job.prepared_at = time.perf_counter()
        if request.budget is not None and not request.budget.unlimited:
            job.tracker = request.budget.tracker().start()
        job.symmetry = SymmetryBreaker(
            request.query, enabled=request.break_automorphisms
        )

        build_stats: List[MatchStats] = []

        def build() -> CompactCECI:
            matcher = self._fresh_matcher(request.query)
            store = matcher.build()
            build_stats.append(matcher.stats)
            assert isinstance(store, CompactCECI)
            return store

        entry, tag, order = self.index_cache.get_or_build(
            request.query, build
        )
        store = self.index_cache.adapt(entry, request.query, order)
        if store is None:
            # Canonical-signature collision (astronomically rare): the
            # cached representative is not actually isomorphic to this
            # query.  Build privately; correctness over reuse.
            matcher = self._fresh_matcher(request.query)
            built = matcher.build()
            assert isinstance(built, CompactCECI)
            store = built
            build_stats.append(matcher.stats)
            tag = "miss"
        job.store = store
        job.cache_tag = tag
        job.namespace = (
            self.index_cache.data_fingerprint,
            entry.key[1],
            request.query.fingerprint(),
        )
        self.metrics.inc("service_cache_outcomes", label=tag)
        for stats in build_stats:
            # The request that paid for the build carries its phases.
            job.stats.merge(stats)
            build_seconds = sum(
                stats.phase_seconds.get(phase, 0.0)
                for phase in ("preprocess", "filter", "refine", "freeze")
            )
            self.metrics.observe("service_build_seconds", build_seconds)
        # Mirror CECIMatcher.run: the deadline covers index resolution;
        # a request that used up its budget getting an index returns a
        # truncated empty prefix rather than enumerating on borrowed
        # time.
        if job.tracker is not None:
            job.tracker.check_deadline()

    def _fresh_matcher(self, query: Graph) -> CECIMatcher:
        """A matcher with the service-wide index configuration.  Builds
        never consult the symmetry breaker, so it is disabled here; the
        request's own breaker is applied at enumeration time."""
        return CECIMatcher(
            query,
            self.data,
            order_strategy=self.order_strategy,
            break_automorphisms=False,
            use_refinement=self.use_refinement,
            use_intersection=self.use_intersection,
            store="compact",
        )

    def _plan(self, job: _Job) -> None:
        """Enqueue the job's tasks: solo for budgeted/limited requests,
        one fair-interleaved task per embedding cluster otherwise."""
        if job.request.solo:
            self._tasks.push_solo((job, -1, ()))
            return
        store = job.store
        assert store is not None
        pivots = [int(p) for p in store.pivots]
        if not pivots:
            self._finalize(job, [], Status.OK)
            return
        workloads = [
            max(float(store.cluster_cardinality(p)), 1.0) for p in pivots
        ]
        plan = dynamic_schedule(sorted(workloads, reverse=True), self.workers)
        self.metrics.set_gauge("service_plan_makespan", plan.makespan)
        self.metrics.set_gauge("service_plan_skew", plan.skew)
        job.parts = [None] * len(pivots)
        job.remaining = len(pivots)
        tasks: List[_Task] = [
            (job, i, (pivot,)) for i, pivot in enumerate(pivots)
        ]
        self._tasks.push_job(tasks, workloads)

    # ------------------------------------------------------------------
    # Worker threads
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            task = self._tasks.pop()
            if task is None:
                return
            job, index, prefix = task
            try:
                if index < 0:
                    self._run_solo(job)
                else:
                    self._run_unit(job, index, prefix)
            except Exception as exc:  # noqa: BLE001 - fail the request,
                # not the worker: the pool must survive any one query
                self._fail_unit(job, index, repr(exc))

    def _enumerator(self, job: _Job, stats: MatchStats) -> Enumerator:
        cache = None
        if self.intersection_pool is not None:
            cache = self.intersection_pool.view(job.namespace, stats=stats)
        assert job.store is not None and job.symmetry is not None
        return Enumerator(
            job.store,
            symmetry=job.symmetry,
            use_intersection=self.use_intersection,
            stats=stats,
            tracker=job.tracker,
            kernel=job.request.kernel,
            cache=cache,
        )

    def _run_solo(self, job: _Job) -> None:
        """Un-decomposed run — replays the sequential matcher exactly,
        so budget truncation and ``limit`` prefixes are bit-identical."""
        started = time.perf_counter()
        enumerator = self._enumerator(job, job.stats)
        embeddings = enumerator.collect(job.request.limit)
        job.stats.add_phase("enumerate", time.perf_counter() - started)
        if enumerator.truncated:
            self._finalize(
                job,
                embeddings,
                Status.TRUNCATED,
                stop_reason=enumerator.stop_reason,
            )
        else:
            self._finalize(job, embeddings, Status.OK)

    def _run_unit(
        self, job: _Job, index: int, prefix: Tuple[int, ...]
    ) -> None:
        """One embedding cluster, enumerated into a *private* stats
        object merged under the job lock — ``int +=`` is not atomic, so
        concurrent units writing one stats object would drop counts."""
        started = time.perf_counter()
        unit_stats = MatchStats()
        enumerator = self._enumerator(job, unit_stats)
        result = enumerator.collect_from_unit(prefix)
        unit_stats.add_phase("enumerate", time.perf_counter() - started)
        self.metrics.inc("service_units_total")
        with job.lock:
            job.parts[index] = result
            job.stats.merge(unit_stats)
            job.remaining -= 1
            last = job.remaining == 0 and job.error is None
            failed = job.remaining == 0 and job.error is not None
        if last:
            embeddings: List[Embedding] = []
            for part in job.parts:
                if part:
                    embeddings.extend(part)
            self._finalize(job, embeddings, Status.OK)
        elif failed:
            self._finalize(job, [], Status.FAILED, error=job.error)

    def _fail_unit(self, job: _Job, index: int, error: str) -> None:
        if index < 0:
            self._finalize(job, [], Status.FAILED, error=error)
            return
        with job.lock:
            job.error = error
            job.remaining -= 1
            last = job.remaining == 0
        if last:
            self._finalize(job, [], Status.FAILED, error=job.error)

    # ------------------------------------------------------------------
    def _finalize(
        self,
        job: _Job,
        embeddings: List[Embedding],
        status: str,
        stop_reason: Optional[str] = None,
        error: Optional[str] = None,
    ) -> None:
        now = time.perf_counter()
        latency = now - job.submitted_at
        service_seconds = now - job.prepared_at
        self.metrics.inc("service_requests_total", label=status)
        self.metrics.observe("service_request_seconds", latency)
        self.metrics.observe("service_time_seconds", service_seconds)
        job.pending._resolve(MatchResponse(
            request_id=job.request.request_id,
            status=status,
            embeddings=embeddings,
            truncated=status == Status.TRUNCATED,
            stop_reason=stop_reason,
            cache=job.cache_tag,
            stats=job.stats,
            latency_seconds=latency,
            service_seconds=service_seconds,
            error=error,
        ))
        with self._idle:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.notify_all()
