"""The resident match service: one data graph, many concurrent queries.

:class:`MatchService` loads (or receives) a data graph once and answers
:class:`~repro.service.request.MatchRequest`\\ s through a bounded worker
pool.  The pieces, and where each lives:

* **admission control** — :meth:`submit` counts in-flight requests; past
  ``max_pending`` a request is shed immediately with a ``REJECTED``
  response, before it can touch any shared state;
* **index reuse** — a scheduler thread resolves each admitted request's
  index through the cross-query :class:`~repro.service.cache.IndexCache`
  (LRU hit / spilled-blob warm / in-flight coalesce / fresh build);
* **batching & fairness** — unbounded requests are decomposed into their
  embedding clusters and all requests' cluster units interleave on one
  :class:`~repro.service.scheduler.FairTaskQueue`, so a huge query never
  starves its neighbours; budgeted/limited requests run *solo* ahead of
  the batch so their truncation prefixes are exactly the sequential
  matcher's;
* **isolation** — every unit enumerates into a private
  :class:`~repro.core.stats.MatchStats` merged under the job's lock, and
  the shared TE∩NTE intersection pool is only reached through
  per-request :meth:`~repro.kernels.cache.IntersectionCache.view`
  namespaces, so neither counters nor cached intersections can bleed
  between requests;
* **supervision** — a watchdog thread patrols the pool: a worker thread
  that *died* holding a request (real bug or injected crash) has its
  in-flight task failed as a crash and its slot respawned, so the pool
  never silently shrinks; a worker *wedged* past ``stall_after_seconds``
  on one heartbeat is condemned (Python threads cannot be killed — the
  condemned thread exits at its next loop boundary), its request is
  failed with ``TIMEOUT``, and a replacement is spawned immediately;
* **deadlines & cancellation** — each request may carry an end-to-end
  ``deadline_seconds`` (service-wide default available) measured from
  submit and covering queue wait + index resolution + matching.  It is
  enforced cooperatively at the scheduler pop, after the index build,
  and at every batch boundary; an expired request resolves ``TIMEOUT``
  with no embeddings.  :meth:`PendingMatch.cancel` rides the same
  boundaries with ``CANCELLED``;
* **retry** — with a :class:`~repro.resilience.recovery.RetryPolicy`,
  requests failed by a worker crash or an injected transient fault are
  transparently re-run (fresh index resolution, fresh budget clock)
  after an exponential-backoff-with-jitter delay, up to
  ``max_retries`` times; the response's ``retries`` field and the
  ``service_retries_total`` counter account for every re-run.

**Exactness.**  A response's embedding list is bit-identical to a fresh
``CECIMatcher(query, data).run(limit)`` whenever the request's labeling
matches the cached representative's (always true for cold builds and
exact repeats): the frozen store is the same arrays, solo runs replay
the sequential recursion, and batched runs concatenate per-pivot cluster
results back in pivot order — which *is* sequential ``collect`` order.
For an isomorphic-but-relabeled hit the transplanted index yields the
same embedding *set* (enumeration order may differ; symmetry breaking is
applied with the request's own breaker, so the chosen representatives
are the request's, not the cached labeling's).  Retries preserve this:
a re-run starts from scratch, so a retried ``OK`` answer is exactly a
first-attempt ``OK`` answer.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import random
import threading
import time
from typing import Dict, List, Optional, Set, TextIO, Tuple, Union

from ..core.automorphism import SymmetryBreaker
from ..core.enumeration import Embedding, Enumerator
from ..core.estimate import plan_facts
from ..core.matcher import CECIMatcher
from ..core.stats import MatchStats
from ..core.store import CompactCECI
from ..graph import Graph
from ..kernels import DEFAULT_CACHE_SIZE, IntersectionCache
from ..observability.flight import FLIGHT_SCHEMA, FlightRecorder
from ..observability.history import QueryHistory
from ..observability.metrics import MetricSpec, MetricsRegistry
from ..observability.tracer import NULL_TRACER
from ..parallel.scheduling import dynamic_schedule
from ..resilience.budget import BudgetExhausted, BudgetTracker
from ..resilience.faults import FaultPlan, InjectedBuildError, InjectedCrash
from ..resilience.recovery import RetryPolicy
from .cache import IndexCache
from .request import MatchRequest, MatchResponse, Status
from .scheduler import FairTaskQueue

__all__ = [
    "MatchService",
    "PendingMatch",
    "service_metric_specs",
    "rejected_response",
]

#: How long a worker blocks on one ``pop`` before re-checking whether it
#: has been condemned by the watchdog.  Bounds how quickly a condemned
#: (but idle) thread notices and exits.
_POP_INTERVAL = 0.1


def rejected_response(
    request: MatchRequest,
    inflight: int,
    max_pending: int,
    metrics: MetricsRegistry,
    flight: Optional[FlightRecorder],
) -> MatchResponse:
    """The admission-shed outcome, shared verbatim by the single-process
    and sharded services: count it, flight-record it, and build the
    ``REJECTED`` response — the request never touches shared state."""
    metrics.inc("service_requests_total", label=Status.REJECTED)
    error = f"queue depth {inflight} at limit {max_pending}"
    if flight is not None:
        record = flight.begin(request.request_id)
        record.event("admit", outcome="rejected", queue_depth=inflight)
        record.event("final", status=Status.REJECTED)
        record.finish(status=Status.REJECTED, error=error)
    return MatchResponse(
        request_id=request.request_id,
        status=Status.REJECTED,
        error=error,
    )


def service_metric_specs() -> Tuple[MetricSpec, ...]:
    """Spec table for the service's own registry (request outcomes,
    cache tiers, queue pressure, supervision events, latency
    histograms)."""
    return (
        MetricSpec(
            "service_requests_total",
            labeled=True,
            label_name="status",
            help="Requests by terminal status.",
        ),
        MetricSpec(
            "service_cache_outcomes",
            labeled=True,
            label_name="tier",
            help="Index resolutions by tier (miss/hit/warm/coalesced).",
        ),
        MetricSpec(
            "service_units_total",
            help="Cluster work units executed by the pool.",
        ),
        MetricSpec(
            "service_retries_total",
            help="Transparent re-runs of requests failed by a worker "
                 "crash or injected fault.",
        ),
        MetricSpec(
            "service_worker_respawns",
            help="Worker threads replaced by the watchdog (after a "
                 "death or a condemned stall).",
        ),
        MetricSpec(
            "service_worker_stalls",
            help="Wedged workers condemned by the watchdog.",
        ),
        MetricSpec(
            "service_index_cache_hits",
            help="Index LRU hits.",
        ),
        MetricSpec(
            "service_index_cache_warm_hits",
            help="Indexes revived from spilled CECIIDX3 blobs.",
        ),
        MetricSpec(
            "service_index_cache_coalesced",
            help="Requests that shared a concurrent in-flight build.",
        ),
        MetricSpec(
            "service_index_cache_misses",
            help="Indexes built from scratch.",
        ),
        MetricSpec(
            "service_index_cache_evictions",
            help="LRU entries evicted.",
        ),
        MetricSpec(
            "service_index_cache_spills",
            help="Evicted entries written to the spill tier.",
        ),
        MetricSpec(
            "service_index_cache_spill_corrupt",
            help="Corrupt spill blobs detected and quarantined.",
        ),
        MetricSpec(
            "service_index_cache_spill_evicted",
            help="Spill files deleted by the byte-bound LRU.",
        ),
        MetricSpec(
            "service_index_cache_transplants",
            help="Cache hits re-targeted onto an isomorphic-but-"
                 "relabeled query via sigma transplant.",
        ),
        MetricSpec(
            "service_slow_requests",
            help="Requests whose end-to-end latency exceeded the "
                 "slow-query threshold.",
        ),
        MetricSpec(
            "service_history_records",
            help="Records appended to the query-history store.",
        ),
        MetricSpec(
            "service_inflight",
            kind="gauge",
            merge="max",
            help="Requests currently in flight (scrape-time).",
        ),
        MetricSpec(
            "service_task_queue_depth",
            kind="gauge",
            merge="max",
            help="Tasks waiting on the fair queue (scrape-time).",
        ),
        MetricSpec(
            "service_healthy_workers",
            kind="gauge",
            merge="max",
            help="Pool slots holding a live thread (scrape-time).",
        ),
        MetricSpec(
            "service_queue_depth_peak",
            kind="gauge",
            merge="max",
            help="Peak concurrent in-flight requests.",
        ),
        MetricSpec(
            "service_plan_makespan",
            kind="gauge",
            merge="max",
            help="Predicted pool makespan of the last batched job "
                 "(dynamic_schedule over its unit costs).",
        ),
        MetricSpec(
            "service_plan_skew",
            kind="gauge",
            merge="max",
            help="Predicted balance skew of the last batched job.",
        ),
        MetricSpec(
            "service_request_seconds",
            kind="histogram",
            help="Submit-to-completion latency.",
        ),
        MetricSpec(
            "service_time_seconds",
            kind="histogram",
            help="Prepare+execute time, excluding queue wait.",
        ),
        MetricSpec(
            "service_build_seconds",
            kind="histogram",
            help="Index build time paid by cache misses.",
        ),
    )


def _stat_counters(stats: MatchStats) -> Dict[str, int]:
    """The non-zero integer counters of one request's stats — the
    ``counters`` object flight records and history records carry
    (``phase_seconds`` travels separately as floats)."""
    out: Dict[str, int] = {}
    for field in dataclasses.fields(stats):
        if field.name == "phase_seconds":
            continue
        value = getattr(stats, field.name)
        if value:
            out[field.name] = value
    return out


class PendingMatch:
    """Handle for one submitted request — a one-shot future."""

    __slots__ = ("request", "_event", "_response", "_job")

    def __init__(self, request: MatchRequest) -> None:
        self.request = request
        self._event = threading.Event()
        self._response: Optional[MatchResponse] = None
        self._job: Optional["_Job"] = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> MatchResponse:
        """Block until the response is ready.

        Raises :class:`TimeoutError` if the response is not ready within
        ``timeout`` seconds.  The timeout is a *wait* bound only: the
        request keeps running and a later ``result()`` call can still
        collect it.  To abandon the work too, call :meth:`cancel` (the
        request then resolves ``CANCELLED`` at its next batch boundary),
        or give the request a ``deadline_seconds`` up front.
        """
        if not self._event.wait(timeout=timeout):
            raise TimeoutError(
                f"request {self.request.request_id} still pending"
            )
        assert self._response is not None
        return self._response

    def cancel(self) -> bool:
        """Ask the service to abandon this request.

        Cancellation is cooperative: workers observe the flag at the
        next batch boundary (scheduler pop, post-build, per-unit), so a
        unit already enumerating finishes that unit first.  Returns
        ``True`` if the cancel was registered while the request was
        still in flight; ``False`` if it had already resolved (or was
        shed at admission and never ran).  A cancelled request resolves
        with ``Status.CANCELLED`` and no embeddings.
        """
        job = self._job
        if job is None:
            return False
        with job.lock:
            if job.done:
                return False
            job.cancelled = True
        return True

    def _resolve(self, response: MatchResponse) -> None:
        if self._event.is_set():  # first resolution wins
            return
        self._response = response
        self._event.set()


class _Job:
    """Mutable execution state of one admitted request."""

    __slots__ = (
        "request", "pending", "submitted_at", "prepared_at", "deadline_at",
        "symmetry", "store", "cache_tag", "namespace", "tracker", "stats",
        "parts", "remaining", "truncated", "stop_reason", "error",
        "error_kind", "retries", "cancelled", "done", "lock",
        "flight", "plan",
    )

    def __init__(
        self,
        request: MatchRequest,
        pending: PendingMatch,
        submitted_at: float,
    ) -> None:
        self.request = request
        self.pending = pending
        self.submitted_at = submitted_at
        self.prepared_at = submitted_at
        self.deadline_at: Optional[float] = None
        self.symmetry: Optional[SymmetryBreaker] = None
        self.store: Optional[CompactCECI] = None
        self.cache_tag: Optional[str] = None
        self.namespace: Optional[Tuple[str, ...]] = None
        self.tracker: Optional[BudgetTracker] = None
        self.stats = MatchStats()
        self.parts: List[Optional[List[Embedding]]] = []
        self.remaining = 0
        self.truncated = False
        self.stop_reason: Optional[str] = None
        self.error: Optional[str] = None
        #: How the current attempt failed: "crash" (worker death),
        #: "fault" (injected transient), "error" (real exception).
        #: Only "crash" and "fault" are retryable.
        self.error_kind: Optional[str] = None
        self.retries = 0
        self.cancelled = False
        #: Telemetry (optional): this request's flight record in the
        #: service's ring, and the plan facts captured at prepare time.
        self.flight = None
        self.plan: Optional[Dict] = None
        #: First-wins finalization flag, written under ``lock``: the
        #: watchdog, the deadline checks and the normal completion path
        #: can all race to resolve one job.
        self.done = False
        self.lock = threading.Lock()


class _Beat:
    """One worker's heartbeat: which task it holds and since when."""

    __slots__ = ("slot", "job", "index", "started")

    def __init__(self, slot: int, job: _Job, index: int, now: float) -> None:
        self.slot = slot
        self.job = job
        self.index = index
        self.started = now


#: Task shapes on the worker channel: ``(job, -1, ())`` runs solo,
#: ``(job, i, prefix)`` runs cluster unit ``i``.
_Task = Tuple[_Job, int, Tuple[int, ...]]

_CLOSE = object()


class MatchService:
    """A resident matcher over one data graph.

    Engine knobs that shape the *index* (order strategy, filters,
    refinement, intersection mode) are fixed service-wide — that is the
    invariant making cross-query index reuse sound.  Per-request knobs
    (limit, budget, kernel, symmetry, deadline) ride on each
    :class:`~repro.service.request.MatchRequest`.

    Hardening knobs: ``deadline_seconds`` is the service-wide default
    end-to-end deadline (per-request ``deadline_seconds`` overrides);
    ``retry_policy`` enables transparent re-runs of crash/fault-failed
    requests; ``stall_after_seconds`` arms the watchdog's wedged-worker
    detection (it must exceed the longest *legitimate* single unit, or
    healthy slow work gets condemned); ``fault_plan`` injects
    deterministic service-level faults for chaos testing;
    ``spill_max_bytes`` byte-bounds the index cache's spill directory.

    Use as a context manager, or call :meth:`close` when done.
    """

    def __init__(
        self,
        data: Graph,
        workers: int = 2,
        max_pending: int = 64,
        index_capacity: int = 32,
        spill_dir: Optional[str] = None,
        intersection_cache_size: int = DEFAULT_CACHE_SIZE,
        order_strategy: str = "bfs",
        use_refinement: bool = True,
        use_intersection: bool = True,
        metrics: Optional[MetricsRegistry] = None,
        deadline_seconds: Optional[float] = None,
        retry_policy: Optional[RetryPolicy] = None,
        stall_after_seconds: Optional[float] = None,
        watchdog_interval: float = 0.05,
        fault_plan: Optional[FaultPlan] = None,
        spill_max_bytes: Optional[int] = None,
        flight_records: int = 0,
        history: Optional[Union[QueryHistory, str]] = None,
        slow_ms: Optional[float] = None,
        slow_log: Optional[Union[str, TextIO]] = None,
        fold_request_stats: bool = False,
        tracer=None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive")
        if stall_after_seconds is not None and stall_after_seconds <= 0:
            raise ValueError("stall_after_seconds must be positive")
        if watchdog_interval <= 0:
            raise ValueError("watchdog_interval must be positive")
        if flight_records < 0:
            raise ValueError("flight_records must be >= 0")
        if slow_ms is not None and slow_ms < 0:
            raise ValueError("slow_ms must be >= 0")
        self.data = data
        self.workers = workers
        self.max_pending = max_pending
        self.order_strategy = order_strategy
        self.use_refinement = use_refinement
        self.use_intersection = use_intersection
        self.deadline_seconds = deadline_seconds
        self.retry_policy = retry_policy
        self.stall_after_seconds = stall_after_seconds
        self.watchdog_interval = watchdog_interval
        self.fault_plan = fault_plan
        self.metrics = (
            metrics
            if metrics is not None
            else MetricsRegistry(service_metric_specs())
        )
        for spec in service_metric_specs():
            self.metrics.register(spec)
        #: Telemetry: all off by default so a bare service pays only
        #: ``is None`` checks on the request path (the <3% overhead
        #: budget in DESIGN.md §13); ``repro serve`` turns them on.
        self.flight = (
            FlightRecorder(flight_records) if flight_records > 0 else None
        )
        self._owns_history = isinstance(history, str)
        self.history = QueryHistory(history) if isinstance(history, str) else history
        self.slow_ms = slow_ms
        self.fold_request_stats = fold_request_stats
        self.tracer = NULL_TRACER if tracer is None else tracer
        self._slow_log_path = slow_log if isinstance(slow_log, str) else None
        self._slow_stream = slow_log if not isinstance(slow_log, str) else None
        self._slow_handle: Optional[TextIO] = None
        self._slow_lock = threading.Lock()
        self._fold_lock = threading.Lock()
        self.index_cache = IndexCache(
            data,
            capacity=index_capacity,
            spill_dir=spill_dir,
            spill_max_bytes=spill_max_bytes,
            metrics=self.metrics,
            fault_plan=fault_plan,
        )
        #: Shared TE∩NTE memo pool; reached only through per-request
        #: namespaced views (see repro.kernels.cache) so two queries can
        #: never read each other's intersections.
        self.intersection_pool = (
            IntersectionCache(intersection_cache_size, threadsafe=True)
            if intersection_cache_size > 0
            else None
        )
        self._state_lock = threading.Lock()
        self._idle = threading.Condition(self._state_lock)
        self._inflight = 0
        self._peak = 0
        self._closed = False
        self._stopping = False
        self._close_done = threading.Event()
        #: Every admitted, not-yet-finalized job (guarded by
        #: ``_state_lock``) — what a timed-out ``close`` fails.
        self._jobs: Set[_Job] = set()
        #: Pending retry timers, per job (guarded by ``_state_lock``).
        self._retry_timers: Dict[_Job, threading.Timer] = {}
        #: Jitter source for retry backoff — seeded from the fault plan
        #: so chaos runs are reproducible end to end.
        self._retry_rng = random.Random(
            fault_plan.seed if fault_plan is not None else 0
        )
        #: Monotone pick counters feeding the fault plan's predicates.
        self._task_picks = itertools.count()
        self._build_picks = itertools.count()
        self._inbox: "list" = []
        self._inbox_ready = threading.Condition()
        self._tasks: FairTaskQueue[_Task] = FairTaskQueue()
        #: Worker supervision state (guarded by ``_pool_lock``):
        #: ``_pool[slot]`` is the current thread of each slot,
        #: ``_active`` maps a worker thread ident to its heartbeat,
        #: ``_condemned`` holds idents told to exit at the next boundary.
        self._pool_lock = threading.Lock()
        self._pool: List[threading.Thread] = []
        self._active: Dict[int, _Beat] = {}
        self._condemned: Set[int] = set()
        self._worker_seq = 0
        self._scheduler = threading.Thread(
            target=self._scheduler_loop, name="svc-scheduler", daemon=True
        )
        self._scheduler.start()
        with self._pool_lock:
            for slot in range(workers):
                self._spawn_worker(slot)
        self._watchdog_stop = threading.Event()
        self._watchdog = threading.Thread(
            target=self._watchdog_loop, name="svc-watchdog", daemon=True
        )
        self._watchdog.start()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def submit(self, request: MatchRequest) -> PendingMatch:
        """Admit (or shed) one request; never blocks on matching work."""
        pending = PendingMatch(request)
        now = time.perf_counter()
        with self._state_lock:
            if self._closed:
                raise RuntimeError("service is closed")
            if self._inflight >= self.max_pending:
                pending._resolve(rejected_response(
                    request, self._inflight, self.max_pending,
                    self.metrics, self.flight,
                ))
                return pending
            self._inflight += 1
            if self._inflight > self._peak:
                self._peak = self._inflight
                self.metrics.set_gauge("service_queue_depth_peak", self._peak)
            job = _Job(request, pending, now)
            if self.flight is not None:
                job.flight = self.flight.begin(request.request_id)
                job.flight.event(
                    "admit", outcome="admitted",
                    queue_depth=self._inflight, solo=request.solo,
                )
            deadline = request.deadline_seconds
            if deadline is None:
                deadline = self.deadline_seconds
            if deadline is not None:
                job.deadline_at = now + deadline
            pending._job = job
            self._jobs.add(job)
        with self._inbox_ready:
            self._inbox.append(job)
            self._inbox_ready.notify()
        return pending

    def match(self, request: MatchRequest) -> MatchResponse:
        """Submit and wait — the synchronous convenience path."""
        return self.submit(request).result()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until no request is in flight; False on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while self._inflight > 0:
                left = None
                if deadline is not None:
                    left = deadline - time.monotonic()
                    if left <= 0:
                        return False
                self._idle.wait(timeout=left)
        return True

    def close(self, timeout: Optional[float] = None) -> bool:
        """Drain in-flight work, then stop every thread (idempotent).

        With ``timeout=None`` this waits for all in-flight requests to
        finish, exactly like the historical ``close()``.  With a
        timeout, the whole shutdown is bounded: requests still in
        flight when the drain window expires are resolved ``TIMEOUT``
        (their waiters unblock), pending retries are cancelled, and
        thread joins share the remaining window.  Returns ``True`` if
        everything drained and every thread stopped within the bound;
        ``False`` means some request was force-timed-out or a wedged
        thread is still exiting (it will die with the process — all
        service threads are daemons).  Concurrent and repeated calls
        are safe: later callers wait (up to their own ``timeout``) for
        the first closer to finish.
        """
        with self._state_lock:
            first = not self._closed
            self._closed = True
        if not first:
            return self._close_done.wait(timeout=timeout)
        deadline = None if timeout is None else time.monotonic() + timeout

        def left() -> Optional[float]:
            if deadline is None:
                return None
            # Keep a small positive join window even when the budget is
            # spent, so an already-exiting thread is still reaped.
            return max(deadline - time.monotonic(), 0.05)

        drained = self.drain(timeout)
        self._stopping = True
        with self._state_lock:
            timers = list(self._retry_timers.values())
            self._retry_timers.clear()
        for timer in timers:
            timer.cancel()
        if not drained:
            with self._state_lock:
                leftovers = list(self._jobs)
            for job in leftovers:
                self._finalize(
                    job, [], Status.TIMEOUT,
                    error="request still in flight when close() timed out",
                )
        with self._inbox_ready:
            self._inbox.append(_CLOSE)
            self._inbox_ready.notify()
        self._watchdog_stop.set()
        self._scheduler.join(left())
        self._tasks.close()
        with self._pool_lock:
            pool = list(self._pool)
        for thread in pool:
            thread.join(left())
        self._watchdog.join(left())
        stopped = (
            not self._scheduler.is_alive()
            and not self._watchdog.is_alive()
            and not any(thread.is_alive() for thread in pool)
        )
        with self._slow_lock:
            if self._slow_handle is not None:
                self._slow_handle.close()
                self._slow_handle = None
        if self._owns_history and self.history is not None:
            self.history.close()
        self._close_done.set()
        return drained and stopped

    def __enter__(self) -> "MatchService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def healthy_workers(self) -> int:
        """How many pool slots currently hold a live thread — the
        chaos harness's pool-at-full-strength check."""
        with self._pool_lock:
            return sum(1 for thread in self._pool if thread.is_alive())

    def metrics_snapshot(self) -> MetricsRegistry:
        """A point-in-time copy of the service registry with scrape-time
        gauges folded in (in-flight requests, fair-queue depth, healthy
        workers) — what the HTTP exporter and the ``{"op": "metrics"}``
        in-band query serve."""
        registry = MetricsRegistry(service_metric_specs())
        with self._fold_lock:
            registry.merge(self.metrics)
        with self._state_lock:
            inflight = self._inflight
        registry.set_gauge("service_inflight", inflight)
        registry.set_gauge("service_task_queue_depth", len(self._tasks))
        registry.set_gauge(
            "service_healthy_workers", self.healthy_workers()
        )
        return registry

    def snapshot(self) -> Dict[str, object]:
        """Registry + cache tiers + scheduler as one JSON-friendly dict."""
        out: Dict[str, object] = {
            "metrics": self.metrics_snapshot().as_dict(),
            "index_cache": self.index_cache.snapshot(),
            "scheduler": self._tasks.snapshot(),
            "healthy_workers": self.healthy_workers(),
        }
        if self.intersection_pool is not None:
            out["intersection_pool"] = self.intersection_pool.snapshot()
        if self.flight is not None:
            out["flight_records"] = len(self.flight)
        if self.history is not None:
            out["history"] = self.history.snapshot()
        return out

    def flight_records(
        self,
        request_id: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> List[Dict]:
        """Retained flight records (empty when the recorder is off) —
        what the ``{"op": "flight"}`` control message dumps."""
        if self.flight is None:
            return []
        return self.flight.records(request_id=request_id, limit=limit)

    # ------------------------------------------------------------------
    # Watchdog thread: dead/wedged worker detection and respawn
    # ------------------------------------------------------------------
    def _spawn_worker(self, slot: int) -> None:
        """Start a fresh thread in ``slot`` (callers hold _pool_lock)."""
        self._worker_seq += 1
        thread = threading.Thread(
            target=self._worker_loop,
            args=(slot,),
            name=f"svc-worker-{slot}.{self._worker_seq}",
            daemon=True,
        )
        if slot == len(self._pool):
            self._pool.append(thread)
        else:
            self._pool[slot] = thread
        thread.start()

    def _watchdog_loop(self) -> None:
        while not self._watchdog_stop.wait(self.watchdog_interval):
            self._patrol()

    def _patrol(self) -> None:
        """One supervision pass: respawn dead workers (recovering the
        task each one died holding), condemn wedged ones."""
        if self._stopping:
            return
        now = time.perf_counter()
        crashed: List[_Beat] = []
        stalled: List[_Beat] = []
        with self._pool_lock:
            for slot, thread in enumerate(self._pool):
                ident = thread.ident
                if ident is None:  # not started yet (spawn in progress)
                    continue
                if not thread.is_alive():
                    beat = self._active.pop(ident, None)
                    self._condemned.discard(ident)
                    self._spawn_worker(slot)
                    self.metrics.inc("service_worker_respawns")
                    if beat is not None:
                        crashed.append(beat)
                    continue
                if self.stall_after_seconds is None:
                    continue
                beat = self._active.get(ident)
                if (
                    beat is not None
                    and now - beat.started > self.stall_after_seconds
                ):
                    # Python threads cannot be killed: condemn the ident
                    # (the thread exits at its next loop boundary), drop
                    # its heartbeat so it is not re-condemned, and bring
                    # the pool back to strength immediately.
                    self._condemned.add(ident)
                    self._active.pop(ident, None)
                    self._spawn_worker(slot)
                    self.metrics.inc("service_worker_stalls")
                    self.metrics.inc("service_worker_respawns")
                    stalled.append(beat)
        for beat in crashed:
            if beat.job.flight is not None:
                beat.job.flight.event(
                    "worker_crash", slot=beat.slot, unit=beat.index
                )
            self._fail_unit(
                beat.job, beat.index,
                f"worker died holding the request (slot {beat.slot})",
                kind="crash",
            )
        for beat in stalled:
            if beat.job.flight is not None:
                beat.job.flight.event(
                    "worker_stall", slot=beat.slot, unit=beat.index
                )
            self._finalize(
                beat.job, [], Status.TIMEOUT,
                error=(
                    f"request stalled past {self.stall_after_seconds}s "
                    f"on a worker; the worker was condemned and replaced"
                ),
            )

    # ------------------------------------------------------------------
    # Deadlines, cancellation, retry
    # ------------------------------------------------------------------
    def _abort_status(self, job: _Job) -> Optional[str]:
        """CANCELLED/TIMEOUT if the job must be abandoned, else None —
        evaluated at every cooperative boundary."""
        if job.cancelled:
            return Status.CANCELLED
        if (
            job.deadline_at is not None
            and time.perf_counter() >= job.deadline_at
        ):
            return Status.TIMEOUT
        return None

    @staticmethod
    def _abort_error(status: str) -> str:
        if status == Status.TIMEOUT:
            return "end-to-end service deadline exceeded"
        return "cancelled by caller"

    def _conclude_failure(self, job: _Job) -> None:
        """The current attempt failed: schedule a retry if the policy,
        the failure kind and the deadline all allow, else finalize."""
        kind = job.error_kind or "error"
        policy = self.retry_policy
        if (
            policy is not None
            and kind in ("crash", "fault")
            and not self._stopping
            and self._abort_status(job) is None
            and policy.allows(job.retries + 1)
        ):
            job.retries += 1
            self.metrics.inc("service_retries_total")
            delay = policy.delay(job.retries, self._retry_rng)
            if job.flight is not None:
                job.flight.event(
                    "retry", attempt=job.retries, kind=kind,
                    delay_seconds=round(delay, 6),
                )
            if delay <= 0.0:
                self._requeue(job)
            else:
                timer = threading.Timer(delay, self._requeue, args=(job,))
                timer.daemon = True
                with self._state_lock:
                    self._retry_timers[job] = timer
                timer.start()
            return
        status = Status.CRASHED if kind == "crash" else Status.FAILED
        self._finalize(job, [], status, error=job.error)

    def _requeue(self, job: _Job) -> None:
        """Put a retrying job back through the scheduler with per-attempt
        state wiped (fresh index resolution, fresh budget clock)."""
        with self._state_lock:
            self._retry_timers.pop(job, None)
            stopping = self._stopping
        with job.lock:
            if job.done:
                return
        if stopping:
            self._finalize(
                job, [], Status.TIMEOUT,
                error="service closed before the retry could run",
            )
            return
        with job.lock:
            job.store = None
            job.cache_tag = None
            job.namespace = None
            job.tracker = None
            job.symmetry = None
            job.stats = MatchStats()
            job.parts = []
            job.remaining = 0
            job.truncated = False
            job.stop_reason = None
            job.error = None
            job.error_kind = None
        with self._inbox_ready:
            self._inbox.append(job)
            self._inbox_ready.notify()

    # ------------------------------------------------------------------
    # Scheduler thread: admit -> resolve index -> plan tasks
    # ------------------------------------------------------------------
    def _scheduler_loop(self) -> None:
        admitted = 0
        while True:
            with self._inbox_ready:
                while not self._inbox:
                    self._inbox_ready.wait()
                item = self._inbox.pop(0)
            if item is _CLOSE:
                return
            job: _Job = item
            if job.done:  # force-finalized (timed-out close) meanwhile
                continue
            seq = admitted
            admitted += 1
            plan = self.fault_plan
            if plan is not None and plan.scheduler_stalls_at(seq):
                self._cooperative_stall(plan.scheduler_stall_seconds)
            status = self._abort_status(job)
            if status is None:
                try:
                    self._prepare(job)
                except BudgetExhausted as stop:
                    job.stats.budget_stops += 1
                    self._finalize(
                        job, [], Status.TRUNCATED, stop_reason=stop.reason
                    )
                    continue
                except (InjectedBuildError, InjectedCrash) as exc:
                    self._fail_unit(job, -1, repr(exc), kind="fault")
                    continue
                except Exception as exc:  # noqa: BLE001 - one bad request
                    # must not take the scheduler (and service) down
                    self._fail_unit(job, -1, repr(exc), kind="error")
                    continue
                status = self._abort_status(job)
            if status is not None:
                self._finalize(
                    job, [], status, error=self._abort_error(status)
                )
                continue
            self._plan(job)

    def _cooperative_stall(self, seconds: float) -> None:
        """Injected scheduler stall — sleeps in small slices so a
        closing service is never held hostage by its own chaos plan."""
        deadline = time.perf_counter() + seconds
        while not self._stopping:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                return
            time.sleep(min(remaining, 0.01))

    def _prepare(self, job: _Job) -> None:
        """Resolve the request's index (cache tiers, then build), start
        its budget clock, and build its symmetry breaker."""
        request = job.request
        job.prepared_at = time.perf_counter()
        if job.flight is not None:
            job.flight.event(
                "prepare",
                queue_seconds=round(job.prepared_at - job.submitted_at, 6),
                attempt=job.retries,
            )
        if self.tracer.enabled:
            self.tracer.phase(
                "queue", job.submitted_at,
                job.prepared_at - job.submitted_at,
                request=request.request_id,
            )
        if request.budget is not None and not request.budget.unlimited:
            job.tracker = request.budget.tracker().start()
        job.symmetry = SymmetryBreaker(
            request.query, enabled=request.break_automorphisms
        )

        build_stats: List[MatchStats] = []

        def build() -> CompactCECI:
            build_index = next(self._build_picks)
            if (
                self.fault_plan is not None
                and self.fault_plan.build_fails_at(build_index)
            ):
                raise InjectedBuildError(build_index)
            matcher = self._fresh_matcher(request.query, request.request_id)
            store = matcher.build()
            build_stats.append(matcher.stats)
            assert isinstance(store, CompactCECI)
            return store

        entry, tag, order = self.index_cache.get_or_build(
            request.query, build
        )
        store = self.index_cache.adapt(entry, request.query, order)
        if store is None:
            # Canonical-signature collision (astronomically rare): the
            # cached representative is not actually isomorphic to this
            # query.  Build privately; correctness over reuse.
            matcher = self._fresh_matcher(request.query, request.request_id)
            built = matcher.build()
            assert isinstance(built, CompactCECI)
            store = built
            build_stats.append(matcher.stats)
            tag = "miss"
        job.store = store
        job.cache_tag = tag
        job.namespace = (
            self.index_cache.data_fingerprint,
            entry.key[1],
            request.query.fingerprint(),
        )
        self.metrics.inc("service_cache_outcomes", label=tag)
        paid_build = 0.0
        for stats in build_stats:
            # The request that paid for the build carries its phases.
            job.stats.merge(stats)
            build_seconds = sum(
                stats.phase_seconds.get(phase, 0.0)
                for phase in ("preprocess", "filter", "refine", "freeze")
            )
            paid_build += build_seconds
            self.metrics.observe("service_build_seconds", build_seconds)
        if job.flight is not None:
            job.flight.event(
                "index", tier=tag,
                transplanted=(tag != "miss" and store is not entry.store),
                build_seconds=round(paid_build, 6),
            )
        if self._telemetry_active(job):
            try:
                job.plan = plan_facts(store, request.query)
            except Exception:  # noqa: BLE001 - plan facts are advisory;
                # a store variant that cannot produce them must not fail
                # the request
                job.plan = None
            if job.flight is not None and job.plan is not None:
                job.flight.event(
                    "plan",
                    root=job.plan["root"],
                    clusters=job.plan["clusters"],
                    cardinality_bound=job.plan["cardinality_bound"],
                )
        # Mirror CECIMatcher.run: the deadline covers index resolution;
        # a request that used up its budget getting an index returns a
        # truncated empty prefix rather than enumerating on borrowed
        # time.
        if job.tracker is not None:
            job.tracker.check_deadline()

    def _telemetry_active(self, job: _Job) -> bool:
        """Whether any consumer of plan facts / per-request records is
        configured — the gate keeping their cost off the default path."""
        return (
            job.flight is not None
            or self.history is not None
            or self.slow_ms is not None
        )

    def _fresh_matcher(
        self, query: Graph, request_id: Optional[int] = None
    ) -> CECIMatcher:
        """A matcher with the service-wide index configuration.  Builds
        never consult the symmetry breaker, so it is disabled here; the
        request's own breaker is applied at enumeration time.  With a
        service tracer, build phases are stamped with the paying
        request's id so ``trace summarize`` can group them."""
        tracer = None
        if self.tracer.enabled:
            tracer = (
                self.tracer if request_id is None
                else self.tracer.scoped(request=request_id)
            )
        return CECIMatcher(
            query,
            self.data,
            order_strategy=self.order_strategy,
            break_automorphisms=False,
            use_refinement=self.use_refinement,
            use_intersection=self.use_intersection,
            store="compact",
            tracer=tracer,
        )

    def _plan(self, job: _Job) -> None:
        """Enqueue the job's tasks: solo for budgeted/limited requests,
        one fair-interleaved task per embedding cluster otherwise."""
        if job.done:
            return
        try:
            if job.request.solo:
                if job.flight is not None:
                    job.flight.event("planned", mode="solo")
                self._tasks.push_solo((job, -1, ()))
                return
            store = job.store
            assert store is not None
            pivots = [int(p) for p in store.pivots]
            if not pivots:
                self._finalize(job, [], Status.OK)
                return
            workloads = [
                max(float(store.cluster_cardinality(p)), 1.0) for p in pivots
            ]
            plan = dynamic_schedule(
                sorted(workloads, reverse=True), self.workers
            )
            self.metrics.set_gauge("service_plan_makespan", plan.makespan)
            self.metrics.set_gauge("service_plan_skew", plan.skew)
            if job.flight is not None:
                job.flight.event(
                    "planned", mode="batched", units=len(pivots),
                    makespan=round(plan.makespan, 3),
                    skew=round(plan.skew, 4),
                )
            job.parts = [None] * len(pivots)
            job.remaining = len(pivots)
            tasks: List[_Task] = [
                (job, i, (pivot,)) for i, pivot in enumerate(pivots)
            ]
            self._tasks.push_job(tasks, workloads)
        except RuntimeError:
            # The queue closed mid-push (timed-out close): the close
            # path has already force-finalized every leftover job.
            return

    # ------------------------------------------------------------------
    # Worker threads
    # ------------------------------------------------------------------
    def _worker_loop(self, slot: int) -> None:
        ident = threading.get_ident()
        while True:
            with self._pool_lock:
                if ident in self._condemned:
                    self._condemned.discard(ident)
                    self._active.pop(ident, None)
                    return
            task = self._tasks.pop(timeout=_POP_INTERVAL)
            if task is None:
                if self._tasks.closed:
                    return
                continue
            job, index, prefix = task
            pick = next(self._task_picks)
            with self._pool_lock:
                self._active[ident] = _Beat(
                    slot, job, index, time.perf_counter()
                )
            try:
                if (
                    self.fault_plan is not None
                    and self.fault_plan.service_worker_crashes_at(pick)
                ):
                    raise InjectedCrash("service-worker", slot)
                status = self._abort_status(job)
                if status is not None or job.done:
                    self._skip_task(job, index, status)
                elif index < 0:
                    self._run_solo(job)
                else:
                    self._run_unit(job, index, prefix)
            except InjectedCrash:
                # Simulated thread death: exit without any cleanup (a
                # really-dead thread cleans up nothing), leaving the
                # heartbeat registered so the watchdog recovers the
                # in-flight task and respawns the slot.
                return
            except Exception as exc:  # noqa: BLE001 - fail the request,
                # not the worker: the pool must survive any one query
                self._fail_unit(job, index, repr(exc))
            with self._pool_lock:
                self._active.pop(ident, None)

    def _skip_task(
        self, job: _Job, index: int, status: Optional[str]
    ) -> None:
        """Cooperative abandon at a batch boundary: resolve the abort
        status (first-wins) and keep unit bookkeeping consistent."""
        if status is not None:
            self._finalize(job, [], status, error=self._abort_error(status))
        if index >= 0:
            with job.lock:
                job.remaining -= 1

    def _enumerator(self, job: _Job, stats: MatchStats) -> Enumerator:
        cache = None
        if self.intersection_pool is not None:
            cache = self.intersection_pool.view(job.namespace, stats=stats)
        assert job.store is not None and job.symmetry is not None
        return Enumerator(
            job.store,
            symmetry=job.symmetry,
            use_intersection=self.use_intersection,
            stats=stats,
            tracker=job.tracker,
            kernel=job.request.kernel,
            cache=cache,
        )

    def _run_solo(self, job: _Job) -> None:
        """Un-decomposed run — replays the sequential matcher exactly,
        so budget truncation and ``limit`` prefixes are bit-identical."""
        started = time.perf_counter()
        enumerator = self._enumerator(job, job.stats)
        embeddings = enumerator.collect(job.request.limit)
        seconds = time.perf_counter() - started
        job.stats.add_phase("enumerate", seconds)
        if self.tracer.enabled:
            self.tracer.phase(
                "enumerate", started, seconds,
                request=job.request.request_id,
            )
        if job.flight is not None:
            job.flight.event(
                "solo", seconds=round(seconds, 6),
                embeddings=len(embeddings),
                truncated=enumerator.truncated,
            )
        if enumerator.truncated:
            self._finalize(
                job,
                embeddings,
                Status.TRUNCATED,
                stop_reason=enumerator.stop_reason,
            )
        else:
            self._finalize(job, embeddings, Status.OK)

    def _run_unit(
        self, job: _Job, index: int, prefix: Tuple[int, ...]
    ) -> None:
        """One embedding cluster, enumerated into a *private* stats
        object merged under the job lock — ``int +=`` is not atomic, so
        concurrent units writing one stats object would drop counts."""
        started = time.perf_counter()
        unit_stats = MatchStats()
        enumerator = self._enumerator(job, unit_stats)
        result = enumerator.collect_from_unit(prefix)
        seconds = time.perf_counter() - started
        unit_stats.add_phase("enumerate", seconds)
        if self.tracer.enabled:
            self.tracer.phase(
                "enumerate", started, seconds,
                request=job.request.request_id, unit=index,
            )
        if job.flight is not None:
            job.flight.event(
                "unit", index=index, seconds=round(seconds, 6),
                embeddings=len(result),
            )
        self.metrics.inc("service_units_total")
        with job.lock:
            if job.done:  # finalized (deadline/cancel/stall) meanwhile
                job.remaining -= 1
                return
            job.parts[index] = result
            job.stats.merge(unit_stats)
            job.remaining -= 1
            last = job.remaining == 0 and job.error is None
            failed = job.remaining == 0 and job.error is not None
        if last:
            embeddings: List[Embedding] = []
            for part in job.parts:
                if part:
                    embeddings.extend(part)
            self._finalize(job, embeddings, Status.OK)
        elif failed:
            self._conclude_failure(job)

    def _fail_unit(
        self, job: _Job, index: int, error: str, kind: str = "error"
    ) -> None:
        if job.flight is not None:
            job.flight.event(
                "unit_failed", index=index, kind=kind, error=error
            )
        with job.lock:
            if job.done:
                if index >= 0:
                    job.remaining -= 1
                return
            if job.error is None:
                job.error = error
                job.error_kind = kind
            if index >= 0:
                job.remaining -= 1
                last = job.remaining <= 0
            else:
                last = True
        if last:
            self._conclude_failure(job)

    # ------------------------------------------------------------------
    def _finalize(
        self,
        job: _Job,
        embeddings: List[Embedding],
        status: str,
        stop_reason: Optional[str] = None,
        error: Optional[str] = None,
    ) -> None:
        with job.lock:
            if job.done:  # first resolution wins
                return
            job.done = True
        now = time.perf_counter()
        latency = now - job.submitted_at
        service_seconds = now - job.prepared_at
        self.metrics.inc("service_requests_total", label=status)
        self.metrics.observe("service_request_seconds", latency)
        self.metrics.observe("service_time_seconds", service_seconds)
        if self.fold_request_stats:
            # Continuous fold: the live registry carries every request's
            # enumeration counters, not just service-level outcomes.
            with self._fold_lock:
                self.metrics.merge(job.stats.registry())
        slow = self.slow_ms is not None and latency * 1000.0 >= self.slow_ms
        telemetry = (
            job.flight is not None or slow or self.history is not None
        )
        counters = _stat_counters(job.stats) if telemetry else {}
        signature = job.namespace[1] if job.namespace is not None else None
        if job.flight is not None:
            # Finish the record *before* resolving the response so a
            # caller that sees the response also sees a terminal record.
            job.flight.event("final", status=status)
            job.flight.finish(
                status=status,
                cache=job.cache_tag,
                retries=job.retries,
                signature=signature,
                latency_seconds=latency,
                service_seconds=service_seconds,
                stop_reason=stop_reason,
                error=error,
                plan=job.plan,
                phase_seconds=dict(job.stats.phase_seconds),
                counters=counters,
            )
        # Slow-log and history writes happen before the resolve too:
        # a caller that saw the response can rely on its history line
        # being durable, and serial submitters observe history lines in
        # submission order (resolving first would let request N+1's
        # line overtake request N's).
        if slow:
            self.metrics.inc("service_slow_requests")
            self._log_slow(
                job, status, stop_reason, error,
                latency, service_seconds, signature, counters,
            )
        if self.history is not None:
            try:
                self.history.append(self._history_record(
                    job, status, latency, service_seconds,
                    signature, counters,
                ))
                self.metrics.inc("service_history_records")
            except Exception:  # noqa: BLE001 - telemetry I/O must never
                # fail a request that already has its answer
                pass
        job.pending._resolve(MatchResponse(
            request_id=job.request.request_id,
            status=status,
            embeddings=embeddings,
            truncated=status == Status.TRUNCATED,
            stop_reason=stop_reason,
            cache=job.cache_tag,
            stats=job.stats,
            latency_seconds=latency,
            service_seconds=service_seconds,
            retries=job.retries,
            error=error,
        ))
        with self._idle:
            self._jobs.discard(job)
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.notify_all()

    def _log_slow(
        self,
        job: _Job,
        status: str,
        stop_reason: Optional[str],
        error: Optional[str],
        latency: float,
        service_seconds: float,
        signature: Optional[str],
        counters: Dict[str, int],
    ) -> None:
        """Append one flight-shaped JSONL line (plus the threshold that
        tripped) to the slow-query log — the input of ``repro explain``."""
        sink = self._slow_sink()
        if sink is None:
            return
        if job.flight is not None:
            line = job.flight.as_dict()
        else:
            line = {
                "schema": FLIGHT_SCHEMA,
                "request_id": job.request.request_id,
                "status": status,
                "cache": job.cache_tag,
                "retries": job.retries,
                "signature": signature,
                "latency_seconds": latency,
                "service_seconds": service_seconds,
                "stop_reason": stop_reason,
                "error": error,
                "plan": job.plan,
                "phase_seconds": dict(job.stats.phase_seconds),
                "counters": counters,
                "events": [],
            }
        line["slow_ms"] = self.slow_ms
        try:
            with self._slow_lock:
                sink.write(json.dumps(line) + "\n")
                sink.flush()
        except Exception:  # noqa: BLE001 - a broken log sink must not
            # fail requests
            pass

    def _slow_sink(self) -> Optional[TextIO]:
        if self._slow_stream is not None:
            return self._slow_stream
        if self._slow_log_path is None:
            return None
        with self._slow_lock:
            if self._slow_handle is None:
                self._slow_handle = open(
                    self._slow_log_path, "a", encoding="utf-8"
                )
        return self._slow_handle

    def _history_record(
        self,
        job: _Job,
        status: str,
        latency: float,
        service_seconds: float,
        signature: Optional[str],
        counters: Dict[str, int],
    ) -> Dict:
        """One query-history line: structural features + the chosen plan
        + observed costs — the adaptive planner's training substrate."""
        request = job.request
        query = request.query
        features: Dict[str, object] = {
            "query_vertices": query.num_vertices,
            "query_edges": query.num_edges,
            "query_labels": len(query.distinct_labels()),
            "max_degree": max(
                (query.degree(u) for u in query.vertices()), default=0
            ),
            "solo": request.solo,
            "kernel": request.kernel,
        }
        if job.plan is not None:
            features.update(job.plan)
        return {
            "signature": (
                signature
                if signature is not None
                # Failed before prepare: no canonical signature was
                # computed; the raw fingerprint still keys the record.
                else f"unprepared:{query.fingerprint()}"
            ),
            "request_id": request.request_id,
            "status": status,
            "cache": job.cache_tag,
            "retries": job.retries,
            "latency_seconds": latency,
            "service_seconds": service_seconds,
            "features": features,
            "phase_seconds": dict(job.stats.phase_seconds),
            "counters": counters,
        }
