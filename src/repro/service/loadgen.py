"""Deterministic load generation and the service benchmark.

The bench drives a :class:`~repro.service.service.MatchService` with a
seeded workload and reports the numbers the acceptance bar asks for:
request-latency percentiles, throughput, cache hit rate, and the
warm-vs-cold speedup of the index cache (warm must serve ≥ 3x faster
than cold, since a warm request skips filter + refine + freeze).

Queries are sampled as *connected induced subgraphs of the data graph*
(seeded random BFS growth), so every query is guaranteed at least one
embedding — a workload of unsatisfiable patterns would measure nothing
but filter speed.  The arrival sequence is **open-loop**: the whole
request schedule is fixed up front by the seed, submitted without
waiting for completions, so service behaviour cannot reshape its own
offered load (closed-loop generators hide queueing collapse).

:func:`run_benchmark` is what ``repro bench-service`` and the CI smoke
job call; its dict is written as ``BENCH_service.json``.
:func:`run_chaos` is the seeded chaos harness behind ``repro
bench-service --chaos``: it drives a *fault-injected* service against
sequentially-computed ground truth and reports wrong results,
availability, retry counts and pool health.
"""

from __future__ import annotations

import os
import random
import tempfile
import time
from typing import Dict, List, Optional, Sequence

from ..graph import Graph
from ..resilience.faults import FaultPlan
from ..resilience.recovery import RetryPolicy
from .request import MatchRequest, Status
from .service import MatchService, PendingMatch

__all__ = [
    "sample_query",
    "generate_workload",
    "percentile",
    "run_benchmark",
    "run_chaos",
    "run_shard_benchmark",
    "BENCH_SCHEMA",
]

#: Version stamped into the benchmark report; bump on shape changes.
BENCH_SCHEMA = 1


def sample_query(
    data: Graph, size: int, rng: random.Random
) -> Optional[Graph]:
    """One connected induced subgraph of ``data`` with ``size`` vertices
    (or ``None`` when the seeded growth gets stuck in a too-small
    component).  Induced means every data edge between chosen vertices
    is kept, so the identity mapping is always an embedding."""
    if size < 1 or data.num_vertices == 0:
        return None
    start = rng.randrange(data.num_vertices)
    chosen: List[int] = [start]
    member = {start}
    frontier = [w for w in data.neighbors(start)]
    while len(chosen) < size and frontier:
        v = frontier.pop(rng.randrange(len(frontier)))
        if v in member:
            continue
        member.add(v)
        chosen.append(v)
        for w in data.neighbors(v):
            if w not in member:
                frontier.append(w)
    if len(chosen) < size:
        return None
    return data.subgraph(sorted(chosen))


def generate_workload(
    data: Graph,
    num_queries: int,
    seed: int = 0,
    min_vertices: int = 3,
    max_vertices: int = 5,
    max_embeddings: Optional[int] = None,
) -> List[Graph]:
    """``num_queries`` distinct-ish query graphs, deterministically from
    ``seed``.  Sizes cycle through ``[min_vertices, max_vertices]``.

    ``max_embeddings`` screens out result-heavy patterns (a random walk
    through a weakly-labeled region can match tens of thousands of
    times): candidates whose embedding count exceeds the cap are
    re-sampled.  The service benchmark uses this so its warm-vs-cold
    ratio measures *index reuse*, not enumeration throughput — a single
    30k-embedding query would otherwise drown the build time both
    phases share.  Screening runs a throwaway matcher per candidate and
    is deterministic given the seed.
    """
    if num_queries < 1:
        raise ValueError("num_queries must be >= 1")
    if not 1 <= min_vertices <= max_vertices:
        raise ValueError("need 1 <= min_vertices <= max_vertices")
    rng = random.Random(seed)
    queries: List[Graph] = []
    attempts = 0
    while len(queries) < num_queries and attempts < num_queries * 50:
        attempts += 1
        size = min_vertices + len(queries) % (max_vertices - min_vertices + 1)
        query = sample_query(data, size, rng)
        if query is None or not query.is_connected():
            continue
        if max_embeddings is not None:
            from ..core.matcher import CECIMatcher

            found = CECIMatcher(query, data).match(limit=max_embeddings + 1)
            if len(found) > max_embeddings:
                continue
        queries.append(query)
    if len(queries) < num_queries:
        raise ValueError(
            "data graph too small/fragmented to sample the workload"
        )
    return queries


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]); 0.0 when empty."""
    if not values:
        return 0.0
    ranked = sorted(values)
    rank = max(0, min(len(ranked) - 1, int(round(q / 100.0 * len(ranked))) - 1))
    return ranked[rank]


def _phase_report(seconds: List[float]) -> Dict[str, float]:
    return {
        "requests": len(seconds),
        "mean_seconds": sum(seconds) / len(seconds) if seconds else 0.0,
        "p50_seconds": percentile(seconds, 50),
        "p95_seconds": percentile(seconds, 95),
        "p99_seconds": percentile(seconds, 99),
    }


def run_benchmark(
    service: MatchService,
    num_queries: int = 6,
    mixed_requests: int = 30,
    seed: int = 0,
    min_vertices: int = 3,
    max_vertices: int = 5,
    max_embeddings: Optional[int] = 200,
) -> Dict[str, object]:
    """Three-phase deterministic benchmark against a live service.

    1. **cold** — each unique query once, synchronously, on an empty
       index cache: every request pays a build (``cache == "miss"``).
    2. **warm** — the same queries again: every request must be served
       from the index cache (``hit``), giving the warm/cold speedup.
    3. **mixed open-loop** — ``mixed_requests`` requests sampled (with
       repetition) from the query set, all submitted before any result
       is awaited; reports end-to-end latency percentiles and
       throughput.

    Counts are cross-checked between phases: a query must report the
    same embedding count cold, warm, and mixed — a cheap in-bench
    differential guard on the cache path.
    """
    queries = generate_workload(
        service.data,
        num_queries,
        seed=seed,
        min_vertices=min_vertices,
        max_vertices=max_vertices,
        max_embeddings=max_embeddings,
    )
    counts: List[Optional[int]] = [None] * len(queries)
    statuses: Dict[str, int] = {status: 0 for status in Status.ALL}

    def record(index: int, response) -> None:
        statuses[response.status] = statuses.get(response.status, 0) + 1
        if response.status != Status.OK:
            raise AssertionError(
                f"benchmark request failed: {response.status} "
                f"({response.error or response.stop_reason})"
            )
        if counts[index] is None:
            counts[index] = response.count
        elif counts[index] != response.count:
            raise AssertionError(
                f"query {index} count changed across phases: "
                f"{counts[index]} != {response.count} "
                f"(cache tier {response.cache})"
            )

    cold_seconds: List[float] = []
    for i, query in enumerate(queries):
        response = service.match(MatchRequest(query))
        record(i, response)
        cold_seconds.append(response.service_seconds)

    warm_seconds: List[float] = []
    warm_tags: List[str] = []
    for i, query in enumerate(queries):
        response = service.match(MatchRequest(query))
        record(i, response)
        warm_seconds.append(response.service_seconds)
        warm_tags.append(response.cache or "none")

    rng = random.Random(seed + 1)
    schedule = [rng.randrange(len(queries)) for _ in range(mixed_requests)]
    pending: List[PendingMatch] = []
    mixed_started = time.perf_counter()
    for index in schedule:
        pending.append(service.submit(MatchRequest(queries[index])))
    latencies: List[float] = []
    for index, handle in zip(schedule, pending):
        response = handle.result()
        record(index, response)
        latencies.append(response.latency_seconds)
    mixed_elapsed = time.perf_counter() - mixed_started

    cold_mean = sum(cold_seconds) / len(cold_seconds)
    warm_mean = sum(warm_seconds) / len(warm_seconds)
    report: Dict[str, object] = {
        "schema": BENCH_SCHEMA,
        "config": {
            "data_vertices": service.data.num_vertices,
            "data_edges": service.data.num_edges,
            "workers": service.workers,
            "num_queries": num_queries,
            "mixed_requests": mixed_requests,
            "seed": seed,
            "min_vertices": min_vertices,
            "max_vertices": max_vertices,
            "max_embeddings": max_embeddings,
        },
        "cold": _phase_report(cold_seconds),
        "warm": _phase_report(warm_seconds),
        "warm_speedup": cold_mean / warm_mean if warm_mean > 0 else 0.0,
        "warm_cache_tags": warm_tags,
        "latency": {
            "p50_seconds": percentile(latencies, 50),
            "p95_seconds": percentile(latencies, 95),
            "p99_seconds": percentile(latencies, 99),
            "mean_seconds": sum(latencies) / len(latencies)
            if latencies
            else 0.0,
        },
        "throughput_rps": (
            mixed_requests / mixed_elapsed if mixed_elapsed > 0 else 0.0
        ),
        "statuses": statuses,
        "embedding_counts": counts,
        "index_cache": service.index_cache.snapshot(),
    }
    if service.intersection_pool is not None:
        report["intersection_pool"] = service.intersection_pool.snapshot()
    return report


def run_chaos(
    data: Graph,
    num_queries: int = 5,
    requests: int = 40,
    seed: int = 0,
    workers: int = 2,
    max_retries: int = 2,
    crash_fraction: float = 0.15,
    build_failure_fraction: float = 0.1,
    spill_fault_fraction: float = 0.25,
    stall_fraction: float = 0.0,
    stall_seconds: float = 0.05,
    deadline_seconds: Optional[float] = None,
    index_capacity: int = 2,
    spill_dir: Optional[str] = None,
    min_vertices: int = 3,
    max_vertices: int = 5,
    max_embeddings: Optional[int] = 200,
    shards: int = 0,
    shard_crash_fraction: float = 0.0,
    shard_stall_fraction: float = 0.0,
    shard_stall_seconds: float = 0.05,
    publish_torn_fraction: float = 0.0,
) -> Dict[str, object]:
    """Seeded chaos run: a fault-injected service vs. sequential truth.

    Builds a :meth:`~repro.resilience.faults.FaultPlan.service_chaos`
    plan from ``seed`` (worker crashes mid-job, index-build failures,
    torn spill writes, corrupted spill reads, optional scheduler
    stalls), stands up a :class:`MatchService` with that plan, a retry
    policy and a tiny index cache (so the spill tier is actually
    exercised), and fires an open-loop schedule of ``requests``
    requests at it.  Every response is judged against ground truth
    computed by the *sequential* matcher up front:

    * an ``OK`` response with the wrong embedding count is a **wrong
      result** — the one number that must be zero no matter what faults
      fire;
    * non-``OK`` responses must carry an *accurate* failure status
      (``crashed``/``failed``/``timeout``), and their fraction is the
      availability loss, which the CLI gate bounds;
    * after the run the worker pool must be back at full strength
      (watchdog respawns verified) and every quarantined spill must be
      counted in ``spill_corrupt``.

    With ``shards > 0`` the run targets a
    :class:`~repro.service.shards.ShardedMatchService` of that many
    worker *processes* instead, and the shard fault classes join the
    plan: shard-process kills mid-task, per-shard stalls, and torn
    shared-mmap publishes.  The judgments are identical — zero wrong
    results no matter which shard died — and ``pool_full_strength``
    then means every shard process is alive again (respawns verified).

    Returns a JSON-ready report; closing the service is handled here.
    """
    queries = generate_workload(
        data,
        num_queries,
        seed=seed,
        min_vertices=min_vertices,
        max_vertices=max_vertices,
        max_embeddings=max_embeddings,
    )
    from ..core.matcher import CECIMatcher

    truth = [len(CECIMatcher(query, data).match()) for query in queries]
    plan = FaultPlan.service_chaos(
        seed=seed,
        requests=requests,
        crash_fraction=crash_fraction,
        build_failure_fraction=build_failure_fraction,
        spill_fault_fraction=spill_fault_fraction,
        stall_fraction=stall_fraction,
        stall_seconds=stall_seconds,
        num_shards=shards,
        shard_crash_fraction=shard_crash_fraction,
        shard_stall_fraction=shard_stall_fraction,
        shard_stall_seconds=shard_stall_seconds,
        publish_torn_fraction=publish_torn_fraction,
    )
    policy = RetryPolicy(
        max_retries=max_retries,
        backoff_base_seconds=0.001,
        backoff_max_seconds=0.05,
    )
    rng = random.Random(seed + 1)
    schedule = [rng.randrange(len(queries)) for _ in range(requests)]
    tmp = None
    if spill_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="chaos-spill-")
        spill_dir = tmp.name
    statuses: Dict[str, int] = {status: 0 for status in Status.ALL}
    wrong: List[Dict[str, int]] = []
    retries_total = 0
    if shards > 0:
        from .shards import ShardedMatchService

        service_ctx = ShardedMatchService(
            data,
            shards=shards,
            max_pending=max(requests, 1),
            index_capacity=index_capacity,
            spill_dir=spill_dir,
            deadline_seconds=deadline_seconds,
            fault_plan=plan,
        )
        pool_size = shards
    else:
        service_ctx = MatchService(
            data,
            workers=workers,
            max_pending=max(requests, 1),
            index_capacity=index_capacity,
            spill_dir=spill_dir,
            deadline_seconds=deadline_seconds,
            retry_policy=policy,
            fault_plan=plan,
        )
        pool_size = workers
    try:
        with service_ctx as service:
            started = time.perf_counter()
            pending: List[PendingMatch] = [
                service.submit(MatchRequest(queries[index]))
                for index in schedule
            ]
            for index, handle in zip(schedule, pending):
                response = handle.result()
                statuses[response.status] = (
                    statuses.get(response.status, 0) + 1
                )
                retries_total += response.retries
                if (
                    response.status == Status.OK
                    and response.count != truth[index]
                ):
                    wrong.append({
                        "query": index,
                        "expected": truth[index],
                        "got": response.count,
                    })
            elapsed = time.perf_counter() - started
            healthy = service.healthy_workers()
            cache_snapshot = service.index_cache.snapshot()
            metrics = service.metrics
            report: Dict[str, object] = {
                "schema": BENCH_SCHEMA,
                "config": {
                    "data_vertices": data.num_vertices,
                    "data_edges": data.num_edges,
                    "workers": workers,
                    "shards": shards,
                    "num_queries": num_queries,
                    "requests": requests,
                    "seed": seed,
                    "max_retries": max_retries,
                    "crash_fraction": crash_fraction,
                    "build_failure_fraction": build_failure_fraction,
                    "spill_fault_fraction": spill_fault_fraction,
                    "stall_fraction": stall_fraction,
                    "shard_crash_fraction": shard_crash_fraction,
                    "shard_stall_fraction": shard_stall_fraction,
                    "publish_torn_fraction": publish_torn_fraction,
                    "deadline_seconds": deadline_seconds,
                    "index_capacity": index_capacity,
                },
                "injected": {
                    "worker_crashes": len(plan.service_worker_crash_picks),
                    "build_failures": len(plan.build_failure_picks),
                    "torn_spill_writes": len(plan.spill_torn_write_picks),
                    "corrupt_spill_reads": len(plan.spill_read_corrupt_picks),
                    "scheduler_stalls": len(plan.scheduler_stall_picks),
                    "shard_crashes": len(plan.shard_crash_picks),
                    "shard_stalls": len(plan.shard_stall_picks),
                    "torn_publishes": len(plan.publish_torn_picks),
                },
                "statuses": statuses,
                "wrong_results": wrong,
                "availability": statuses[Status.OK] / requests
                if requests
                else 1.0,
                "retries_total": retries_total,
                "worker_respawns": metrics.get("service_worker_respawns"),
                "healthy_workers": healthy,
                "pool_full_strength": healthy == pool_size,
                "elapsed_seconds": elapsed,
                "index_cache": cache_snapshot,
            }
            if shards > 0:
                report["shard_respawns"] = metrics.get(
                    "service_shard_respawns"
                )
                report["shard_redispatches"] = metrics.get(
                    "service_shard_redispatches"
                )
                report["shard_republishes"] = metrics.get(
                    "service_shard_republishes"
                )
            return report
    finally:
        if tmp is not None:
            tmp.cleanup()


def run_shard_benchmark(
    data: Graph,
    shard_counts: Sequence[int] = (1, 2, 4),
    num_queries: int = 6,
    requests: int = 30,
    seed: int = 0,
    min_vertices: int = 3,
    max_vertices: int = 5,
    max_embeddings: Optional[int] = None,
    index_capacity: int = 32,
) -> Dict[str, object]:
    """Horizontal-scaling sweep across shard counts (``BENCH_shard``).

    For each entry in ``shard_counts`` a fresh
    :class:`~repro.service.shards.ShardedMatchService` answers the same
    seeded workload: every unique query once to warm the shared index
    cache, then an open-loop mixed phase of ``requests`` requests.  The
    headline per-point figure is ``shard_speedup`` — the *critical-path*
    ratio ``max-per-shard busy CPU seconds at 1 shard / at k shards``,
    the same simulated-speedup substitution DESIGN.md §2 uses for the
    intersection pool: on a box whose cores are already saturated (CI
    runners pin this suite to one CPU) wall-clock cannot show the
    partitioning win, but the longest per-shard CPU chain — what the
    wall-clock *would* be with a core per shard — can, and
    ``time.process_time`` in the workers measures it free of
    time-slice noise.  ``wall_speedup`` rides along for machines with
    real parallelism.

    Counts are cross-checked across shard counts: the same query must
    report the same embedding count at every width — a scaling sweep is
    also a differential test.

    Returns the JSON-ready ``BENCH_shard.json`` report.
    """
    from .shards import ShardedMatchService

    queries = generate_workload(
        data,
        num_queries,
        seed=seed,
        min_vertices=min_vertices,
        max_vertices=max_vertices,
        max_embeddings=max_embeddings,
    )
    rng = random.Random(seed + 1)
    schedule = [rng.randrange(len(queries)) for _ in range(requests)]
    counts: List[Optional[int]] = [None] * len(queries)
    points: List[Dict[str, object]] = []
    baseline_critical: Optional[float] = None
    baseline_elapsed: Optional[float] = None
    for shards in shard_counts:
        with ShardedMatchService(
            data,
            shards=shards,
            max_pending=max(requests, 1) + num_queries,
            index_capacity=index_capacity,
        ) as service:
            for i, query in enumerate(queries):
                response = service.match(MatchRequest(query))
                if response.status != Status.OK:
                    raise AssertionError(
                        f"shard warmup failed at {shards} shards: "
                        f"{response.status} ({response.error})"
                    )
                if counts[i] is None:
                    counts[i] = response.count
                elif counts[i] != response.count:
                    raise AssertionError(
                        f"query {i} count diverged at {shards} shards: "
                        f"{counts[i]} != {response.count}"
                    )
            started = time.perf_counter()
            pending = [
                service.submit(MatchRequest(queries[index]))
                for index in schedule
            ]
            for index, handle in zip(schedule, pending):
                response = handle.result()
                if response.status != Status.OK:
                    raise AssertionError(
                        f"shard bench request failed at {shards} shards: "
                        f"{response.status} ({response.error})"
                    )
                if response.count != counts[index]:
                    raise AssertionError(
                        f"query {index} count diverged at {shards} shards: "
                        f"{counts[index]} != {response.count}"
                    )
            elapsed = time.perf_counter() - started
            telemetry = service.shard_telemetry()
        busy = [float(b) for b in telemetry["busy_seconds"]]
        critical = max(busy) if busy else 0.0
        total_busy = sum(busy)
        if baseline_critical is None:
            baseline_critical = critical
            baseline_elapsed = elapsed
        mean_busy = total_busy / len(busy) if busy else 0.0
        points.append({
            "shards": shards,
            "elapsed_seconds": elapsed,
            "throughput_rps": requests / elapsed if elapsed > 0 else 0.0,
            "shard_busy_seconds": busy,
            "shard_tasks": [int(t) for t in telemetry["tasks"]],
            "critical_path_seconds": critical,
            "total_busy_seconds": total_busy,
            "shard_speedup": (
                baseline_critical / critical if critical > 0 else 0.0
            ),
            "wall_speedup": (
                (baseline_elapsed or 0.0) / elapsed if elapsed > 0 else 0.0
            ),
            # Load balance: mean busy / max busy; 1.0 is a perfect split.
            "balance": mean_busy / critical if critical > 0 else 1.0,
        })
    return {
        "schema": BENCH_SCHEMA,
        "kind": "shard_scaling",
        "cpus": len(os.sched_getaffinity(0)),
        "config": {
            "data_vertices": data.num_vertices,
            "data_edges": data.num_edges,
            "shard_counts": list(shard_counts),
            "num_queries": num_queries,
            "requests": requests,
            "seed": seed,
            "min_vertices": min_vertices,
            "max_vertices": max_vertices,
            "max_embeddings": max_embeddings,
        },
        "embedding_counts": counts,
        "points": points,
    }
