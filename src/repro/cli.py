"""Command-line interface.

::

    python -m repro match    QUERY DATA [--limit N] [--order bfs] [--all-autos]
                                        [--kernel {auto,merge,gallop,bitset}]
                                        [--store {dict,compact}]
                                        [--engine {auto,recursive,batch}]
                                        [--timeout S] [--max-calls N]
                                        [--workers K] [--inject-faults SEED]
                                        [--trace FILE.jsonl] [--progress]
                                        [--metrics {json,prom}] [--json]
    python -m repro count    QUERY DATA [--limit N] [...same flags]
    python -m repro index    QUERY DATA OUT.ceci      # build + persist CECI
    python -m repro stats    QUERY DATA               # pipeline statistics
    python -m repro trace    summarize FILE.jsonl [--json]
    python -m repro generate KIND OUT [--vertices N] [--edges-per-vertex M]
                                       [--labels K] [--seed S]
    python -m repro serve    DATA [--workers K] [--max-pending N]
                                  [--index-capacity N] [--spill-dir DIR]
                                  [--metrics {json,prom}]
                                  [--metrics-port PORT] [--flight-records N]
                                  [--slow-ms MS] [--slow-log FILE]
                                  [--history FILE] [--trace FILE.jsonl]
    python -m repro flight   FILE [--request ID] [--json]
    python -m repro explain  FILE [--request ID] [--json]
    python -m repro bench-service [--data DATA] [--queries N]
                                  [--requests N] [--out BENCH_service.json]

``QUERY`` and ``DATA`` are graph files; format chosen by extension:
``.graph`` (labeled t/v/e rows), ``.csr`` (binary CSR), anything else is
read as a SNAP edge list.

``--kernel`` selects the set-intersection kernel (default ``auto`` —
adaptive dispatch by size ratio and density; see DESIGN.md §7); kernel
and cache counters are reported on stderr and in ``stats`` JSON.
``--store`` selects the runtime index representation (default
``compact`` — the dict builder is frozen into flat sorted int64 arrays
after refinement; ``dict`` keeps the mutable builder; see DESIGN.md §8).
``--engine`` selects the enumeration engine (default ``auto`` — whole
frontiers expand as numpy batches on the compact store, everything else
uses the per-embedding recursion; see DESIGN.md §12).
``--timeout`` / ``--max-calls`` cap the run with a
:class:`~repro.resilience.budget.Budget`; a truncated run prints a
``# truncated: <axis>`` line on stderr instead of hanging.
``--workers K`` (K > 1) enumerates with the crash-safe thread executor,
and ``--inject-faults SEED`` feeds it a seeded chaos
:class:`~repro.resilience.faults.FaultPlan` — the embedding output must
survive the injected crashes unchanged.

Observability (DESIGN.md §9): ``--trace FILE.jsonl`` writes the run's
phase records, nested spans and sampled kernel events as JSON lines —
render the per-phase / per-worker breakdown with ``repro trace
summarize FILE.jsonl``; ``--metrics {json,prom}`` dumps the full
metrics registry to stderr after the run; ``--progress`` prints a
heartbeat line (calls/s, embeddings/s, budget left, cardinality-bound
ETA) on stderr during long enumerations.  ``--json`` (match/count)
emits one machine-readable object (``"schema": 1``) on stdout and
silences the stderr counter lines.

Service telemetry (DESIGN.md §13): ``serve`` retains per-request
*flight records* (``--flight-records``, dumped in-band with
``{"op": "flight"}`` and rendered by ``repro flight``), exposes the
live metrics registry over HTTP (``--metrics-port``, Prometheus text at
``/metrics``), logs requests slower than ``--slow-ms`` as flight-shaped
JSONL (``--slow-log``, rendered plan-first by ``repro explain``), and
appends one features+costs record per request to a size-rotated
query-history store (``--history``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from .core import CECIMatcher
from .core.persist import save_ceci
from .observability import (
    ProgressReporter,
    TraceError,
    Tracer,
    kernel_events,
    summarize_trace,
)
from .resilience import Budget, FaultPlan
from .graph import (
    Graph,
    erdos_renyi,
    inject_labels,
    kronecker,
    load_csr_binary,
    load_edge_list,
    load_graph_format,
    power_law,
    save_graph_format,
)

__all__ = ["main"]

#: Version stamped into every machine-readable stdout object
#: (``stats``, ``match --json``, ``count --json``); bump on
#: incompatible shape changes so downstream parsers can refuse cleanly.
OUTPUT_SCHEMA = 1


def _load_graph(path: str) -> Graph:
    if path.endswith(".graph"):
        return load_graph_format(path)
    if path.endswith(".csr"):
        return load_csr_binary(path)
    return load_edge_list(path)


def _budget_from(args: argparse.Namespace) -> Optional[Budget]:
    if getattr(args, "timeout", None) is None and (
        getattr(args, "max_calls", None) is None
    ):
        return None
    return Budget(
        deadline_seconds=args.timeout, max_calls=args.max_calls
    )


def _make_matcher(args: argparse.Namespace) -> CECIMatcher:
    tracer = None
    if getattr(args, "trace", None):
        tracer = Tracer(args.trace)
    matcher = CECIMatcher(
        _load_graph(args.query),
        _load_graph(args.data),
        order_strategy=args.order,
        break_automorphisms=not args.all_autos,
        budget=_budget_from(args),
        kernel=getattr(args, "kernel", "auto"),
        store=getattr(args, "store", "compact"),
        engine=getattr(args, "engine", "auto"),
        tracer=tracer,
    )
    if getattr(args, "progress", False):
        matcher.progress = ProgressReporter(
            matcher.stats,
            interval=getattr(args, "progress_interval", 1.0),
            tracer=matcher.tracer if matcher.tracer.enabled else None,
        )
    return matcher


def _emit_metrics(args: argparse.Namespace, stats) -> None:
    """Dump the full metrics registry to stderr when ``--metrics`` asks
    for it (stderr so machine-readable stdout stays clean)."""
    fmt = getattr(args, "metrics", None)
    if not fmt:
        return
    registry = stats.registry()
    if fmt == "json":
        print(json.dumps(registry.as_dict(), indent=2), file=sys.stderr)
    else:
        print(registry.to_prom(), file=sys.stderr, end="")


def _print_kernel_stats(stats) -> None:
    """One stderr line of kernel dispatch + cache counters."""
    print(
        f"# kernels: merge={stats.kernel_merge_calls} "
        f"gallop={stats.kernel_gallop_calls} "
        f"bitset={stats.kernel_bitset_calls} "
        f"array={stats.kernel_array_calls} | "
        f"cache: {stats.cache_hits} hits / {stats.cache_misses} misses / "
        f"{stats.cache_evictions} evictions",
        file=sys.stderr,
    )


def _run_embeddings(args, matcher):
    """Shared match/count execution: returns (embeddings, truncated,
    stop_reason), going through the crash-safe thread executor when
    ``--workers`` asks for one."""
    workers = getattr(args, "workers", None) or 1
    quiet = bool(getattr(args, "json", False))
    if workers > 1:
        from .parallel import parallel_match

        if matcher.budget is not None and not quiet:
            print(
                "# note: --timeout/--max-calls apply to the sequential "
                "path; ignored under --workers",
                file=sys.stderr,
            )
        plan = None
        if args.inject_faults is not None:
            plan = FaultPlan.chaos(args.inject_faults, num_workers=workers)
        if matcher.progress is not None:
            matcher.progress.start()
        # parallel_match folds every worker's counters into
        # matcher.stats through the single MatchStats.merge path.
        embeddings, reports = parallel_match(
            matcher, workers=workers, limit=args.limit, fault_plan=plan
        )
        if matcher.progress is not None:
            # Workers tick their own per-unit enumerators, not this
            # reporter; the merged stats still close the run with one
            # truthful summary line.
            matcher.progress.finish(force=True)
        crashed = sum(1 for r in reports if r.crashed)
        if crashed and not quiet:
            print(
                f"# recovered from {crashed} injected worker crash(es): "
                f"{matcher.stats.retries} retries, "
                f"{matcher.stats.reassignments} reassignments",
                file=sys.stderr,
            )
        return embeddings, False, None
    result = matcher.run(limit=args.limit)
    return result.embeddings, result.truncated, result.stop_reason


def _cmd_match(args: argparse.Namespace) -> int:
    matcher = _make_matcher(args)
    try:
        started = time.perf_counter()
        with kernel_events(matcher.tracer):
            embeddings, truncated, stop_reason = _run_embeddings(
                args, matcher
            )
        elapsed = time.perf_counter() - started
        if args.json:
            print(json.dumps({
                "schema": OUTPUT_SCHEMA,
                "command": "match",
                "count": len(embeddings),
                "embeddings": [
                    [int(v) for v in embedding] for embedding in embeddings
                ],
                "truncated": truncated,
                "stop_reason": stop_reason,
                "elapsed_seconds": elapsed,
                "stats": matcher.stats.registry().as_dict()["metrics"],
            }, indent=2))
        else:
            for embedding in embeddings:
                print(" ".join(str(v) for v in embedding))
            print(
                f"# {len(embeddings)} embeddings in {elapsed:.3f}s "
                f"({matcher.stats.recursive_calls} recursive calls)",
                file=sys.stderr,
            )
            _print_kernel_stats(matcher.stats)
            if truncated:
                print(f"# truncated: {stop_reason}", file=sys.stderr)
        _emit_metrics(args, matcher.stats)
        return 0
    finally:
        matcher.tracer.close()


def _cmd_count(args: argparse.Namespace) -> int:
    matcher = _make_matcher(args)
    try:
        started = time.perf_counter()
        with kernel_events(matcher.tracer):
            embeddings, truncated, stop_reason = _run_embeddings(
                args, matcher
            )
        elapsed = time.perf_counter() - started
        if args.json:
            print(json.dumps({
                "schema": OUTPUT_SCHEMA,
                "command": "count",
                "count": len(embeddings),
                "truncated": truncated,
                "stop_reason": stop_reason,
                "elapsed_seconds": elapsed,
                "stats": matcher.stats.registry().as_dict()["metrics"],
            }, indent=2))
        else:
            print(len(embeddings))
            print(f"# counted in {elapsed:.3f}s", file=sys.stderr)
            _print_kernel_stats(matcher.stats)
            if truncated:
                print(f"# truncated: {stop_reason}", file=sys.stderr)
        _emit_metrics(args, matcher.stats)
        return 0
    finally:
        matcher.tracer.close()


def _cmd_index(args: argparse.Namespace) -> int:
    matcher = _make_matcher(args)
    try:
        with kernel_events(matcher.tracer):
            ceci = matcher.build()
        save_ceci(ceci, args.out)
        print(
            f"index written to {args.out}: {len(ceci.pivots)} clusters, "
            f"{ceci.te_edge_count()} TE + {ceci.nte_edge_count()} NTE "
            f"candidate edges",
            file=sys.stderr,
        )
        _emit_metrics(args, matcher.stats)
        return 0
    finally:
        matcher.tracer.close()


def _cmd_stats(args: argparse.Namespace) -> int:
    matcher = _make_matcher(args)
    try:
        with kernel_events(matcher.tracer):
            result = matcher.run(limit=args.limit)
    finally:
        matcher.tracer.close()
    stats = matcher.stats
    query = matcher.query
    data = matcher.data
    print(json.dumps({
        "schema": OUTPUT_SCHEMA,
        "embeddings": stats.embeddings_found,
        "truncated": result.truncated,
        "stop_reason": result.stop_reason,
        "budget_stops": stats.budget_stops,
        "recursive_calls": stats.recursive_calls,
        "intersections": stats.intersections,
        "edge_verifications": stats.edge_verifications,
        "kernels": {
            "merge": stats.kernel_merge_calls,
            "gallop": stats.kernel_gallop_calls,
            "bitset": stats.kernel_bitset_calls,
            "array": stats.kernel_array_calls,
        },
        "cache": {
            "hits": stats.cache_hits,
            "misses": stats.cache_misses,
            "evictions": stats.cache_evictions,
        },
        "candidates_scanned": stats.candidates_initial,
        "removed": {
            "label": stats.removed_by_label,
            "degree": stats.removed_by_degree,
            "nlc": stats.removed_by_nlc,
            "cascade": stats.removed_by_cascade,
            "refinement": stats.removed_by_refinement,
        },
        "index_bytes": stats.index_bytes,
        "memory_bytes": stats.memory_bytes,
        "store": matcher.store,
        "theoretical_bytes": stats.theoretical_bytes(
            query.num_edges, data.num_edges
        ),
        "phases_seconds": stats.phase_seconds,
    }, indent=2))
    _emit_metrics(args, stats)
    return 0


def _service_from(args: argparse.Namespace, data: Graph, tracer=None):
    from .resilience.recovery import RetryPolicy
    from .service import MatchService

    if getattr(args, "shards", 0):
        from .service.shards import ShardedMatchService

        # The sharded tier is process-based: thread-pool knobs that do
        # not transfer (retries, spill byte-bounds, history/tracing)
        # are simply absent from its surface, so only the shared ones
        # are forwarded.
        return ShardedMatchService(
            data,
            shards=args.shards,
            max_pending=args.max_pending,
            index_capacity=args.index_capacity,
            spill_dir=args.spill_dir,
            order_strategy=args.order,
            deadline_seconds=args.deadline,
            flight_records=getattr(args, "flight_records", 0) or 0,
        )
    retry_policy = None
    if args.retries > 0:
        retry_policy = RetryPolicy(
            max_retries=args.retries,
            backoff_base_seconds=0.01,
            backoff_max_seconds=1.0,
        )
    return MatchService(
        data,
        workers=args.workers or 2,
        max_pending=args.max_pending,
        index_capacity=args.index_capacity,
        spill_dir=args.spill_dir,
        order_strategy=args.order,
        deadline_seconds=args.deadline,
        retry_policy=retry_policy,
        spill_max_bytes=args.spill_max_bytes,
        # Telemetry knobs (serve wires them; bench-service leaves the
        # defaults, i.e. telemetry fully off — the measured baseline).
        flight_records=getattr(args, "flight_records", 0) or 0,
        history=getattr(args, "history", None),
        slow_ms=getattr(args, "slow_ms", None),
        slow_log=getattr(args, "slow_log", None),
        fold_request_stats=bool(getattr(args, "fold_request_stats", False)),
        tracer=tracer,
    )


def _emit_service_metrics(args: argparse.Namespace, service) -> None:
    fmt = getattr(args, "metrics", None)
    if not fmt:
        return
    if fmt == "json":
        print(json.dumps(service.snapshot(), indent=2), file=sys.stderr)
    else:
        print(service.metrics.to_prom(), file=sys.stderr, end="")


def _cmd_serve(args: argparse.Namespace) -> int:
    from .observability import MetricsExporter
    from .service.server import serve

    data = _load_graph(args.data)
    if args.metrics_port is not None:
        # A scrape endpoint without the per-request counter folds would
        # only ever show admission/cache/worker counters; the point of
        # the endpoint is the full registry.
        args.fold_request_stats = True
    tracer = Tracer(args.trace) if getattr(args, "trace", None) else None
    exporter = None
    try:
        with _service_from(args, data, tracer=tracer) as service:
            if args.metrics_port is not None:
                # Scrapes merge the live registry and stamp the
                # instantaneous gauges (in-flight, queue depth, healthy
                # workers) at request time.
                exporter = MetricsExporter(
                    service.metrics_snapshot, port=args.metrics_port
                )
                print(f"# metrics: {exporter.url}", file=sys.stderr)
            handled = serve(service, sys.stdin, sys.stdout)
            print(f"# served {handled} requests", file=sys.stderr)
            _emit_service_metrics(args, service)
    finally:
        if exporter is not None:
            exporter.close()
        if tracer is not None:
            tracer.close()
    return 0


def _cmd_bench_service(args: argparse.Namespace) -> int:
    from .service.loadgen import run_benchmark

    if args.data:
        data = _load_graph(args.data)
    else:
        data = inject_labels(
            power_law(args.vertices, 3, seed=args.graph_seed),
            args.labels,
            seed=args.graph_seed,
        )
    if args.chaos:
        return _bench_chaos(args, data)
    if args.shard_sweep:
        return _bench_shard_sweep(args, data)
    with _service_from(args, data) as service:
        report = run_benchmark(
            service,
            num_queries=args.queries,
            mixed_requests=args.requests,
            seed=args.seed,
            min_vertices=args.min_vertices,
            max_vertices=args.max_vertices,
            max_embeddings=args.max_embeddings,
        )
        _emit_service_metrics(args, service)
    payload = json.dumps(report, indent=2)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(payload + "\n")
    print(payload)
    print(
        f"# warm speedup {report['warm_speedup']:.1f}x, "
        f"p95 latency {report['latency']['p95_seconds'] * 1e3:.1f}ms, "
        f"{report['throughput_rps']:.0f} req/s",
        file=sys.stderr,
    )
    return 0


def _bench_shard_sweep(args: argparse.Namespace, data: Graph) -> int:
    """``bench-service --shard-sweep``: the horizontal-scaling sweep
    (emits ``BENCH_shard.json``)."""
    from .service.loadgen import run_shard_benchmark

    try:
        shard_counts = [
            int(token) for token in args.shard_sweep.split(",") if token
        ]
    except ValueError:
        print(f"error: bad --shard-sweep {args.shard_sweep!r} "
              "(want e.g. 1,2,4)", file=sys.stderr)
        return 2
    if not shard_counts or any(count < 1 for count in shard_counts):
        print("error: --shard-sweep needs positive shard counts",
              file=sys.stderr)
        return 2
    report = run_shard_benchmark(
        data,
        shard_counts=shard_counts,
        num_queries=args.queries,
        requests=args.requests,
        seed=args.seed,
        min_vertices=args.min_vertices,
        max_vertices=args.max_vertices,
        max_embeddings=args.max_embeddings,
        index_capacity=args.index_capacity,
    )
    payload = json.dumps(report, indent=2)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(payload + "\n")
    print(payload)
    for point in report["points"]:
        print(
            f"# shards={point['shards']}: "
            f"critical path {point['critical_path_seconds'] * 1e3:.1f}ms, "
            f"shard speedup {point['shard_speedup']:.2f}x "
            f"(wall {point['wall_speedup']:.2f}x), "
            f"balance {point['balance']:.2f}",
            file=sys.stderr,
        )
    return 0


def _bench_chaos(args: argparse.Namespace, data: Graph) -> int:
    """``bench-service --chaos``: seeded fault injection with a hard
    gate — zero wrong results, bounded availability loss, and a
    full-strength worker pool, or a non-zero exit."""
    from .service.loadgen import run_chaos

    shards = getattr(args, "shards", 0) or 0
    report = run_chaos(
        data,
        num_queries=args.queries,
        requests=args.requests,
        seed=args.chaos_seed,
        workers=args.workers or 2,
        max_retries=args.retries or 2,
        deadline_seconds=args.deadline,
        spill_dir=args.spill_dir,
        min_vertices=args.min_vertices,
        max_vertices=args.max_vertices,
        max_embeddings=args.max_embeddings,
        shards=shards,
        shard_crash_fraction=args.shard_crash_fraction if shards else 0.0,
        shard_stall_fraction=args.shard_stall_fraction if shards else 0.0,
        publish_torn_fraction=args.publish_torn_fraction if shards else 0.0,
    )
    payload = json.dumps(report, indent=2)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(payload + "\n")
    print(payload)
    wrong = report["wrong_results"]
    availability = report["availability"]
    full_strength = report["pool_full_strength"]
    print(
        f"# chaos: {report['statuses']['ok']}/{args.requests} ok "
        f"(availability {availability:.2f}), "
        f"{len(wrong)} wrong results, "
        f"{report['retries_total']} retries, "
        f"{report['worker_respawns']} respawns, "
        f"pool {'full' if full_strength else 'DEGRADED'}",
        file=sys.stderr,
    )
    failures = []
    if wrong:
        failures.append(f"{len(wrong)} wrong results (must be 0)")
    if availability < args.min_availability:
        failures.append(
            f"availability {availability:.2f} below the "
            f"--min-availability {args.min_availability} gate"
        )
    pool_size = shards if shards else (args.workers or 2)
    if not full_strength:
        failures.append(
            f"worker pool degraded: {report['healthy_workers']} of "
            f"{pool_size} workers alive"
        )
    if failures:
        print("# chaos gate FAILED: " + "; ".join(failures), file=sys.stderr)
        return 1
    return 0


def _cmd_trace_summarize(args: argparse.Namespace) -> int:
    try:
        print(summarize_trace(args.file, as_json=args.json))
    except (OSError, TraceError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _load_flight_file(args: argparse.Namespace):
    """Shared loader for ``repro flight`` / ``repro explain``: read +
    validate the records, apply the ``--request`` filter.  Returns the
    record list, or an exit code on error."""
    from .observability import load_flight_records, validate_flight_record

    try:
        records = load_flight_records(args.file)
        for record in records:
            validate_flight_record(record)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.request is not None:
        records = [
            record for record in records
            if record.get("request_id") == args.request
        ]
    if not records:
        which = (
            f"no flight record for request {args.request}"
            if args.request is not None
            else "no flight records"
        )
        print(f"error: {which} in {args.file}", file=sys.stderr)
        return 1
    return records


def _cmd_flight(args: argparse.Namespace) -> int:
    from .observability import render_flight

    return _print_flight_records(args, render_flight)


def _cmd_explain(args: argparse.Namespace) -> int:
    from .observability import render_explain

    return _print_flight_records(args, render_explain)


def _print_flight_records(args: argparse.Namespace, render) -> int:
    records = _load_flight_file(args)
    if isinstance(records, int):
        return records
    try:
        if args.json:
            print(json.dumps(records, indent=2))
        else:
            print("\n\n".join(render(record) for record in records))
    except OSError as exc:  # e.g. a downstream `head` closing the pipe
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "powerlaw":
        graph = power_law(args.vertices, args.edges_per_vertex, seed=args.seed)
    elif args.kind == "kronecker":
        scale = max(args.vertices - 1, 1).bit_length()
        graph = kronecker(scale, args.edges_per_vertex, seed=args.seed)
    elif args.kind == "erdos":
        graph = erdos_renyi(
            args.vertices, args.vertices * args.edges_per_vertex, seed=args.seed
        )
    else:
        raise ValueError(f"unknown generator {args.kind!r}")
    if args.labels > 1:
        graph = inject_labels(graph, args.labels, seed=args.seed)
    save_graph_format(graph, args.out)
    print(
        f"wrote {args.out}: |V|={graph.num_vertices} |E|={graph.num_edges} "
        f"labels={len(graph.distinct_labels())}",
        file=sys.stderr,
    )
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CECI subgraph matching (SIGMOD 2019 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_match_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("query", help="query graph file")
        p.add_argument("data", help="data graph file")
        p.add_argument("--limit", type=int, default=None,
                       help="stop after N embeddings")
        p.add_argument("--order", default="bfs",
                       choices=["bfs", "edge_ranked", "path_ranked"],
                       help="matching-order strategy")
        p.add_argument("--all-autos", action="store_true",
                       help="list every automorphism (no symmetry breaking)")
        p.add_argument("--kernel", default="auto",
                       choices=["auto", "merge", "gallop", "bitset"],
                       help="set-intersection kernel (auto = adaptive "
                            "dispatch by size ratio and density)")
        p.add_argument("--store", default="compact",
                       choices=["dict", "compact"],
                       help="runtime index representation (compact = "
                            "freeze the index into flat sorted arrays "
                            "after refinement; dict = keep the mutable "
                            "builder)")
        p.add_argument("--engine", default="auto",
                       choices=["auto", "recursive", "batch"],
                       help="enumeration engine (auto = set-at-a-time "
                            "numpy batches on the compact store, "
                            "per-embedding recursion elsewhere; batch "
                            "forces the vectorised engine and requires "
                            "--store compact)")
        p.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="wall-clock budget in seconds; the run returns "
                            "a flagged partial answer instead of hanging")
        p.add_argument("--max-calls", type=int, default=None, metavar="N",
                       help="recursive-call budget (the paper's "
                            "search-space proxy)")
        p.add_argument("--workers", type=int, default=None, metavar="K",
                       help="enumerate with K crash-safe worker threads")
        p.add_argument("--inject-faults", type=int, default=None,
                       metavar="SEED",
                       help="inject a seeded chaos FaultPlan into the "
                            "--workers executor (requires --workers >= 2)")
        p.add_argument("--trace", default=None, metavar="FILE.jsonl",
                       help="write phase/span/kernel trace events as "
                            "JSON lines (render with 'repro trace "
                            "summarize FILE.jsonl')")
        p.add_argument("--metrics", default=None, choices=["json", "prom"],
                       help="dump the full metrics registry to stderr "
                            "after the run")
        p.add_argument("--progress", action="store_true",
                       help="print a heartbeat line (calls/s, "
                            "embeddings/s, budget left, ETA) on stderr "
                            "during enumeration")
        p.add_argument("--progress-interval", type=float, default=1.0,
                       metavar="S",
                       help="seconds between --progress heartbeats "
                            "(default 1.0)")

    p_match = sub.add_parser("match", help="list embeddings")
    add_match_args(p_match)
    p_match.add_argument("--json", action="store_true",
                         help="emit one machine-readable object on stdout "
                              "and silence the stderr counter lines")
    p_match.set_defaults(fn=_cmd_match)

    p_count = sub.add_parser("count", help="count embeddings")
    add_match_args(p_count)
    p_count.add_argument("--json", action="store_true",
                         help="emit one machine-readable object on stdout "
                              "and silence the stderr counter lines")
    p_count.set_defaults(fn=_cmd_count)

    p_index = sub.add_parser("index", help="build and persist a CECI index")
    add_match_args(p_index)
    p_index.add_argument("out", help="output .ceci file")
    p_index.set_defaults(fn=_cmd_index)

    p_stats = sub.add_parser("stats", help="pipeline statistics as JSON")
    add_match_args(p_stats)
    p_stats.set_defaults(fn=_cmd_stats)

    def add_service_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--workers", type=int, default=None, metavar="K",
                       help="service worker threads (default 2)")
        p.add_argument("--shards", type=int, default=0, metavar="N",
                       help="run the sharded multi-process tier instead: "
                            "N worker processes sharing mmap'd CECIIDX3 "
                            "indexes, pivot partitions fanned across "
                            "them and merged exactly (0 = the "
                            "single-process thread pool; --workers, "
                            "--retries and --spill-max-bytes do not "
                            "apply when sharded)")
        p.add_argument("--max-pending", type=int, default=64,
                       help="admission limit: requests beyond this many "
                            "in flight are shed with status 'rejected'")
        p.add_argument("--index-capacity", type=int, default=32,
                       help="cross-query index cache entries (LRU)")
        p.add_argument("--spill-dir", default=None, metavar="DIR",
                       help="spill evicted indexes as CECIIDX3 blobs "
                            "here (the cache's warm tier)")
        p.add_argument("--order", default="bfs",
                       choices=["bfs", "edge_ranked", "path_ranked"],
                       help="service-wide matching-order strategy")
        p.add_argument("--deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="default end-to-end request deadline "
                            "(queue wait + index build + matching); "
                            "expired requests resolve status 'timeout'")
        p.add_argument("--retries", type=int, default=0, metavar="N",
                       help="transparently re-run requests failed by "
                            "worker crashes up to N times "
                            "(exponential backoff + jitter; default 0)")
        p.add_argument("--spill-max-bytes", type=int, default=None,
                       metavar="BYTES",
                       help="byte-bound the spill directory; oldest "
                            "spill files are LRU-evicted past it")
        p.add_argument("--metrics", default=None, choices=["json", "prom"],
                       help="dump the service metrics registry and "
                            "cache snapshots to stderr on shutdown")

    p_serve = sub.add_parser(
        "serve",
        help="resident query service over one data graph "
             "(JSON lines on stdin/stdout)",
    )
    p_serve.add_argument("data", help="data graph file")
    add_service_args(p_serve)
    p_serve.add_argument("--metrics-port", type=int, default=None,
                         metavar="PORT",
                         help="serve the live metrics registry over HTTP "
                              "on 127.0.0.1:PORT (/metrics Prometheus "
                              "text, /metrics.json, /healthz; 0 picks an "
                              "ephemeral port, printed to stderr)")
    p_serve.add_argument("--flight-records", type=int, default=256,
                         metavar="N",
                         help="retain the last N per-request flight "
                              "records, dumpable in-band with "
                              "{\"op\": \"flight\"} and rendered by "
                              "'repro flight' (0 disables; default 256)")
    p_serve.add_argument("--slow-ms", type=float, default=None,
                         metavar="MS",
                         help="log requests slower than MS wall "
                              "milliseconds as JSONL flight records "
                              "(render with 'repro explain')")
    p_serve.add_argument("--slow-log", default=None, metavar="FILE",
                         help="slow-query log destination (default "
                              "stderr is NOT used — without this flag "
                              "slow records are dropped)")
    p_serve.add_argument("--history", default=None, metavar="FILE",
                         help="append one query-history record per "
                              "request (features + observed phase costs) "
                              "to this size-rotated JSONL store")
    p_serve.add_argument("--trace", default=None, metavar="FILE.jsonl",
                         help="write service phase events (queue/build/"
                              "enumerate, request-tagged) as a trace "
                              "file for 'repro trace summarize'")
    p_serve.add_argument("--fold-request-stats", action="store_true",
                         help="continuously fold each request's counter "
                              "registry into the service-wide metrics "
                              "(adds per-request overhead; implied "
                              "whenever --metrics-port wants rich "
                              "counters)")
    p_serve.set_defaults(fn=_cmd_serve)

    p_bench = sub.add_parser(
        "bench-service",
        help="deterministic open-loop service benchmark "
             "(emits BENCH_service.json)",
    )
    p_bench.add_argument("--data", default=None,
                         help="data graph file (default: generate a "
                              "labeled power-law graph)")
    p_bench.add_argument("--vertices", type=int, default=10000,
                         help="generated data graph size")
    p_bench.add_argument("--labels", type=int, default=24,
                         help="generated data graph label count")
    p_bench.add_argument("--graph-seed", type=int, default=7,
                         help="generated data graph seed")
    p_bench.add_argument("--queries", type=int, default=6,
                         help="distinct queries in the workload")
    p_bench.add_argument("--requests", type=int, default=30,
                         help="open-loop mixed-phase request count")
    p_bench.add_argument("--seed", type=int, default=0,
                         help="workload seed")
    p_bench.add_argument("--min-vertices", type=int, default=6,
                         help="smallest query size")
    p_bench.add_argument("--max-vertices", type=int, default=8,
                         help="largest query size")
    p_bench.add_argument("--max-embeddings", type=int, default=200,
                         help="screen out queries with more embeddings "
                              "than this (keeps the bench measuring "
                              "index reuse, not enumeration)")
    p_bench.add_argument("--out", default=None, metavar="FILE",
                         help="also write the report JSON to FILE")
    p_bench.add_argument("--chaos", action="store_true",
                         help="run the seeded fault-injection harness "
                              "instead of the benchmark: inject worker "
                              "crashes, build failures and spill "
                              "corruption, then gate on zero wrong "
                              "results, bounded availability loss and "
                              "a full-strength pool")
    p_bench.add_argument("--chaos-seed", type=int, default=0,
                         help="seed of the injected fault plan")
    p_bench.add_argument("--min-availability", type=float, default=0.6,
                         help="chaos gate: minimum fraction of requests "
                              "that must still complete OK")
    p_bench.add_argument("--shard-crash-fraction", type=float, default=0.1,
                         help="chaos with --shards: fraction of shard "
                              "tasks whose worker process is killed "
                              "mid-query (respawn + redispatch)")
    p_bench.add_argument("--shard-stall-fraction", type=float, default=0.0,
                         help="chaos with --shards: fraction of shard "
                              "tasks stalled before execution")
    p_bench.add_argument("--publish-torn-fraction", type=float, default=0.0,
                         help="chaos with --shards: fraction of shared "
                              "CECIIDX3 publishes torn mid-write "
                              "(checksum detection + republish)")
    p_bench.add_argument("--shard-sweep", default=None, metavar="N,N,...",
                         help="run the horizontal-scaling sweep instead: "
                              "the same workload at each shard count "
                              "(e.g. 1,2,4), reporting per-point "
                              "critical-path shard_speedup; emits "
                              "BENCH_shard.json via --out")
    add_service_args(p_bench)
    p_bench.set_defaults(fn=_cmd_bench_service)

    p_trace = sub.add_parser("trace", help="inspect trace files")
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_summ = trace_sub.add_parser(
        "summarize",
        help="per-phase / per-worker breakdown of a --trace JSONL file",
    )
    p_summ.add_argument("file", help="trace file written by --trace")
    p_summ.add_argument("--json", action="store_true",
                        help="emit the summary as JSON instead of a table")
    p_summ.set_defaults(fn=_cmd_trace_summarize)

    p_flight = sub.add_parser(
        "flight",
        help="render per-request flight records (lifecycle timeline, "
             "plan facts, phase timings) from an {\"op\": \"flight\"} "
             "dump or a slow-query log",
    )
    p_flight.add_argument("file", help="flight dump / slow-log JSONL file")
    p_flight.add_argument("--request", type=int, default=None, metavar="ID",
                          help="only the record(s) of this request id")
    p_flight.add_argument("--json", action="store_true",
                          help="emit the validated records as JSON")
    p_flight.set_defaults(fn=_cmd_flight)

    p_explain = sub.add_parser(
        "explain",
        help="plan-first rendering of flight records — why a (slow) "
             "request cost what it did",
    )
    p_explain.add_argument("file", help="flight dump / slow-log JSONL file")
    p_explain.add_argument("--request", type=int, default=None,
                           metavar="ID",
                           help="only the record(s) of this request id")
    p_explain.add_argument("--json", action="store_true",
                           help="emit the validated records as JSON")
    p_explain.set_defaults(fn=_cmd_explain)

    p_gen = sub.add_parser("generate", help="generate a synthetic graph")
    p_gen.add_argument("kind", choices=["powerlaw", "kronecker", "erdos"])
    p_gen.add_argument("out", help="output .graph file")
    p_gen.add_argument("--vertices", type=int, default=1000)
    p_gen.add_argument("--edges-per-vertex", type=int, default=4)
    p_gen.add_argument("--labels", type=int, default=1)
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.set_defaults(fn=_cmd_generate)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point (``python -m repro``)."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "inject_faults", None) is not None and (
        getattr(args, "workers", None) or 1
    ) < 2:
        parser.error("--inject-faults requires --workers >= 2")
    if getattr(args, "timeout", None) is not None and args.timeout <= 0:
        parser.error("--timeout must be positive")
    if getattr(args, "max_calls", None) is not None and args.max_calls <= 0:
        parser.error("--max-calls must be positive")
    if getattr(args, "workers", None) is not None and args.workers < 1:
        parser.error("--workers must be >= 1")
    if getattr(args, "progress_interval", None) is not None and (
        args.progress_interval < 0
    ):
        parser.error("--progress-interval must be >= 0")
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
