"""Graph storage models for the distributed runtime (Section 5).

Two designs from the paper:

* **in-memory** — the whole data graph replicated in each machine's
  memory; adjacency access costs only compute;
* **shared** — one CSR copy on a lustre-like networked file system; each
  machine locates adjacency lists via the ``beginning_position`` array
  and pays IO (latency + bytes/bandwidth) per on-demand load, with a
  local cache of already-fetched lists.

The IO cost model substitutes for real lustre hardware; the knobs are
calibrated so construction overhead lands in the paper's reported range
(up to ~100x the in-memory construction cost, Section 6.5).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping, Optional, Tuple

from ..graph import Graph
from ..graph.csr import CSRGraph, to_csr

__all__ = ["StorageModel", "InMemoryStorage", "SharedStorage", "TrackedGraph"]


class StorageModel:
    """Per-machine view of the data graph plus an IO meter."""

    #: Simulated seconds (cost units) per IO request.
    IO_LATENCY = 5.0
    #: Cost units per byte transferred.
    IO_BYTE_COST = 0.002

    def __init__(self) -> None:
        self.io_cost = 0.0
        self.io_requests = 0
        #: Resident bytes of each machine's frozen candidate index
        #: (registered by the runtime after per-machine construction).
        self.index_bytes: Dict[int, int] = {}

    def register_index_bytes(self, machine_id: int, nbytes: int) -> None:
        """Record the payload bytes of a machine's built CECI store.

        With the compact store this is the exact flat-array footprint —
        the per-cluster candidate slices that machine holds (and that a
        placement would ship to it); with the dict store it is the
        boxed-container model.  Purely accounting: registered bytes do
        not feed back into the IO cost model.
        """
        self.index_bytes[machine_id] = (
            self.index_bytes.get(machine_id, 0) + int(nbytes)
        )

    def total_index_bytes(self) -> int:
        """Sum of registered index bytes across machines."""
        return sum(self.index_bytes.values())

    def graph_for_machine(self, machine_id: int) -> "TrackedGraph":
        """A graph handle whose adjacency accesses are metered for the
        given machine."""
        raise NotImplementedError

    def memory_bytes_per_machine(self, num_machines: int) -> int:
        """Graph bytes resident per machine."""
        raise NotImplementedError


class TrackedGraph:
    """Duck-typed :class:`Graph` proxy that meters adjacency access.

    Every matcher in this repository only touches ``neighbors``,
    ``neighbor_set``, ``degree``, ``has_edge``, label accessors and
    ``num_vertices``; the proxy forwards all of them and lets the storage
    model charge IO on first touch of each adjacency list.
    """

    def __init__(self, inner: Graph, storage: "StorageModel", machine_id: int) -> None:
        self._inner = inner
        self._storage = storage
        self._machine_id = machine_id
        self._cached: set = set()

    # -- metered adjacency -------------------------------------------------
    def _touch(self, v: int) -> None:
        if v in self._cached:
            return
        self._cached.add(v)
        self._storage.charge(self._machine_id, v)

    def neighbors(self, v: int) -> Tuple[int, ...]:
        self._touch(v)
        return self._inner.neighbors(v)

    def neighbor_set(self, v: int) -> FrozenSet[int]:
        self._touch(v)
        return self._inner.neighbor_set(v)

    def has_edge(self, u: int, v: int) -> bool:
        self._touch(u if self._inner.degree(u) <= self._inner.degree(v) else v)
        return self._inner.has_edge(u, v)

    def neighbor_label_counts(self, v: int) -> Mapping[object, int]:
        self._touch(v)
        return self._inner.neighbor_label_counts(v)

    # -- metadata (free: served from the beginning_position / label arrays)
    def degree(self, v: int) -> int:
        return self._inner.degree(v)

    def labels_of(self, v: int) -> FrozenSet[object]:
        return self._inner.labels_of(v)

    def label_of(self, v: int) -> object:
        return self._inner.label_of(v)

    def label_matches(self, query_labels: FrozenSet[object], v: int) -> bool:
        return self._inner.label_matches(query_labels, v)

    def vertices_with_label(self, label: object) -> Tuple[int, ...]:
        return self._inner.vertices_with_label(label)

    def distinct_labels(self) -> Tuple[object, ...]:
        return self._inner.distinct_labels()

    def uniform_label(self):
        return self._inner.uniform_label()

    @property
    def degrees(self) -> Tuple[int, ...]:
        # Degree metadata is free (beginning_position array); exposing
        # it does NOT bypass metering because the fast construction path
        # additionally requires the (absent) ``adjacency`` table.
        return self._inner.degrees

    @property
    def num_vertices(self) -> int:
        return self._inner.num_vertices

    @property
    def num_edges(self) -> int:
        return self._inner.num_edges

    @property
    def directed(self) -> bool:
        return self._inner.directed

    @property
    def name(self) -> str:
        return self._inner.name

    def vertices(self) -> range:
        return self._inner.vertices()

    def is_connected(self) -> bool:
        return self._inner.is_connected()


class InMemoryStorage(StorageModel):
    """Whole graph replicated in every machine's memory; access is free
    (compute cost is accounted separately by the runtime)."""

    def __init__(self, graph: Graph) -> None:
        super().__init__()
        self.graph = graph
        self._bytes = 8 * (2 * graph.num_edges + graph.num_vertices + 1)

    def charge(self, machine_id: int, v: int) -> None:
        """In-memory access: no IO."""

    def graph_for_machine(self, machine_id: int) -> TrackedGraph:
        return TrackedGraph(self.graph, self, machine_id)

    def memory_bytes_per_machine(self, num_machines: int) -> int:
        return self._bytes


class SharedStorage(StorageModel):
    """One CSR copy on networked storage; adjacency lists fetched on
    demand, cached per machine, IO metered per fetch."""

    def __init__(self, graph: Graph) -> None:
        super().__init__()
        self.graph = graph
        self.csr: CSRGraph = to_csr(graph)
        self.per_machine_io: Dict[int, float] = {}

    def charge(self, machine_id: int, v: int) -> None:
        cost = self.IO_LATENCY + self.IO_BYTE_COST * self.csr.adjacency_bytes(v)
        self.io_cost += cost
        self.io_requests += 1
        self.per_machine_io[machine_id] = (
            self.per_machine_io.get(machine_id, 0.0) + cost
        )

    def graph_for_machine(self, machine_id: int) -> TrackedGraph:
        return TrackedGraph(self.graph, self, machine_id)

    def memory_bytes_per_machine(self, num_machines: int) -> int:
        # Only the beginning_position array is resident ("the memory
        # requirement in each compute node is reduced by up to |E|").
        return 8 * (self.graph.num_vertices + 1)
