"""The simulated distributed CECI system (Section 5).

Execution proceeds exactly as the paper describes:

1. the coordinator preprocesses the query (root, tree, pivots) and
   distributes the cluster pivots with the lightweight workload estimate
   (synchronous sends — a per-pivot message cost);
2. every machine builds its *own* CECI over its pivot share, reading the
   graph through its storage model (replicated memory, or shared CSR
   with metered IO);
3. every machine enumerates its clusters; a machine that drains its
   local queue steals an unexplored cluster from the victim machine with
   the most remaining work (one-sided MPI_Get — a per-steal cost plus a
   remote-access penalty on the stolen cluster);
4. results are accumulated to machine 0.

Costs are simulated (DESIGN.md documents the substitution); the
*embeddings* are real — the union over machines is checked against the
sequential result in the test suite.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.enumeration import Enumerator
from ..core.filtering import build_ceci
from ..core.matching_order import make_order
from ..core.query_tree import QueryTree
from ..core.refinement import refine_ceci
from ..core.root_selection import initial_candidates, select_root
from ..core.automorphism import SymmetryBreaker
from ..core.stats import MatchStats
from ..graph import Graph
from .machine import MachineReport
from .partition import distribute_pivots
from .storage import InMemoryStorage, SharedStorage, StorageModel

__all__ = ["DistributedCECI", "DistributedResult"]

#: Cost of one synchronous pivot message (MPI_Send/MPI_Recv pair).
PIVOT_MSG_COST = 0.5
#: Cost of one MPI_Get work steal.
STEAL_COST = 25.0
#: Remote-cluster penalty factor on stolen enumeration work.
STEAL_PENALTY = 1.15
#: Per-embedding cost of accumulating results on machine 0.
ACCUMULATE_COST = 0.01
#: Compute cost units per filter evaluation during construction.
FILTER_OP_COST = 1.0
#: Compute cost units per enumeration recursive call.
ENUM_OP_COST = 1.0


class DistributedResult:
    """Outcome of one distributed run."""

    def __init__(
        self,
        reports: List[MachineReport],
        embeddings: List[Tuple[int, ...]],
        construction_makespan: float,
        enumeration_makespan: float,
        accumulation_cost: float,
    ) -> None:
        self.reports = reports
        self.embeddings = embeddings
        self.construction_makespan = construction_makespan
        self.enumeration_makespan = enumeration_makespan
        self.accumulation_cost = accumulation_cost

    @property
    def total_time(self) -> float:
        """End-to-end simulated time."""
        return (
            self.construction_makespan
            + self.enumeration_makespan
            + self.accumulation_cost
        )

    def construction_breakdown(self) -> Dict[str, float]:
        """Aggregate (max over machines per component) io/comm/compute —
        the Figure 20 bars."""
        io = max((r.construction_io for r in self.reports), default=0.0)
        comm = max((r.construction_comm for r in self.reports), default=0.0)
        compute = max(
            (r.construction_compute for r in self.reports), default=0.0
        )
        return {"io": io, "comm": comm, "compute": compute}


class DistributedCECI:
    """Distributed subgraph listing over 1..N simulated machines."""

    def __init__(
        self,
        query: Graph,
        data: Graph,
        num_machines: int = 4,
        mode: str = "memory",
        break_automorphisms: bool = True,
        similarity_top: int = 1000,
    ) -> None:
        if mode not in ("memory", "shared"):
            raise ValueError(f"unknown storage mode {mode!r}")
        self.query = query
        self.data = data
        self.num_machines = num_machines
        self.mode = mode
        self.similarity_top = similarity_top
        self.symmetry = SymmetryBreaker(query, enabled=break_automorphisms)

    def run(self) -> DistributedResult:
        """Execute the full distributed pipeline."""
        # --- coordinator preprocessing --------------------------------
        root, pivots = select_root(self.query, self.data, MatchStats())
        candidate_counts = [
            len(initial_candidates(self.query, self.data, u))
            for u in self.query.vertices()
        ]
        order = make_order(self.query, root, "bfs", candidate_counts)
        tree = QueryTree(self.query, root, order)

        machine_pivots = distribute_pivots(
            self.data,
            pivots,
            self.num_machines,
            mode=self.mode,
            similarity_top=self.similarity_top if self.mode == "memory" else 0,
        )
        storage: StorageModel = (
            InMemoryStorage(self.data)
            if self.mode == "memory"
            else SharedStorage(self.data)
        )

        # --- per-machine CECI construction -----------------------------
        reports = [MachineReport(m) for m in range(self.num_machines)]
        machine_clusters: List[List[Tuple[int, float]]] = []
        enumerators: List[Optional[Enumerator]] = []
        embeddings: List[Tuple[int, ...]] = []
        for m, my_pivots in enumerate(machine_pivots):
            report = reports[m]
            report.pivots = my_pivots
            report.construction_comm = PIVOT_MSG_COST * len(my_pivots)
            if not my_pivots:
                machine_clusters.append([])
                enumerators.append(None)
                continue
            tracked = storage.graph_for_machine(m)
            io_before = getattr(storage, "per_machine_io", {}).get(m, 0.0)
            stats = MatchStats()
            ceci = build_ceci(tree, tracked, my_pivots, stats)
            refine_ceci(ceci, stats)
            io_after = getattr(storage, "per_machine_io", {}).get(m, 0.0)
            report.construction_io = io_after - io_before
            report.construction_compute = FILTER_OP_COST * (
                stats.candidates_initial
                + stats.te_candidate_edges
                + stats.nte_candidate_edges
            )

            enumerator = Enumerator(ceci, symmetry=self.symmetry)
            enumerators.append(enumerator)
            clusters: List[Tuple[int, float]] = []
            for pivot in ceci.pivots:
                cluster_stats = MatchStats()
                cluster_enum = Enumerator(
                    ceci, symmetry=self.symmetry, stats=cluster_stats
                )
                found = list(cluster_enum.embeddings_from_unit((pivot,)))
                embeddings.extend(found)
                report.embeddings += len(found)
                clusters.append(
                    (pivot, ENUM_OP_COST * cluster_stats.recursive_calls)
                )
            machine_clusters.append(clusters)

        construction_makespan = max(
            (r.construction_total for r in reports), default=0.0
        )

        # --- enumeration with work stealing ----------------------------
        enumeration_makespan = _simulate_work_stealing(
            machine_clusters, reports
        )
        accumulation = ACCUMULATE_COST * len(embeddings)
        return DistributedResult(
            reports,
            embeddings,
            construction_makespan,
            enumeration_makespan,
            accumulation,
        )


def _simulate_work_stealing(
    machine_clusters: List[List[Tuple[int, float]]],
    reports: List[MachineReport],
) -> float:
    """Event-driven makespan: machines drain local queues, then steal
    from the machine with the most unexplored clusters (the victim)."""
    queues = [deque(clusters) for clusters in machine_clusters]
    clock = [0.0] * len(queues)
    active = set(range(len(queues)))
    while active:
        m = min(active, key=lambda i: clock[i])
        if queues[m]:
            _pivot, cost = queues[m].popleft()
            clock[m] += cost
            reports[m].local_enumeration += cost
            continue
        victim = max(
            (i for i in range(len(queues)) if queues[i]),
            key=lambda i: len(queues[i]),
            default=None,
        )
        if victim is None:
            reports[m].finish_time = clock[m]
            active.discard(m)
            continue
        _pivot, cost = queues[victim].pop()
        stolen = STEAL_COST + cost * STEAL_PENALTY
        clock[m] += stolen
        reports[m].stolen_enumeration += stolen
        reports[m].steals += 1
    return max(clock) if clock else 0.0
