"""The simulated distributed CECI system (Section 5), with fault
recovery.

Execution proceeds exactly as the paper describes:

1. the coordinator preprocesses the query (root, tree, pivots) and
   distributes the cluster pivots with the lightweight workload estimate
   (synchronous sends — a per-pivot message cost; dropped messages are
   retransmitted at extra cost);
2. every machine builds its *own* CECI over its pivot share, reading the
   graph through its storage model (replicated memory, or shared CSR
   with metered IO);
3. every machine enumerates its clusters, streaming each completed
   cluster's embeddings to machine 0; a machine that drains its local
   queue steals an unexplored cluster from the victim machine with the
   most remaining work (one-sided MPI_Get — a per-steal cost plus a
   remote-access penalty on the stolen cluster);
4. results are accumulated to machine 0.

Failure model (see DESIGN.md, "Failure model & budgets"): a seeded
:class:`~repro.resilience.faults.FaultPlan` can crash machines mid-
enumeration, drop coordinator messages, and slow machines down.  A
crashed machine's *unexplored* clusters — including the one it was
enumerating when it died, whose partial output is discarded — move to an
orphan pool that survivors drain through the same work-stealing loop,
with per-cluster retry accounting: a cluster lost more than
``max_retries`` times is reported in ``failed_clusters`` instead of
looping forever.  Clusters a crashed machine *completed* were already
accumulated at machine 0 and are not re-run, so the embedding union
stays exact whenever no cluster exhausts its retries.

Costs are simulated (DESIGN.md documents the substitution); the
*embeddings* are real — the union over machines is checked against the
sequential result in the test suite, fault plans included.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Dict, List, Optional, Tuple

from ..core.enumeration import Enumerator
from ..core.filtering import build_ceci
from ..core.matching_order import make_order
from ..core.query_tree import QueryTree
from ..core.refinement import refine_ceci
from ..core.root_selection import initial_candidates, select_root
from ..core.automorphism import SymmetryBreaker
from ..core.stats import MatchStats
from ..core.store import STORE_CHOICES
from ..graph import Graph
from ..observability.tracer import NULL_TRACER
from ..resilience.faults import FaultPlan
from ..resilience.recovery import RecoveryLog, RetryPolicy
from .machine import MachineReport
from .partition import distribute_pivots
from .storage import InMemoryStorage, SharedStorage, StorageModel

__all__ = ["DistributedCECI", "DistributedResult"]

#: Cost of one synchronous pivot message (MPI_Send/MPI_Recv pair).
PIVOT_MSG_COST = 0.5
#: Cost of one MPI_Get work steal.
STEAL_COST = 25.0
#: Remote-cluster penalty factor on stolen enumeration work.
STEAL_PENALTY = 1.15
#: Extra cost of adopting an orphaned cluster after a crash: the
#: survivor must re-fetch the victim's candidate data and replay the
#: cluster from scratch, which we price as one steal plus a rebuild
#: surcharge on the cluster's enumeration cost.
RECOVERY_PENALTY = 1.5
#: Per-embedding cost of accumulating results on machine 0.
ACCUMULATE_COST = 0.01
#: Compute cost units per filter evaluation during construction.
FILTER_OP_COST = 1.0
#: Compute cost units per enumeration recursive call.
ENUM_OP_COST = 1.0


class DistributedResult:
    """Outcome of one distributed run."""

    def __init__(
        self,
        reports: List[MachineReport],
        embeddings: List[Tuple[int, ...]],
        construction_makespan: float,
        enumeration_makespan: float,
        accumulation_cost: float,
        failed_clusters: Optional[List[int]] = None,
        stats: Optional[MatchStats] = None,
        recovery: Optional[RecoveryLog] = None,
    ) -> None:
        self.reports = reports
        self.embeddings = embeddings
        self.construction_makespan = construction_makespan
        self.enumeration_makespan = enumeration_makespan
        self.accumulation_cost = accumulation_cost
        #: Cluster pivots permanently lost (retries exhausted, or no
        #: surviving machine was left to adopt them).
        self.failed_clusters = failed_clusters or []
        #: Aggregate counters, including the resilience group
        #: (machine_crashes, retries, reassignments, steals, ...).
        self.stats = stats if stats is not None else MatchStats()
        #: Ordered recovery-event log of the run.
        self.recovery = recovery if recovery is not None else RecoveryLog()

    @property
    def complete(self) -> bool:
        """True when every cluster was enumerated by some machine —
        the embedding union is exactly the sequential set."""
        return not self.failed_clusters

    @property
    def total_time(self) -> float:
        """End-to-end simulated time."""
        return (
            self.construction_makespan
            + self.enumeration_makespan
            + self.accumulation_cost
        )

    def construction_breakdown(self) -> Dict[str, float]:
        """Aggregate (max over machines per component) io/comm/compute —
        the Figure 20 bars."""
        io = max((r.construction_io for r in self.reports), default=0.0)
        comm = max((r.construction_comm for r in self.reports), default=0.0)
        compute = max(
            (r.construction_compute for r in self.reports), default=0.0
        )
        return {"io": io, "comm": comm, "compute": compute}


class DistributedCECI:
    """Distributed subgraph listing over 1..N simulated machines.

    ``fault_plan`` injects deterministic machine crashes, coordinator
    message drops and stragglers; ``max_retries`` bounds how many times
    one cluster may be re-adopted after crashes before it is reported
    failed.

    ``tracer`` (optional) receives every machine's spans and phases,
    tagged ``machine=m`` — the per-machine streams merge into one trace
    file, and the run's real wall-clock filter / refine / enumerate
    phase records land both there and in ``DistributedResult.stats``
    with identical durations.  Per-machine construction and per-cluster
    enumeration counters are folded into the result's stats through the
    single :meth:`~repro.core.stats.MatchStats.merge` path.
    """

    def __init__(
        self,
        query: Graph,
        data: Graph,
        num_machines: int = 4,
        mode: str = "memory",
        break_automorphisms: bool = True,
        similarity_top: int = 1000,
        fault_plan: Optional[FaultPlan] = None,
        max_retries: int = 2,
        store: str = "compact",
        tracer=None,
    ) -> None:
        if mode not in ("memory", "shared"):
            raise ValueError(f"unknown storage mode {mode!r}")
        if store not in STORE_CHOICES:
            raise ValueError(
                f"unknown index store {store!r}; "
                f"expected one of {STORE_CHOICES}"
            )
        self.query = query
        self.data = data
        self.num_machines = num_machines
        self.mode = mode
        self.similarity_top = similarity_top
        self.symmetry = SymmetryBreaker(query, enabled=break_automorphisms)
        self.fault_plan = fault_plan
        self.retry_policy = RetryPolicy(max_retries)
        self.store = store
        self.tracer = NULL_TRACER if tracer is None else tracer

    def run(self) -> DistributedResult:
        """Execute the full distributed pipeline."""
        stats = MatchStats()
        recovery = RecoveryLog()
        plan = self.fault_plan
        drop_rng = plan.rng() if plan is not None else None

        # --- coordinator preprocessing --------------------------------
        root, pivots = select_root(self.query, self.data, MatchStats())
        candidate_counts = [
            len(initial_candidates(self.query, self.data, u))
            for u in self.query.vertices()
        ]
        order = make_order(self.query, root, "bfs", candidate_counts)
        tree = QueryTree(self.query, root, order)

        machine_pivots = distribute_pivots(
            self.data,
            pivots,
            self.num_machines,
            mode=self.mode,
            similarity_top=self.similarity_top if self.mode == "memory" else 0,
        )
        storage: StorageModel = (
            InMemoryStorage(self.data)
            if self.mode == "memory"
            else SharedStorage(self.data)
        )

        # --- per-machine CECI construction -----------------------------
        reports = [MachineReport(m) for m in range(self.num_machines)]
        machine_clusters: List[List[Tuple[int, float]]] = []
        #: Deterministic per-cluster enumeration output, keyed by pivot
        #: (pivots are partitioned, so the key is globally unique).
        cluster_embeddings: Dict[int, List[Tuple[int, ...]]] = {}
        for m, my_pivots in enumerate(machine_pivots):
            report = reports[m]
            report.pivots = my_pivots
            messages = len(my_pivots)
            dropped = 0
            if drop_rng is not None and plan.message_drop_rate > 0.0:
                # Each synchronous send may be lost and retransmitted
                # (the coordinator notices the missing ack).
                dropped = sum(
                    1
                    for _ in range(messages)
                    if drop_rng.random() < plan.message_drop_rate
                )
            if dropped:
                stats.messages_dropped += dropped
                recovery.record("message_drop", m, attempt=dropped)
            report.construction_comm = PIVOT_MSG_COST * (messages + dropped)
            if not my_pivots:
                machine_clusters.append([])
                continue
            tracked = storage.graph_for_machine(m)
            mtracer = (
                self.tracer.scoped(machine=m)
                if self.tracer.enabled
                else self.tracer
            )
            io_before = getattr(storage, "per_machine_io", {}).get(m, 0.0)
            machine_stats = MatchStats()

            def _machine_phase(name: str, started: float) -> float:
                # Same float into the stats and the machine-tagged trace
                # record — the distributed leg of the stats/trace
                # agreement invariant.
                seconds = time.perf_counter() - started
                machine_stats.add_phase(name, seconds)
                if mtracer.enabled:
                    mtracer.phase(name, started, seconds)
                return seconds

            started = time.perf_counter()
            ceci = build_ceci(
                tree, tracked, my_pivots, machine_stats, tracer=mtracer
            )
            report.construction_seconds += _machine_phase("filter", started)

            started = time.perf_counter()
            refine_ceci(ceci, machine_stats, tracer=mtracer)
            report.construction_seconds += _machine_phase("refine", started)
            io_after = getattr(storage, "per_machine_io", {}).get(m, 0.0)
            report.construction_io = io_after - io_before
            report.construction_compute = FILTER_OP_COST * (
                machine_stats.candidates_initial
                + machine_stats.te_candidate_edges
                + machine_stats.nte_candidate_edges
            )
            if self.store == "compact":
                # Freeze before enumeration: the machine's runtime index
                # — and the payload a placement would ship to it — is
                # its clusters' flat candidate-array slices, not pickled
                # dicts.
                started = time.perf_counter()
                ceci = ceci.compact(tracer=mtracer)
                report.construction_seconds += _machine_phase(
                    "freeze", started
                )
            report.index_bytes = ceci.memory_bytes()
            report.shipped_bytes = report.index_bytes
            storage.register_index_bytes(m, report.index_bytes)

            clusters: List[Tuple[int, float]] = []
            started = time.perf_counter()
            for pivot in ceci.pivots:
                pivot = int(pivot)
                cluster_stats = MatchStats()
                with mtracer.cluster_span(pivot):
                    cluster_enum = Enumerator(
                        ceci,
                        symmetry=self.symmetry,
                        stats=cluster_stats,
                        tracer=mtracer,
                    )
                    found = list(cluster_enum.embeddings_from_unit((pivot,)))
                cluster_embeddings[pivot] = found
                clusters.append(
                    (pivot, ENUM_OP_COST * cluster_stats.recursive_calls)
                )
                machine_stats.merge(cluster_stats)
            report.enumeration_seconds = _machine_phase("enumerate", started)
            report.recursive_calls = machine_stats.recursive_calls
            machine_clusters.append(clusters)
            # One merge path for the machine -> run fold: counters sum,
            # phase timings sum, memory_bytes keeps the peak.
            stats.merge(machine_stats)

        construction_makespan = max(
            (r.construction_total for r in reports), default=0.0
        )
        stats.memory_bytes = max((r.index_bytes for r in reports), default=0)

        # --- enumeration with work stealing and crash recovery ---------
        embeddings: List[Tuple[int, ...]] = []
        enumeration_makespan, failed_clusters = _simulate_work_stealing(
            machine_clusters,
            reports,
            cluster_embeddings,
            embeddings,
            plan,
            self.retry_policy,
            stats,
            recovery,
        )
        accumulation = ACCUMULATE_COST * len(embeddings)
        return DistributedResult(
            reports,
            embeddings,
            construction_makespan,
            enumeration_makespan,
            accumulation,
            failed_clusters=failed_clusters,
            stats=stats,
            recovery=recovery,
        )


def _simulate_work_stealing(
    machine_clusters: List[List[Tuple[int, float]]],
    reports: List[MachineReport],
    cluster_embeddings: Dict[int, List[Tuple[int, ...]]],
    embeddings_out: List[Tuple[int, ...]],
    plan: Optional[FaultPlan],
    retry_policy: RetryPolicy,
    stats: MatchStats,
    recovery: RecoveryLog,
) -> Tuple[float, List[int]]:
    """Event-driven makespan: machines drain local queues, then steal
    from the machine with the most unexplored clusters (the victim),
    then adopt orphaned clusters of crashed machines.

    A cluster's embeddings are accumulated exactly when some machine
    *completes* it, so crashes can never double-report or silently drop
    a cluster; returns ``(makespan, failed_cluster_pivots)``.
    """
    n = len(machine_clusters)
    # Queue items are (pivot, cost, attempts): attempts counts how many
    # machines already died while holding this cluster.
    queues = [
        deque((pivot, cost, 0) for pivot, cost in clusters)
        for clusters in machine_clusters
    ]
    orphans: deque = deque()
    clock = [0.0] * n
    clusters_started = [0] * n
    active = set(range(n))
    failed: List[int] = []

    def crash(m: int, item: Tuple[int, float, int]) -> None:
        """Machine ``m`` dies holding ``item``: discard its partial
        output, orphan the in-flight cluster (one attempt burned) and
        its whole unexplored queue (no attempt burned — those clusters
        were never started)."""
        pivot, cost, attempt = item
        reports[m].crashed = True
        reports[m].finish_time = clock[m]
        stats.machine_crashes += 1
        recovery.record("machine_crash", m, (pivot,), attempt)
        active.discard(m)
        if retry_policy.allows(attempt + 1):
            stats.retries += 1
            recovery.record("requeue", m, (pivot,), attempt + 1)
            orphans.append((pivot, cost, attempt + 1))
        else:
            recovery.record("give_up", m, (pivot,), attempt + 1)
            failed.append(pivot)
        while queues[m]:
            orphans.append(queues[m].popleft())

    while active:
        m = min(active, key=lambda i: clock[i])
        report = reports[m]
        slowdown = plan.slowdown(m) if plan is not None else 1.0
        if queues[m]:
            item = queues[m].popleft()
            kind = "local"
        else:
            victim = max(
                (i for i in range(n) if queues[i]),
                key=lambda i: len(queues[i]),
                default=None,
            )
            if victim is not None:
                item = queues[victim].pop()
                kind = "steal"
            elif orphans:
                item = orphans.popleft()
                kind = "recover"
            else:
                report.finish_time = clock[m]
                active.discard(m)
                continue
        if plan is not None and plan.machine_crashes_at(
            m, clusters_started[m]
        ):
            crash(m, item)
            continue
        clusters_started[m] += 1
        pivot, cost, _attempt = item
        if kind == "local":
            charge = cost * slowdown
            report.local_enumeration += charge
        elif kind == "steal":
            charge = STEAL_COST + cost * STEAL_PENALTY * slowdown
            report.stolen_enumeration += charge
            report.steals += 1
            stats.steals += 1
        else:  # recover
            charge = STEAL_COST + cost * RECOVERY_PENALTY * slowdown
            report.stolen_enumeration += charge
            report.reassigned += 1
            stats.reassignments += 1
            recovery.record("reassign", m, (pivot,))
        clock[m] += charge
        found = cluster_embeddings.get(pivot, [])
        embeddings_out.extend(found)
        report.embeddings += len(found)
    # Machines all went idle (or died): anything still orphaned has no
    # surviving machine left to adopt it.
    while orphans:
        pivot, _cost, attempt = orphans.popleft()
        recovery.record("give_up", -1, (pivot,), attempt)
        failed.append(pivot)
    makespan = max(
        (clock[i] for i in range(n) if not reports[i].crashed),
        default=0.0,
    )
    return makespan, failed
