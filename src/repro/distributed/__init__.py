"""Simulated distributed-memory CECI (Section 5)."""

from .machine import MachineReport
from .partition import (
    distribute_pivots,
    jaccard_similarity,
    lightweight_workload,
)
from .runtime import DistributedCECI, DistributedResult
from .storage import InMemoryStorage, SharedStorage, StorageModel, TrackedGraph

__all__ = [
    "DistributedCECI",
    "DistributedResult",
    "InMemoryStorage",
    "MachineReport",
    "SharedStorage",
    "StorageModel",
    "TrackedGraph",
    "distribute_pivots",
    "jaccard_similarity",
    "lightweight_workload",
]
