"""Per-machine bookkeeping for the simulated cluster."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

__all__ = ["MachineReport"]


@dataclass
class MachineReport:
    """Everything one simulated machine did during a distributed run."""

    machine_id: int
    #: Pivots this machine owns (its share of the embedding clusters).
    pivots: List[int] = field(default_factory=list)
    #: Lightweight workload estimate the partitioner assigned.
    estimated_workload: float = 0.0

    # --- CECI construction phase (Figure 20's three bars) -------------
    construction_compute: float = 0.0
    construction_io: float = 0.0
    construction_comm: float = 0.0
    #: Resident bytes of this machine's built candidate index (flat
    #: arrays under ``store="compact"``, boxed-dict model under
    #: ``store="dict"``).
    index_bytes: int = 0
    #: Index payload bytes shipped to place this machine's cluster
    #: slices (equals ``index_bytes``: the per-machine index *is* its
    #: clusters' candidate slices).
    shipped_bytes: int = 0

    # --- enumeration phase ---------------------------------------------
    #: Cost of enumerating the machine's own clusters.
    local_enumeration: float = 0.0
    #: Cost of clusters stolen from other machines (incl. penalty).
    stolen_enumeration: float = 0.0
    #: Number of MPI_Get steals performed.
    steals: int = 0
    #: Number of embeddings this machine reported.
    embeddings: int = 0
    #: Simulated time this machine went idle (or died).
    finish_time: float = 0.0

    # --- resilience ----------------------------------------------------
    #: True once a fault plan killed this machine mid-enumeration.
    crashed: bool = False
    #: Orphaned clusters of crashed machines this machine adopted.
    reassigned: int = 0

    # --- real wall-clock telemetry (observability layer) ----------------
    #: Measured seconds building + refining (+ freezing) this machine's
    #: CECI — the simulated ``construction_*`` costs above model the
    #: paper's cluster, these measure this process.
    construction_seconds: float = 0.0
    #: Measured seconds enumerating this machine's own clusters.
    enumeration_seconds: float = 0.0
    #: Recursive calls performed enumerating this machine's clusters.
    recursive_calls: int = 0

    @property
    def construction_total(self) -> float:
        """Total construction-phase cost."""
        return (
            self.construction_compute
            + self.construction_io
            + self.construction_comm
        )

    def construction_breakdown(self) -> Tuple[float, float, float]:
        """(io, comm, compute) — the Figure 20 stacking order."""
        return (
            self.construction_io,
            self.construction_comm,
            self.construction_compute,
        )
