"""Pivot distribution across machines (Section 5).

Cardinality is not yet available when pivots are distributed (it comes
out of refinement, which runs per machine), so the paper uses a
light-weight workload approximation:

* **in-memory** mode — ``workload(v) = deg(v) + Σ_{w∈N(v)} deg(w)``;
* **shared** mode — ``workload(v) = deg(v)`` (neighbor info would cost
  IO);
* both scaled by ``(|V| - v) / |V|`` to account for the imbalance the
  automorphism-breaking order inflicts (lower-id pivots do more work);
* **Jaccard co-location** (in-memory only): among the largest
  ``similarity_top`` clusters, pairs with
  ``J(v_i, v_j) = |N∩N| / |N∪N| >= 0.5`` are pinned to the same machine
  unless that machine would exceed the maximum allowed workload.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..graph import Graph

__all__ = ["lightweight_workload", "jaccard_similarity", "distribute_pivots"]

#: Paper threshold: clusters at least this similar share a machine.
JACCARD_THRESHOLD = 0.5

#: Paper cap: similarity is only computed among the largest 1,000
#: clusters to bound the quadratic cost.
DEFAULT_SIMILARITY_TOP = 1000

#: "provided that the total workload does not exceed the maximum allowed
#: workload": cap = this factor times the average machine load.
MAX_LOAD_FACTOR = 1.5


def lightweight_workload(
    data: Graph, pivot: int, mode: str = "memory"
) -> float:
    """The pre-CECI workload estimate for one pivot."""
    degree = data.degree(pivot)
    if mode == "memory":
        base = degree + sum(data.degree(w) for w in data.neighbors(pivot))
    elif mode == "shared":
        base = degree
    else:
        raise ValueError(f"unknown storage mode {mode!r}")
    n = data.num_vertices
    return base * (n - pivot) / n


def jaccard_similarity(data: Graph, v_i: int, v_j: int) -> float:
    """``J(v_i, v_j)`` over neighbor sets."""
    a = data.neighbor_set(v_i)
    b = data.neighbor_set(v_j)
    union = len(a | b)
    return len(a & b) / union if union else 0.0


def distribute_pivots(
    data: Graph,
    pivots: Sequence[int],
    num_machines: int,
    mode: str = "memory",
    similarity_top: int = DEFAULT_SIMILARITY_TOP,
) -> List[List[int]]:
    """Assign pivots to machines; returns one pivot list per machine.

    Greedy longest-processing-time assignment under the lightweight
    workload, with Jaccard groups (in-memory mode only) kept together
    while the target machine stays under ``MAX_LOAD_FACTOR`` x average.

    Degenerate shapes keep their obvious contracts — the sharded
    service tier feeds this per query, so they all actually occur: an
    empty pivot set yields ``num_machines`` empty lists; fewer pivots
    than machines leaves the surplus machines empty (callers skip
    empty partitions rather than dispatch no-op tasks); all-zero
    workloads (edgeless graphs) still place every pivot exactly once
    via the greedy least-loaded rule, which then degenerates to
    round-robin.
    """
    if num_machines < 1:
        raise ValueError("num_machines must be >= 1")
    if not pivots:
        return [[] for _ in range(num_machines)]
    workloads = {
        v: lightweight_workload(data, v, mode) for v in pivots
    }
    groups = _similarity_groups(data, pivots, workloads, mode, similarity_top)

    total = sum(workloads.values()) or 1.0
    max_load = MAX_LOAD_FACTOR * total / num_machines
    machine_pivots: List[List[int]] = [[] for _ in range(num_machines)]
    machine_load = [0.0] * num_machines

    group_items = sorted(
        groups,
        key=lambda group: -sum(workloads[v] for v in group),
    )
    for group in group_items:
        group_load = sum(workloads[v] for v in group)
        target = min(range(num_machines), key=lambda m: machine_load[m])
        if len(group) > 1 and machine_load[target] + group_load > max_load:
            # Splitting beats overload: place members individually.
            for v in sorted(group, key=lambda v: -workloads[v]):
                target = min(range(num_machines), key=lambda m: machine_load[m])
                machine_pivots[target].append(v)
                machine_load[target] += workloads[v]
        else:
            machine_pivots[target].extend(group)
            machine_load[target] += group_load
    return [sorted(ps) for ps in machine_pivots]


def _similarity_groups(
    data: Graph,
    pivots: Sequence[int],
    workloads: Dict[int, float],
    mode: str,
    similarity_top: int,
) -> List[List[int]]:
    """Union-find grouping of Jaccard-similar large clusters.  In shared
    mode each pivot is its own group (no neighbor info without IO)."""
    if mode != "memory" or similarity_top <= 0:
        return [[v] for v in pivots]
    ranked = sorted(pivots, key=lambda v: -workloads[v])[:similarity_top]
    parent = {v: v for v in pivots}

    def find(v: int) -> int:
        while parent[v] != v:
            parent[v] = parent[parent[v]]
            v = parent[v]
        return v

    for i, v_i in enumerate(ranked):
        for v_j in ranked[i + 1 :]:
            if jaccard_similarity(data, v_i, v_j) >= JACCARD_THRESHOLD:
                parent[find(v_j)] = find(v_i)
    grouped: Dict[int, List[int]] = {}
    for v in pivots:
        grouped.setdefault(find(v), []).append(v)
    return list(grouped.values())
