"""PsgL (Shao et al., 2014) — reference [47].

PsgL lists *all embeddings at once*: it keeps the full set of partial
embeddings as an explicit level-by-level frontier, expanding every
partial embedding by the next query vertex and redistributing the
intermediate set across workers after every expansion.  The traits the
paper measures against:

* **no pruning of unpromising paths** — expansion checks only label,
  degree and already-mapped edges, there is no index, no NLC filter and
  no refinement, so false paths survive until they die naturally
  (Figure 18's recursive-call gap);
* **exponential intermediate results** — the frontier holds every
  partial embedding at once (why PsgL needs >512 GB on YH, Section 6.4);
  :attr:`PsgLMatcher.peak_intermediate` records the high-water mark;
* **exhaustive work distribution** — a worker is chosen for *every*
  intermediate embedding after *every* expansion; the cost model in
  :meth:`simulate_parallel` charges that per-embedding routing overhead,
  reproducing the weaker thread scaling of Figures 13/14.

``alpha`` is PsgL's balance knob (the paper runs the optimal
``alpha = 0.5``): it blends even sharing with degree-proportional
sharing in the routing cost model.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..graph import Graph
from ..core.automorphism import SymmetryBreaker
from ..core.stats import MatchStats

__all__ = ["PsgLMatcher", "psgl_match"]

#: Routing cost (in expansion-operation units) of assigning one
#: intermediate embedding to a worker — PsgL pays this for every partial
#: embedding after every level.
ROUTING_COST = 0.25


class PsgLMatcher:
    """Level-synchronous all-at-once subgraph listing."""

    def __init__(
        self,
        query: Graph,
        data: Graph,
        break_automorphisms: bool = True,
        alpha: float = 0.5,
        stats: Optional[MatchStats] = None,
    ) -> None:
        if not query.is_connected():
            raise ValueError("query graph must be connected")
        self.query = query
        self.data = data
        self.alpha = alpha
        self.stats = stats if stats is not None else MatchStats()
        self.symmetry = SymmetryBreaker(query, enabled=break_automorphisms)
        self._order = self._expansion_order()
        self._position = {u: i for i, u in enumerate(self._order)}
        # For each query vertex: neighbors that precede it in the
        # expansion order, latest first (the head is the routing anchor).
        self._mapped_neighbors = {
            u: sorted(
                (w for w in self.query.neighbors(u)
                 if self._position[w] < self._position[u]),
                key=lambda w: -self._position[w],
            )
            for u in self.query.vertices()
        }
        #: Largest intermediate frontier ever held (embedding count).
        self.peak_intermediate = 0
        #: Expansion work done per level (for the parallel cost model).
        self.level_work: List[int] = []
        #: Frontier size entering each level.
        self.level_frontier: List[int] = []

    def _expansion_order(self) -> List[int]:
        """Connected order starting from the highest-degree query vertex
        (PsgL grows from dense vertices to keep the frontier connected)."""
        n = self.query.num_vertices
        start = max(range(n), key=lambda u: (self.query.degree(u), -u))
        order = [start]
        placed = {start}
        while len(order) < n:
            frontier = [
                u
                for u in range(n)
                if u not in placed
                and any(w in placed for w in self.query.neighbors(u))
            ]
            nxt = max(
                frontier,
                key=lambda u: (
                    sum(1 for w in self.query.neighbors(u) if w in placed),
                    self.query.degree(u),
                    -u,
                ),
            )
            order.append(nxt)
            placed.add(nxt)
        return order

    # ------------------------------------------------------------------
    def match(self, limit: Optional[int] = None) -> List[Tuple[int, ...]]:
        """All embeddings via level-synchronous expansion."""
        return list(self.embeddings(limit))

    def embeddings(self, limit: Optional[int] = None) -> Iterator[Tuple[int, ...]]:
        """Yield embeddings after the final expansion level.

        Unlike the backtracking matchers this cannot stream early: the
        whole frontier is expanded level by level (that *is* the PsgL
        strategy), so ``limit`` only truncates the output.
        """
        frontier = self._seed_frontier()
        self.level_work = []
        self.level_frontier = [len(frontier)]
        self.peak_intermediate = max(self.peak_intermediate, len(frontier))
        # Paper metric (Section 6.6): one recursive call per intermediate
        # match materialized — seeds count as depth-1 partials, and every
        # produced extension counts at its level.  This is the same
        # convention the CECI enumerator uses, so Figure 18's comparison
        # is apples to apples.
        self.stats.recursive_calls += len(frontier)
        for depth in range(1, len(self._order)):
            u = self._order[depth]
            next_frontier: List[Tuple[int, ...]] = []
            work = 0
            for partial in frontier:
                work += 1
                next_frontier.extend(self._expand(u, depth, partial))
            frontier = next_frontier
            self.stats.recursive_calls += len(frontier)
            self.level_work.append(work)
            self.level_frontier.append(len(frontier))
            self.peak_intermediate = max(self.peak_intermediate, len(frontier))
            if not frontier:
                return
        emitted = 0
        for partial in frontier:
            mapping = [-1] * self.query.num_vertices
            for depth, v in enumerate(partial):
                mapping[self._order[depth]] = v
            self.stats.embeddings_found += 1
            yield tuple(mapping)
            emitted += 1
            if limit is not None and emitted >= limit:
                return

    def _seed_frontier(self) -> List[Tuple[int, ...]]:
        u0 = self._order[0]
        labels = self.query.labels_of(u0)
        mapping = [-1] * self.query.num_vertices
        seeds = []
        for v in self.data.vertices():
            if not self.data.label_matches(labels, v):
                continue
            if not self.symmetry.admissible(u0, v, mapping):
                continue
            seeds.append((v,))
        return seeds

    def _expand(
        self, u: int, depth: int, partial: Tuple[int, ...]
    ) -> List[Tuple[int, ...]]:
        """Expand one partial embedding by query vertex ``u``.

        PsgL is vertex-centric (Pregel): the partial embedding is routed
        to — and expanded along the adjacency of — the *most recently
        matched* neighbor, not a cleverly chosen anchor; and there is no
        candidate index, so only the label and already-mapped edges are
        checked.  Both choices reproduce the pruning weakness Figure 18
        measures.
        """
        labels = self.query.labels_of(u)
        mapping = [-1] * self.query.num_vertices
        for d, v in enumerate(partial):
            mapping[self._order[d]] = v
        neighbors_in_order = self._mapped_neighbors[u]
        anchor = mapping[neighbors_in_order[0]]
        mapped_neighbors = [mapping[w] for w in neighbors_in_order]
        used = set(partial)
        out = []
        for v in self.data.neighbors(anchor):
            if v in used:
                continue
            if not self.data.label_matches(labels, v):
                continue
            ok = True
            for mv in mapped_neighbors:
                if mv == anchor:
                    continue
                self.stats.edge_verifications += 1
                if not self.data.has_edge(v, mv):
                    ok = False
                    break
            if ok and self.symmetry.admissible(u, v, mapping):
                out.append(partial + (v,))
        return out

    # ------------------------------------------------------------------
    def simulate_parallel(self, workers: int) -> float:
        """Modeled parallel runtime (in expansion-op units) after a
        sequential :meth:`match` has recorded the level profile.

        Per level: expansion work splits across ``workers`` (with the
        imbalance residue ``alpha`` leaves), then every produced
        intermediate embedding pays the serialized routing cost — the
        per-embedding worker selection the paper calls an overkill.
        """
        if not self.level_work:
            raise RuntimeError("run match() first to record the level profile")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        total = 0.0
        for level, work in enumerate(self.level_work):
            produced = self.level_frontier[level + 1]
            imbalance = 1.0 + (1.0 - self.alpha) * 0.5
            total += (work / workers) * imbalance + ROUTING_COST * produced
        return total


def psgl_match(
    query: Graph,
    data: Graph,
    limit: Optional[int] = None,
    break_automorphisms: bool = True,
) -> List[Tuple[int, ...]]:
    """Functional one-shot wrapper."""
    return PsgLMatcher(query, data, break_automorphisms).match(limit)
