"""VF2 (Cordella et al., 2004) — reference [10].

State-space search over partial mappings with the VF2 feasibility rules:

* **syntactic** — every already-mapped neighbor of the query vertex must
  map to a neighbor of the data vertex and vice versa (we match
  *subgraph* isomorphism, so extra data edges among mapped vertices are
  allowed in the monomorphism sense the paper uses — candidate edges only
  need to exist, non-edges are not forbidden);
* **look-ahead** — the number of unmapped query neighbors must not exceed
  the number of unmapped data neighbors (1-level look-ahead).

The next query vertex is always one connected to the current partial
mapping, the enhancement VF2 introduced over Ullmann.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Set, Tuple

from ..graph import Graph
from ..core.automorphism import SymmetryBreaker
from ..core.stats import MatchStats

__all__ = ["VF2Matcher", "vf2_match"]


class VF2Matcher:
    """VF2 state-space search for subgraph isomorphism."""

    def __init__(
        self,
        query: Graph,
        data: Graph,
        break_automorphisms: bool = True,
        stats: Optional[MatchStats] = None,
    ) -> None:
        if not query.is_connected():
            raise ValueError("query graph must be connected")
        self.query = query
        self.data = data
        self.stats = stats if stats is not None else MatchStats()
        self.symmetry = SymmetryBreaker(query, enabled=break_automorphisms)
        self._order = self._connected_order()

    def _connected_order(self) -> List[int]:
        """Query order where each vertex (after the first) touches an
        earlier one; ties broken toward higher degree then lower id."""
        n = self.query.num_vertices
        start = max(range(n), key=lambda u: (self.query.degree(u), -u))
        order = [start]
        chosen = {start}
        while len(order) < n:
            frontier = [
                u
                for u in range(n)
                if u not in chosen
                and any(w in chosen for w in self.query.neighbors(u))
            ]
            best = max(
                frontier,
                key=lambda u: (
                    sum(1 for w in self.query.neighbors(u) if w in chosen),
                    self.query.degree(u),
                    -u,
                ),
            )
            order.append(best)
            chosen.add(best)
        return order

    def embeddings(self, limit: Optional[int] = None) -> Iterator[Tuple[int, ...]]:
        """Yield embeddings (tuples indexed by query vertex)."""
        mapping = [-1] * self.query.num_vertices
        used: Set[int] = set()
        remaining = [limit]
        yield from self._extend(0, mapping, used, remaining)

    def _extend(
        self,
        depth: int,
        mapping: List[int],
        used: Set[int],
        remaining: List[Optional[int]],
    ) -> Iterator[Tuple[int, ...]]:
        self.stats.recursive_calls += 1
        if depth == len(self._order):
            self.stats.embeddings_found += 1
            if remaining[0] is not None:
                remaining[0] -= 1
            yield tuple(mapping)
            return
        u = self._order[depth]
        for v in self._candidate_pairs(u, depth, mapping, used):
            if not self.symmetry.admissible(u, v, mapping):
                continue
            mapping[u] = v
            used.add(v)
            yield from self._extend(depth + 1, mapping, used, remaining)
            used.discard(v)
            mapping[u] = -1
            if remaining[0] is not None and remaining[0] <= 0:
                return

    def _candidate_pairs(
        self, u: int, depth: int, mapping: List[int], used: Set[int]
    ) -> List[int]:
        labels = self.query.labels_of(u)
        mapped_neighbors = [
            mapping[w] for w in self.query.neighbors(u) if mapping[w] >= 0
        ]
        if mapped_neighbors:
            # candidates must be adjacent to every mapped neighbor;
            # expand from the lowest-degree anchor.
            anchor = min(mapped_neighbors, key=self.data.degree)
            pool: List[int] = list(self.data.neighbors(anchor))
        else:
            pool = list(self.data.vertices())
        out = []
        for v in pool:
            if v in used or not self.data.label_matches(labels, v):
                continue
            ok = True
            for mv in mapped_neighbors:
                self.stats.edge_verifications += 1
                if not self.data.has_edge(v, mv):
                    ok = False
                    break
            if ok and self._lookahead_ok(u, v, mapping, used):
                out.append(v)
        return out

    def _lookahead_ok(
        self, u: int, v: int, mapping: List[int], used: Set[int]
    ) -> bool:
        unmapped_query = sum(
            1 for w in self.query.neighbors(u) if mapping[w] < 0
        )
        unmapped_data = sum(
            1 for w in self.data.neighbors(v) if w not in used
        )
        return unmapped_data >= unmapped_query

    def match(self, limit: Optional[int] = None) -> List[Tuple[int, ...]]:
        """All embeddings (or first ``limit``) as a list."""
        return list(self.embeddings(limit))


def vf2_match(
    query: Graph,
    data: Graph,
    limit: Optional[int] = None,
    break_automorphisms: bool = True,
) -> List[Tuple[int, ...]]:
    """Functional one-shot wrapper."""
    return VF2Matcher(query, data, break_automorphisms).match(limit)
