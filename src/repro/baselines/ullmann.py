"""Ullmann's subgraph isomorphism algorithm (1976) — reference [54].

The inception of backtracking subgraph matching: a boolean candidate
matrix ``M[u][v]`` seeded by label/degree compatibility, refined by the
classic Ullmann condition (every query neighbor of ``u`` must retain a
candidate among ``v``'s data neighbors), then depth-first assignment in
query-vertex order with forward pruning.

Kept deliberately close to the original formulation — it is the oldest
baseline in the paper's lineage and the slowest on purpose.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Set, Tuple

from ..graph import Graph
from ..core.automorphism import SymmetryBreaker
from ..core.stats import MatchStats

__all__ = ["UllmannMatcher", "ullmann_match"]


class UllmannMatcher:
    """Classic candidate-matrix backtracking."""

    def __init__(
        self,
        query: Graph,
        data: Graph,
        break_automorphisms: bool = True,
        stats: Optional[MatchStats] = None,
    ) -> None:
        self.query = query
        self.data = data
        self.stats = stats if stats is not None else MatchStats()
        self.symmetry = SymmetryBreaker(query, enabled=break_automorphisms)

    def _initial_matrix(self) -> List[Set[int]]:
        candidates: List[Set[int]] = []
        for u in self.query.vertices():
            labels = self.query.labels_of(u)
            degree = self.query.degree(u)
            row = {
                v
                for v in self.data.vertices()
                if self.data.label_matches(labels, v)
                and self.data.degree(v) >= degree
            }
            candidates.append(row)
        return candidates

    def _refine(self, candidates: List[Set[int]]) -> bool:
        """Ullmann refinement to fixpoint; ``False`` when a row empties."""
        changed = True
        while changed:
            changed = False
            for u in self.query.vertices():
                doomed = []
                for v in candidates[u]:
                    for w in self.query.neighbors(u):
                        if not (self.data.neighbor_set(v) & candidates[w]):
                            doomed.append(v)
                            break
                if doomed:
                    changed = True
                    candidates[u] -= set(doomed)
                    if not candidates[u]:
                        return False
        return True

    def embeddings(self, limit: Optional[int] = None) -> Iterator[Tuple[int, ...]]:
        """Yield embeddings (tuples indexed by query vertex)."""
        candidates = self._initial_matrix()
        if not self._refine(candidates):
            return
        mapping = [-1] * self.query.num_vertices
        used: Set[int] = set()
        remaining = [limit]
        yield from self._assign(0, candidates, mapping, used, remaining)

    def _assign(
        self,
        u: int,
        candidates: List[Set[int]],
        mapping: List[int],
        used: Set[int],
        remaining: List[Optional[int]],
    ) -> Iterator[Tuple[int, ...]]:
        self.stats.recursive_calls += 1
        if u == self.query.num_vertices:
            self.stats.embeddings_found += 1
            if remaining[0] is not None:
                remaining[0] -= 1
            yield tuple(mapping)
            return
        for v in sorted(candidates[u]):
            if v in used:
                continue
            if not self._consistent(u, v, mapping):
                continue
            if not self.symmetry.admissible(u, v, mapping):
                continue
            mapping[u] = v
            used.add(v)
            yield from self._assign(u + 1, candidates, mapping, used, remaining)
            used.discard(v)
            mapping[u] = -1
            if remaining[0] is not None and remaining[0] <= 0:
                return

    def _consistent(self, u: int, v: int, mapping: List[int]) -> bool:
        for w in self.query.neighbors(u):
            matched = mapping[w]
            if matched >= 0:
                self.stats.edge_verifications += 1
                if not self.data.has_edge(v, matched):
                    return False
        return True

    def match(self, limit: Optional[int] = None) -> List[Tuple[int, ...]]:
        """All embeddings (or first ``limit``) as a list."""
        return list(self.embeddings(limit))


def ullmann_match(
    query: Graph,
    data: Graph,
    limit: Optional[int] = None,
    break_automorphisms: bool = True,
) -> List[Tuple[int, ...]]:
    """Functional one-shot wrapper."""
    return UllmannMatcher(query, data, break_automorphisms).match(limit)
