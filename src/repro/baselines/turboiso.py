"""TurboIso (Han et al., 2013) — reference [17] — and Boosted-TurboIso,
its BoostIso [45] data-side extension.

TurboIso's strategy, reimplemented:

1. start vertex by ``argmin |cand(u)|/deg(u)`` (the rule CECI inherits);
2. per start-candidate **candidate region (CR)** exploration: for each
   start data vertex, a DFS along the query tree collects the region's
   candidates per query vertex — the per-region analog of CECI's
   TE_Candidates (this per-region rebuild is the "redundancy in
   filtering" CECI's Section 6.2 credits part of its speedup to);
3. region-local matching order by candidate count;
4. backtracking enumeration with **edge verification** for non-tree
   edges (TurboIso has no NTE candidate lists).

Boosted-TurboIso additionally compresses the *data* graph by syntactic
vertex equivalence (BoostIso's SE relation): vertices with identical
label sets and identical neighborhoods (adjacent or non-adjacent twins)
form hyper-vertices; matching runs on representatives and each
representative embedding expands combinatorially to the member vertices.
"""

from __future__ import annotations

import sys
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from ..graph import Graph
from ..kernels import KERNEL_CHOICES, dispatch
from ..core.automorphism import SymmetryBreaker
from ..core.query_tree import QueryTree
from ..core.root_selection import initial_candidates, select_root
from ..core.stats import MatchStats
from ..core.store import STORE_CHOICES, PairArrays, encode_pairs, lookup_pairs

__all__ = ["TurboIsoMatcher", "turboiso_match", "boosted_turboiso_match", "data_vertex_classes"]

#: One candidate region: per query vertex, either the mutable
#: exploration dict ``{v_p: [v]}`` (``store="dict"``) or a frozen
#: :data:`~repro.core.store.PairArrays` triple (``store="compact"``).
Region = Dict[int, Union[Dict[int, List[int]], PairArrays]]


def _freeze_region(region: Region) -> Region:
    """Pack every per-parent dict into ``(keys, offsets, values)``
    triples — the same flat unit the compact CECI store uses, so the
    region's probes become zero-copy array slices."""
    return {
        u: per_parent if isinstance(per_parent, tuple)
        else encode_pairs(per_parent)
        for u, per_parent in region.items()
    }


def _region_values(region: Region, u: int, v_p: int) -> Sequence[int]:
    """Region candidates of ``u`` under parent candidate ``v_p`` —
    dispatches on the region's representation."""
    per_parent = region[u]
    if isinstance(per_parent, tuple):
        return lookup_pairs(per_parent, v_p)
    return per_parent.get(v_p, ())


def _region_bytes(region: Region) -> int:
    """Resident bytes of one candidate region: exact array payload for
    frozen regions, the boxed-container model (same convention as
    ``CECI.memory_bytes``) for dict regions."""
    int_size = sys.getsizeof(1 << 30)
    total = 0
    for per_parent in region.values():
        if isinstance(per_parent, tuple):
            keys, offsets, values = per_parent
            total += int(keys.nbytes + offsets.nbytes + values.nbytes)
            continue
        total += sys.getsizeof(per_parent)
        for values in per_parent.values():
            total += sys.getsizeof(values) + int_size * (len(values) + 1)
    return total


class TurboIsoMatcher:
    """Candidate-region based matcher.

    ``use_intersection=False`` (default) is faithful TurboIso: non-tree
    edges are checked per candidate against the data graph.
    ``use_intersection=True`` resolves them through the adaptive kernel
    suite instead — the region's candidate list is intersected with the
    sorted adjacency lists of the already-matched neighbors (identical
    embeddings, Lemma 2 cost model).
    """

    def __init__(
        self,
        query: Graph,
        data: Graph,
        break_automorphisms: bool = True,
        stats: Optional[MatchStats] = None,
        use_intersection: bool = False,
        kernel: str = "auto",
        store: str = "compact",
    ) -> None:
        if not query.is_connected():
            raise ValueError("query graph must be connected")
        if kernel not in KERNEL_CHOICES:
            raise ValueError(
                f"unknown intersection kernel {kernel!r}; "
                f"expected one of {KERNEL_CHOICES}"
            )
        if store not in STORE_CHOICES:
            raise ValueError(
                f"unknown index store {store!r}; "
                f"expected one of {STORE_CHOICES}"
            )
        self.query = query
        self.data = data
        self.stats = stats if stats is not None else MatchStats()
        self.symmetry = SymmetryBreaker(query, enabled=break_automorphisms)
        self.use_intersection = use_intersection
        self.kernel = kernel
        self.store = store
        root, pivots = select_root(query, data, MatchStats())
        self.root = root
        self.pivots = pivots
        self.tree = QueryTree(query, root)

    # ------------------------------------------------------------------
    def embeddings(self, limit: Optional[int] = None) -> Iterator[Tuple[int, ...]]:
        """Yield embeddings region by region."""
        remaining = [limit]
        for v_s in self.pivots:
            region = self._explore_cr(v_s)
            if region is None:
                continue
            order = self._region_order(region)
            if self.store == "compact":
                # Freeze after ordering (sizes need the dict) and after
                # any Boosted twin-swap rewrite (which edits dicts).
                region = _freeze_region(region)
            self.stats.memory_bytes = max(
                self.stats.memory_bytes, _region_bytes(region)
            )
            mapping = [-1] * self.query.num_vertices
            mapping[self.root] = v_s
            yield from self._enumerate(
                region, order, 0, mapping, {v_s}, remaining
            )
            if remaining[0] is not None and remaining[0] <= 0:
                return

    def _explore_cr(self, v_s: int) -> Optional[Dict[int, Dict[int, List[int]]]]:
        """ExploreCR: per-region candidates ``region[u][v_p] -> [v]``
        along the query tree, built fresh for every region."""
        region: Dict[int, Dict[int, List[int]]] = {}
        cand: Dict[int, Set[int]] = {self.root: {v_s}}
        for u in self.tree.order[1:]:
            u_p = self.tree.parent[u]
            labels = self.query.labels_of(u)
            degree_u = self.query.degree(u)
            per_parent: Dict[int, List[int]] = {}
            union: Set[int] = set()
            for v_p in sorted(cand.get(u_p, ())):
                matched = []
                for v in self.data.neighbors(v_p):
                    self.stats.candidates_initial += 1
                    if not self.data.label_matches(labels, v):
                        self.stats.removed_by_label += 1
                        continue
                    if self.data.degree(v) < degree_u:
                        self.stats.removed_by_degree += 1
                        continue
                    matched.append(v)
                if matched:
                    per_parent[v_p] = matched
                    union.update(matched)
            if not union:
                return None
            region[u] = per_parent
            cand[u] = union
        return region

    def _region_order(self, region: Dict[int, Dict[int, List[int]]]) -> List[int]:
        """Region-local order: tree-compatible, fewest candidates first."""
        sizes = {
            u: sum(len(vs) for vs in per_parent.values())
            for u, per_parent in region.items()
        }
        order = [self.root]
        placed = {self.root}
        pending = set(region)
        while pending:
            ready = [u for u in pending if self.tree.parent[u] in placed]
            nxt = min(ready, key=lambda u: (sizes[u], u))
            order.append(nxt)
            placed.add(nxt)
            pending.discard(nxt)
        return order

    def _enumerate(
        self,
        region: Region,
        order: Sequence[int],
        depth: int,
        mapping: List[int],
        used: Set[int],
        remaining: List[Optional[int]],
    ) -> Iterator[Tuple[int, ...]]:
        self.stats.recursive_calls += 1
        if depth == len(order) - 1:
            self.stats.embeddings_found += 1
            if remaining[0] is not None:
                remaining[0] -= 1
            yield tuple(mapping)
            return
        u = order[depth + 1]
        v_p = mapping[self.tree.parent[u]]
        if self.use_intersection:
            candidates = self._matching_nodes(region, u, v_p, mapping)
            verify_edges = False
        else:
            candidates = _region_values(region, u, v_p)
            verify_edges = True
        for v in candidates:
            v = int(v)
            if v in used:
                continue
            if verify_edges and not self._edges_ok(u, v, mapping):
                continue
            if not self.symmetry.admissible(u, v, mapping):
                continue
            mapping[u] = v
            used.add(v)
            yield from self._enumerate(
                region, order, depth + 1, mapping, used, remaining
            )
            used.discard(v)
            mapping[u] = -1
            if remaining[0] is not None and remaining[0] <= 0:
                return

    def _matching_nodes(
        self,
        region: Region,
        u: int,
        v_p: int,
        mapping: List[int],
    ) -> Sequence[int]:
        """Region candidates of ``u`` under ``v_p``, constrained by the
        matched non-tree neighbors via k-way sorted intersection (the
        region lists are built in adjacency order, hence sorted)."""
        base = _region_values(region, u, v_p)
        if len(base) == 0:
            return []
        lists: List[Sequence[int]] = [base]
        for w in self.query.neighbors(u):
            matched = mapping[w]
            if matched >= 0 and w != self.tree.parent[u]:
                lists.append(self.data.neighbors(matched))
        if len(lists) == 1:
            return base
        self.stats.intersections += 1
        name, result = dispatch(lists, self.kernel)
        self.stats.count_kernel(name)
        return result

    def _edges_ok(self, u: int, v: int, mapping: List[int]) -> bool:
        """Verify every query edge from ``u`` into the partial embedding
        (non-tree edges included) against the data graph."""
        for w in self.query.neighbors(u):
            matched = mapping[w]
            if matched >= 0 and w != self.tree.parent[u]:
                self.stats.edge_verifications += 1
                if not self.data.has_edge(v, matched):
                    return False
        return True

    def match(self, limit: Optional[int] = None) -> List[Tuple[int, ...]]:
        """All embeddings (or first ``limit``) as a list."""
        return list(self.embeddings(limit))


# ----------------------------------------------------------------------
# BoostIso data-side compression
# ----------------------------------------------------------------------
def data_vertex_classes(data: Graph) -> List[List[int]]:
    """Partition data vertices into syntactic-equivalence classes: same
    label set and same neighborhood (ignoring a mutual edge).

    Cached on the graph object — BoostIso computes its adapted graph
    *offline*, once per dataset, amortized over the whole query
    workload, so should this.
    """
    cached = getattr(data, "_twin_classes", None)
    if cached is not None:
        return cached
    signature: Dict[Tuple, List[int]] = {}
    for v in data.vertices():
        neighbor_key = frozenset(data.neighbor_set(v) | {v})
        # Two adjacent twins share N(v) ∪ {v}; two non-adjacent twins
        # share N(v).  Using both keys would over-merge, so classify by
        # the closed neighborhood and split by adjacency afterwards.
        key = (data.labels_of(v), neighbor_key)
        signature.setdefault(key, []).append(v)
    classes: List[List[int]] = []
    grouped: Set[int] = set()
    for members in signature.values():
        if len(members) > 1:
            classes.append(sorted(members))
            grouped.update(members)
    # Non-adjacent twins: same labels, same open neighborhood.
    open_sig: Dict[Tuple, List[int]] = {}
    for v in data.vertices():
        if v in grouped:
            continue
        key = (data.labels_of(v), data.neighbor_set(v))
        open_sig.setdefault(key, []).append(v)
    for members in open_sig.values():
        classes.append(sorted(members))
    try:
        data._twin_classes = classes
    except AttributeError:
        pass  # duck-typed graphs without the cache slot
    return classes


def turboiso_match(
    query: Graph,
    data: Graph,
    limit: Optional[int] = None,
    break_automorphisms: bool = True,
    use_intersection: bool = False,
    kernel: str = "auto",
    store: str = "compact",
) -> List[Tuple[int, ...]]:
    """Plain TurboIso."""
    return TurboIsoMatcher(
        query,
        data,
        break_automorphisms,
        use_intersection=use_intersection,
        kernel=kernel,
        store=store,
    ).match(limit)


class BoostedTurboIsoMatcher(TurboIsoMatcher):
    """TurboIso with BoostIso's data-side symmetry exploitation.

    Equivalent (twin) data vertices produce identical candidate regions
    up to swapping the twin ids, so the region is explored once per
    equivalence class and *rewritten* for each member pivot instead of
    re-explored — the dominant saving BoostIso reports for exploration-
    heavy queries.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._rep: Dict[int, int] = {}
        for group in data_vertex_classes(self.data):
            for v in group:
                self._rep[v] = group[0]
        self._region_cache: Dict[int, Optional[Dict[int, Dict[int, List[int]]]]] = {}

    def _explore_cr(self, v_s: int) -> Optional[Dict[int, Dict[int, List[int]]]]:
        rep = self._rep[v_s]
        if rep not in self._region_cache:
            self._region_cache[rep] = super()._explore_cr(rep)
        cached = self._region_cache[rep]
        if cached is None or rep == v_s:
            return cached
        return _swap_region(cached, rep, v_s)


def _swap_region(
    region: Dict[int, Dict[int, List[int]]], a: int, b: int
) -> Dict[int, Dict[int, List[int]]]:
    """Rewrite a cached candidate region for a twin pivot by swapping the
    two twin vertex ids everywhere (keys and value lists)."""

    def swap(v: int) -> int:
        if v == a:
            return b
        if v == b:
            return a
        return v

    out: Dict[int, Dict[int, List[int]]] = {}
    for u, per_parent in region.items():
        out[u] = {
            swap(v_p): sorted(swap(v) for v in values)
            for v_p, values in per_parent.items()
        }
    return out


def boosted_turboiso_match(
    query: Graph,
    data: Graph,
    limit: Optional[int] = None,
    break_automorphisms: bool = True,
    store: str = "compact",
) -> List[Tuple[int, ...]]:
    """Boosted-TurboIso: identical output to :func:`turboiso_match`,
    cheaper candidate-region construction on symmetry-rich graphs."""
    return BoostedTurboIsoMatcher(
        query, data, break_automorphisms, store=store
    ).match(limit)
