"""CFLMatch (Bi et al., 2016) — reference [4].

CFLMatch postpones Cartesian products by decomposing the query into
**core** (the 2-core), **forest** (trees hanging off the core) and
**leaves** (degree-1 vertices), matching the dense core first.  Its CPI
(compact path index) is structurally a TE-only CECI: per query vertex,
candidates keyed by the parent's candidates — crucially *without* NTE
candidate lists, so non-tree edges are checked by **edge verification**
during enumeration.  Those two differences (no NTE lists, edge
verification) are exactly what the paper credits CECI's speedup to, so
this reimplementation shares CECI's filtering machinery and differs only
there, plus in the core-forest-leaf matching order.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..graph import Graph
from ..core.automorphism import SymmetryBreaker
from ..core.enumeration import Enumerator
from ..core.filtering import build_ceci
from ..core.query_tree import QueryTree
from ..core.refinement import refine_ceci
from ..core.root_selection import initial_candidates, select_root
from ..core.stats import MatchStats
from ..core.store import STORE_CHOICES

__all__ = ["CFLMatcher", "cflmatch_match", "core_forest_leaf"]


def core_forest_leaf(query: Graph) -> Tuple[Set[int], Set[int], Set[int]]:
    """Core-forest-leaf decomposition.

    * **core** — the 2-core (iteratively strip degree<=1 vertices);
    * **leaves** — degree-1 vertices of the original query;
    * **forest** — everything else (tree vertices between core and leaves).

    For acyclic queries the 2-core is empty; CFLMatch then treats the
    whole query as forest+leaves, which this function reproduces.
    """
    degree = {u: query.degree(u) for u in query.vertices()}
    alive = set(query.vertices())
    changed = True
    while changed:
        changed = False
        for u in list(alive):
            if degree[u] <= 1:
                alive.discard(u)
                changed = True
                for w in query.neighbors(u):
                    if w in alive:
                        degree[w] -= 1
    core = alive
    leaves = {u for u in query.vertices() if query.degree(u) == 1}
    forest = set(query.vertices()) - core - leaves
    return core, forest, leaves


def _cfl_order(query: Graph, root: int) -> List[int]:
    """Tree-compatible matching order visiting core, then forest, then
    leaf vertices ("processing the dense portion of query earlier")."""
    core, forest, leaves = core_forest_leaf(query)

    def rank(u: int) -> int:
        if u in core:
            return 0
        if u in forest:
            return 1
        return 2

    tree = QueryTree(query, root)  # plain BFS tree fixes parents
    order = [root]
    placed = {root}
    pending = set(query.vertices()) - {root}
    while pending:
        ready = [u for u in pending if tree.parent[u] in placed]
        nxt = min(ready, key=lambda u: (rank(u), tree.level[u], u))
        order.append(nxt)
        placed.add(nxt)
        pending.discard(nxt)
    return order


class CFLMatcher:
    """Core-forest-leaf matcher over a CPI-style (TE-only) index.

    ``use_intersection=False`` (default) reproduces CFLMatch faithfully:
    non-tree edges are resolved by per-candidate edge verification.
    ``use_intersection=True`` is the kernel-suite variant — the CPI has
    no NTE lists, so the enumerator intersects the TE candidate list
    with the *data adjacency lists* of the matched NTE parents through
    the adaptive kernels (identical embeddings, different cost model).
    """

    def __init__(
        self,
        query: Graph,
        data: Graph,
        break_automorphisms: bool = True,
        stats: Optional[MatchStats] = None,
        use_intersection: bool = False,
        kernel: str = "auto",
        store: str = "compact",
    ) -> None:
        if not query.is_connected():
            raise ValueError("query graph must be connected")
        if store not in STORE_CHOICES:
            raise ValueError(
                f"unknown index store {store!r}; "
                f"expected one of {STORE_CHOICES}"
            )
        self.query = query
        self.data = data
        self.stats = stats if stats is not None else MatchStats()
        self.symmetry = SymmetryBreaker(query, enabled=break_automorphisms)
        self.use_intersection = use_intersection
        self.kernel = kernel
        self.store = store
        self._enumerator: Optional[Enumerator] = None

    def _build(self) -> Enumerator:
        if self._enumerator is not None:
            return self._enumerator
        root, pivots = select_root(self.query, self.data, self.stats)
        order = _cfl_order(self.query, root)
        tree = QueryTree(self.query, root, order)
        cpi = build_ceci(
            tree, self.data, pivots, self.stats, build_nte=False
        )
        refine_ceci(cpi, self.stats, kernel=self.kernel)
        if self.store == "compact":
            # The CPI freezes to the same flat layout (TE triples only;
            # ``nte_built=False`` keeps adjacency-fallback enumeration).
            cpi = cpi.compact()
        self.stats.memory_bytes = cpi.memory_bytes()
        self._enumerator = Enumerator(
            cpi,
            symmetry=self.symmetry,
            use_intersection=self.use_intersection,
            stats=self.stats,
            kernel=self.kernel,
        )
        return self._enumerator

    def embeddings(self, limit: Optional[int] = None) -> Iterator[Tuple[int, ...]]:
        """Yield embeddings (tuples indexed by query vertex)."""
        yield from self._build().embeddings(limit)

    def match(self, limit: Optional[int] = None) -> List[Tuple[int, ...]]:
        """All embeddings (or first ``limit``) as a list."""
        return list(self.embeddings(limit))

    def adjacency_matrix_bytes(self) -> int:
        """Memory a faithful CFLMatch would spend on its |V|x|V| bit
        matrix — the reason it "failed to run data graphs larger than
        500K nodes" (Section 6.4).  Reported, not allocated."""
        n = self.data.num_vertices
        return n * n // 8


def cflmatch_match(
    query: Graph,
    data: Graph,
    limit: Optional[int] = None,
    break_automorphisms: bool = True,
    use_intersection: bool = False,
    kernel: str = "auto",
    store: str = "compact",
) -> List[Tuple[int, ...]]:
    """Functional one-shot wrapper."""
    return CFLMatcher(
        query,
        data,
        break_automorphisms,
        use_intersection=use_intersection,
        kernel=kernel,
        store=store,
    ).match(limit)
