"""DualSim (Kim et al., 2016) — reference [24].

DualSim enumerates subgraphs from a *disk-resident* graph on a single
machine: the adjacency lists live in fixed-size slotted pages, a bounded
buffer holds a few pages at a time, and matching runs against whatever
combination of pages is loaded ("dual approach": pages drive the
iteration, not vertices).  Its performance profile — the one the paper's
Figures 7/8 compare against — is IO-bound: compute is cheap but every
adjacency access outside the buffer costs a page load.

This reimplementation keeps the strategy and makes the IO model
explicit:

* :class:`PageStore` slots adjacency lists into pages of
  ``vertices_per_page`` vertices and serves every neighbor lookup
  through an LRU buffer of ``buffer_pages`` pages, counting hits/loads;
* matching is pivot-ordered backtracking whose graph access goes
  exclusively through the page store;
* :meth:`DualSimMatcher.modeled_runtime` converts (compute ops, page
  loads) into time units with an IO:CPU cost ratio, defaulting to a
  disk-like 200x.

The substitution (cost model instead of a real spinning disk) preserves
what the figures show: DualSim's runtime scales with page loads, which
cap how much work it can feed the CPU.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from ..graph import Graph
from ..core.automorphism import SymmetryBreaker
from ..core.stats import MatchStats

__all__ = ["PageStore", "DualSimMatcher", "dualsim_match"]


class PageStore:
    """Paged adjacency access with an LRU buffer."""

    def __init__(
        self,
        graph: Graph,
        vertices_per_page: int = 64,
        buffer_pages: int = 8,
    ) -> None:
        if vertices_per_page < 1 or buffer_pages < 1:
            raise ValueError("page geometry must be positive")
        self.graph = graph
        self.vertices_per_page = vertices_per_page
        self.buffer_pages = buffer_pages
        self._buffer: "OrderedDict[int, bool]" = OrderedDict()
        self.page_loads = 0
        self.page_hits = 0

    def page_of(self, v: int) -> int:
        """Page number hosting vertex ``v``'s slot."""
        return v // self.vertices_per_page

    @property
    def num_pages(self) -> int:
        """Total pages of the store."""
        n = self.graph.num_vertices
        return (n + self.vertices_per_page - 1) // self.vertices_per_page

    def _touch(self, page: int) -> None:
        if page in self._buffer:
            self.page_hits += 1
            self._buffer.move_to_end(page)
            return
        self.page_loads += 1
        self._buffer[page] = True
        if len(self._buffer) > self.buffer_pages:
            self._buffer.popitem(last=False)

    def neighbors(self, v: int) -> Tuple[int, ...]:
        """Adjacency of ``v``, charging a page load on buffer miss."""
        self._touch(self.page_of(v))
        return self.graph.neighbors(v)

    def has_edge(self, u: int, v: int) -> bool:
        """Edge test via the smaller adjacency list's page."""
        probe = u if self.graph.degree(u) <= self.graph.degree(v) else v
        self._touch(self.page_of(probe))
        return self.graph.has_edge(u, v)

    def reset_counters(self) -> None:
        """Zero the hit/load counters (buffer content kept)."""
        self.page_loads = 0
        self.page_hits = 0


class DualSimMatcher:
    """Page-mediated backtracking enumeration."""

    def __init__(
        self,
        query: Graph,
        data: Graph,
        break_automorphisms: bool = True,
        vertices_per_page: int = 64,
        buffer_pages: int = 8,
        stats: Optional[MatchStats] = None,
    ) -> None:
        if not query.is_connected():
            raise ValueError("query graph must be connected")
        self.query = query
        self.data = data
        self.stats = stats if stats is not None else MatchStats()
        self.symmetry = SymmetryBreaker(query, enabled=break_automorphisms)
        self.store = PageStore(data, vertices_per_page, buffer_pages)
        self._order = self._page_friendly_order()

    def _page_friendly_order(self) -> List[int]:
        """Connected query order; DualSim favors orders that maximize
        reuse of loaded pages, approximated by most-constrained-first."""
        n = self.query.num_vertices
        start = max(range(n), key=lambda u: (self.query.degree(u), -u))
        order = [start]
        placed = {start}
        while len(order) < n:
            frontier = [
                u
                for u in range(n)
                if u not in placed
                and any(w in placed for w in self.query.neighbors(u))
            ]
            nxt = max(
                frontier,
                key=lambda u: (
                    sum(1 for w in self.query.neighbors(u) if w in placed),
                    self.query.degree(u),
                    -u,
                ),
            )
            order.append(nxt)
            placed.add(nxt)
        return order

    def embeddings(self, limit: Optional[int] = None) -> Iterator[Tuple[int, ...]]:
        """Yield embeddings; all adjacency goes through the page store.

        Data vertices are scanned page by page for the first query
        vertex — the page-combination iteration of the dual approach.
        """
        u0 = self._order[0]
        labels = self.query.labels_of(u0)
        degree = self.query.degree(u0)
        mapping = [-1] * self.query.num_vertices
        remaining = [limit]
        for v in self.data.vertices():  # ascending = page order
            self.store._touch(self.store.page_of(v))
            if not self.data.label_matches(labels, v):
                continue
            if self.data.degree(v) < degree:
                continue
            if not self.symmetry.admissible(u0, v, mapping):
                continue
            mapping[u0] = v
            yield from self._extend(1, mapping, {v}, remaining)
            mapping[u0] = -1
            if remaining[0] is not None and remaining[0] <= 0:
                return

    def _extend(
        self,
        depth: int,
        mapping: List[int],
        used: Set[int],
        remaining: List[Optional[int]],
    ) -> Iterator[Tuple[int, ...]]:
        self.stats.recursive_calls += 1
        if depth == len(self._order):
            self.stats.embeddings_found += 1
            if remaining[0] is not None:
                remaining[0] -= 1
            yield tuple(mapping)
            return
        u = self._order[depth]
        labels = self.query.labels_of(u)
        degree_u = self.query.degree(u)
        mapped_neighbors = [
            mapping[w] for w in self.query.neighbors(u) if mapping[w] >= 0
        ]
        anchor = min(mapped_neighbors, key=self.data.degree)
        for v in self.store.neighbors(anchor):
            if v in used:
                continue
            if not self.data.label_matches(labels, v):
                continue
            if self.data.degree(v) < degree_u:
                continue
            ok = True
            for mv in mapped_neighbors:
                if mv == anchor:
                    continue
                self.stats.edge_verifications += 1
                if not self.store.has_edge(v, mv):
                    ok = False
                    break
            if not ok or not self.symmetry.admissible(u, v, mapping):
                continue
            mapping[u] = v
            used.add(v)
            yield from self._extend(depth + 1, mapping, used, remaining)
            used.discard(v)
            mapping[u] = -1
            if remaining[0] is not None and remaining[0] <= 0:
                return

    def match(self, limit: Optional[int] = None) -> List[Tuple[int, ...]]:
        """All embeddings (or first ``limit``) as a list."""
        return list(self.embeddings(limit))

    def modeled_runtime(self, io_cost_ratio: float = 200.0) -> float:
        """Runtime in compute-op units: recursive calls + edge checks
        plus ``io_cost_ratio`` per page load — the IO-bound profile that
        keeps DualSim from exploiting many cores."""
        compute = self.stats.recursive_calls + self.stats.edge_verifications
        return compute + io_cost_ratio * self.store.page_loads


def dualsim_match(
    query: Graph,
    data: Graph,
    limit: Optional[int] = None,
    break_automorphisms: bool = True,
) -> List[Tuple[int, ...]]:
    """Functional one-shot wrapper."""
    return DualSimMatcher(query, data, break_automorphisms).match(limit)
