"""QuickSI (Shang et al., 2008) — reference [46].

QuickSI's contribution is the **QI-sequence**: a spanning-tree-based
search sequence that visits infrequent vertices and edges first, so the
backtracking tree is slimmest at the top.  We weight each query vertex by
the frequency of its label in the data graph and each edge by the product
of endpoint weights, build a minimum spanning tree under those weights
(Prim), and emit the sequence root-first.  Extra (non-tree) edges become
inline checks at the later endpoint, exactly like the original's
``extra_edges`` annotations.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Set, Tuple

from ..graph import Graph
from ..core.automorphism import SymmetryBreaker
from ..core.stats import MatchStats

__all__ = ["QuickSIMatcher", "quicksi_match"]


class QuickSIMatcher:
    """QI-sequence guided backtracking."""

    def __init__(
        self,
        query: Graph,
        data: Graph,
        break_automorphisms: bool = True,
        stats: Optional[MatchStats] = None,
    ) -> None:
        if not query.is_connected():
            raise ValueError("query graph must be connected")
        self.query = query
        self.data = data
        self.stats = stats if stats is not None else MatchStats()
        self.symmetry = SymmetryBreaker(query, enabled=break_automorphisms)
        self._order, self._tree_parent, self._extra_edges = self._qi_sequence()

    def _label_frequency(self, u: int) -> int:
        return min(
            len(self.data.vertices_with_label(label))
            for label in self.query.labels_of(u)
        )

    def _qi_sequence(self):
        """Prim's MST under infrequency weights, emitted as (order,
        tree-parent per vertex, extra edges per vertex)."""
        n = self.query.num_vertices
        weight = [self._label_frequency(u) for u in range(n)]
        start = min(range(n), key=lambda u: (weight[u], -self.query.degree(u)))
        order = [start]
        parent = [-1] * n
        in_tree = {start}
        while len(order) < n:
            best: Tuple[int, int] | None = None
            best_cost = None
            for u in range(n):
                if u in in_tree:
                    continue
                for w in self.query.neighbors(u):
                    if w not in in_tree:
                        continue
                    cost = (weight[u] * weight[w], weight[u], u)
                    if best_cost is None or cost < best_cost:
                        best_cost = cost
                        best = (u, w)
            assert best is not None, "query must be connected"
            u, w = best
            parent[u] = w
            order.append(u)
            in_tree.add(u)
        position = {u: i for i, u in enumerate(order)}
        extra: List[List[int]] = [[] for _ in range(n)]
        for s, d in self.query.edges:
            if parent[s] == d or parent[d] == s:
                continue
            later = s if position[s] > position[d] else d
            earlier = d if later == s else s
            extra[later].append(earlier)
        return order, parent, extra

    def embeddings(self, limit: Optional[int] = None) -> Iterator[Tuple[int, ...]]:
        """Yield embeddings (tuples indexed by query vertex)."""
        mapping = [-1] * self.query.num_vertices
        remaining = [limit]
        yield from self._extend(0, mapping, set(), remaining)

    def _extend(
        self,
        depth: int,
        mapping: List[int],
        used: Set[int],
        remaining: List[Optional[int]],
    ) -> Iterator[Tuple[int, ...]]:
        self.stats.recursive_calls += 1
        if depth == len(self._order):
            self.stats.embeddings_found += 1
            if remaining[0] is not None:
                remaining[0] -= 1
            yield tuple(mapping)
            return
        u = self._order[depth]
        labels = self.query.labels_of(u)
        degree_u = self.query.degree(u)
        parent = self._tree_parent[u]
        if parent >= 0:
            pool = self.data.neighbors(mapping[parent])
        else:
            seed_label = min(
                labels, key=lambda l: len(self.data.vertices_with_label(l))
            )
            pool = self.data.vertices_with_label(seed_label)
        for v in pool:
            if v in used:
                continue
            if not self.data.label_matches(labels, v):
                continue
            if self.data.degree(v) < degree_u:
                continue
            ok = True
            for earlier in self._extra_edges[u]:
                self.stats.edge_verifications += 1
                if not self.data.has_edge(v, mapping[earlier]):
                    ok = False
                    break
            if not ok or not self.symmetry.admissible(u, v, mapping):
                continue
            mapping[u] = v
            used.add(v)
            yield from self._extend(depth + 1, mapping, used, remaining)
            used.discard(v)
            mapping[u] = -1
            if remaining[0] is not None and remaining[0] <= 0:
                return

    def match(self, limit: Optional[int] = None) -> List[Tuple[int, ...]]:
        """All embeddings (or first ``limit``) as a list."""
        return list(self.embeddings(limit))


def quicksi_match(
    query: Graph,
    data: Graph,
    limit: Optional[int] = None,
    break_automorphisms: bool = True,
) -> List[Tuple[int, ...]]:
    """Functional one-shot wrapper."""
    return QuickSIMatcher(query, data, break_automorphisms).match(limit)
