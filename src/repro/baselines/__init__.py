"""Every competitor the paper evaluates against, reimplemented.

All matchers share one calling convention: construct with
``(query, data, break_automorphisms=True)``, then ``match(limit=None)``
returns embeddings as tuples indexed by query vertex — identical to
:class:`repro.core.CECIMatcher` output, so results are directly
comparable across algorithms (the test suite asserts exactly that).
"""

from .bare import BareMatcher, bare_match
from .cflmatch import CFLMatcher, cflmatch_match, core_forest_leaf
from .dualsim import DualSimMatcher, PageStore, dualsim_match
from .psgl import PsgLMatcher, psgl_match
from .quicksi import QuickSIMatcher, quicksi_match
from .turboiso import (
    BoostedTurboIsoMatcher,
    TurboIsoMatcher,
    boosted_turboiso_match,
    data_vertex_classes,
    turboiso_match,
)
from .ullmann import UllmannMatcher, ullmann_match
from .vf2 import VF2Matcher, vf2_match

__all__ = [
    "BareMatcher",
    "BoostedTurboIsoMatcher",
    "CFLMatcher",
    "DualSimMatcher",
    "PageStore",
    "PsgLMatcher",
    "QuickSIMatcher",
    "TurboIsoMatcher",
    "UllmannMatcher",
    "VF2Matcher",
    "bare_match",
    "boosted_turboiso_match",
    "cflmatch_match",
    "core_forest_leaf",
    "data_vertex_classes",
    "dualsim_match",
    "psgl_match",
    "quicksi_match",
    "turboiso_match",
    "ullmann_match",
    "vf2_match",
]
