"""Bare-graph parallel subgraph listing — the Figure 19 baseline.

Section 6.6: "We implement a baseline parallel subgraph listing solution
using graphs only and compared it with CECI based listing."  This is
exactly that: pivot-partitioned backtracking straight on the data graph
with nothing but the label and degree checks — no CECI, no NLC filter,
no refinement, no intersection lists.  Work is still splittable by pivot
(so it parallelizes the same way), which isolates the index's
contribution from the cluster-parallelism contribution in the speedup
breakdown.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Set, Tuple

from ..graph import Graph
from ..core.automorphism import SymmetryBreaker
from ..core.query_tree import QueryTree
from ..core.stats import MatchStats

__all__ = ["BareMatcher", "bare_match"]


class BareMatcher:
    """Index-free backtracking along a BFS query tree."""

    def __init__(
        self,
        query: Graph,
        data: Graph,
        break_automorphisms: bool = True,
        stats: Optional[MatchStats] = None,
    ) -> None:
        if not query.is_connected():
            raise ValueError("query graph must be connected")
        self.query = query
        self.data = data
        self.stats = stats if stats is not None else MatchStats()
        self.symmetry = SymmetryBreaker(query, enabled=break_automorphisms)
        # Root by degree only — without candidate scans the |cand|/deg
        # rule is unavailable; that is part of being "bare".
        root = max(query.vertices(), key=lambda u: (query.degree(u), -u))
        self.tree = QueryTree(query, root)

    def pivots(self) -> List[int]:
        """Label/degree-feasible matches of the root — the same cluster
        partitioning CECI uses, but unfiltered beyond LF/DF."""
        u0 = self.tree.root
        labels = self.query.labels_of(u0)
        degree = self.query.degree(u0)
        return [
            v
            for v in self.data.vertices()
            if self.data.label_matches(labels, v)
            and self.data.degree(v) >= degree
        ]

    def embeddings(self, limit: Optional[int] = None) -> Iterator[Tuple[int, ...]]:
        """Yield embeddings pivot by pivot."""
        remaining = [limit]
        for pivot in self.pivots():
            yield from self.embeddings_from_pivot(pivot, remaining)
            if remaining[0] is not None and remaining[0] <= 0:
                return

    def embeddings_from_pivot(
        self, pivot: int, remaining: Optional[List[Optional[int]]] = None
    ) -> Iterator[Tuple[int, ...]]:
        """Enumerate one pivot's cluster (the parallel work unit)."""
        if remaining is None:
            remaining = [None]
        mapping = [-1] * self.query.num_vertices
        if not self.symmetry.admissible(self.tree.root, pivot, mapping):
            return
        mapping[self.tree.root] = pivot
        yield from self._extend(1, mapping, {pivot}, remaining)

    def _extend(
        self,
        depth: int,
        mapping: List[int],
        used: Set[int],
        remaining: List[Optional[int]],
    ) -> Iterator[Tuple[int, ...]]:
        self.stats.recursive_calls += 1
        if depth == len(self.tree.order):
            self.stats.embeddings_found += 1
            if remaining[0] is not None:
                remaining[0] -= 1
            yield tuple(mapping)
            return
        u = self.tree.order[depth]
        labels = self.query.labels_of(u)
        degree_u = self.query.degree(u)
        v_p = mapping[self.tree.parent[u]]
        for v in self.data.neighbors(v_p):
            if v in used:
                continue
            if not self.data.label_matches(labels, v):
                continue
            if self.data.degree(v) < degree_u:
                continue
            ok = True
            for u_n in self.tree.nte_parents[u]:
                self.stats.edge_verifications += 1
                if not self.data.has_edge(v, mapping[u_n]):
                    ok = False
                    break
            if not ok or not self.symmetry.admissible(u, v, mapping):
                continue
            mapping[u] = v
            used.add(v)
            yield from self._extend(depth + 1, mapping, used, remaining)
            used.discard(v)
            mapping[u] = -1
            if remaining[0] is not None and remaining[0] <= 0:
                return

    def match(self, limit: Optional[int] = None) -> List[Tuple[int, ...]]:
        """All embeddings (or first ``limit``) as a list."""
        return list(self.embeddings(limit))


def bare_match(
    query: Graph,
    data: Graph,
    limit: Optional[int] = None,
    break_automorphisms: bool = True,
) -> List[Tuple[int, ...]]:
    """Functional one-shot wrapper."""
    return BareMatcher(query, data, break_automorphisms).match(limit)
