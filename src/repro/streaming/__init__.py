"""Streaming subgraph matching over evolving graphs (Section 7)."""

from .continuous import ContinuousQuery, UpdateDelta
from .dynamic import DynamicGraph

__all__ = ["ContinuousQuery", "DynamicGraph", "UpdateDelta"]
