"""Continuous subgraph matching over a stream of edge updates.

A :class:`ContinuousQuery` watches a :class:`DynamicGraph` and reports
the *delta* of the embedding set per update — the positive matches an
edge insertion creates, the matches an edge deletion destroys — the
problem TurboFlux [25] and the Section 7 streaming line solve.

The delta of an update on edge ``(a, b)`` is exactly the set of
embeddings that map some query edge onto ``(a, b)``: for every query
edge ``(q_u, q_v)`` and both orientations, seeded backtracking fixes
``q_u -> a, q_v -> b`` and completes the rest against the (post-insert /
pre-delete) graph.  Duplicates (one embedding covering the edge with
several of its query edges) are deduped.  The scheme is exact — tests
check every delta against full re-enumeration — at cost proportional to
the edge's local neighborhood, not the whole graph.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Set, Tuple

from ..core.automorphism import SymmetryBreaker
from ..graph import Graph
from .dynamic import DynamicGraph

__all__ = ["ContinuousQuery", "UpdateDelta"]

Embedding = Tuple[int, ...]


class UpdateDelta:
    """Delta of one stream update."""

    def __init__(
        self,
        edge: Tuple[int, int],
        inserted: bool,
        created: Tuple[Embedding, ...],
        destroyed: Tuple[Embedding, ...],
    ) -> None:
        self.edge = edge
        self.inserted = inserted
        self.created = created
        self.destroyed = destroyed

    def __repr__(self) -> str:
        kind = "insert" if self.inserted else "delete"
        return (
            f"<UpdateDelta {kind} {self.edge}: +{len(self.created)} "
            f"-{len(self.destroyed)}>"
        )


class ContinuousQuery:
    """One registered query over a dynamic graph.

    Parameters
    ----------
    query:
        Connected query graph.
    graph:
        The dynamic graph being streamed into.
    break_automorphisms:
        Same semantics as :class:`~repro.core.matcher.CECIMatcher`.
    track_matches:
        When True (default) the current embedding set is maintained in
        memory and :attr:`current_matches` is available.
    """

    def __init__(
        self,
        query: Graph,
        graph: DynamicGraph,
        break_automorphisms: bool = True,
        track_matches: bool = True,
    ) -> None:
        if not query.is_connected():
            raise ValueError("query graph must be connected")
        self.query = query
        self.graph = graph
        self.symmetry = SymmetryBreaker(query, enabled=break_automorphisms)
        self.track_matches = track_matches
        self._matches: Set[Embedding] = set()
        if track_matches:
            self._matches = set(self._full_enumeration())
        # per query edge, a completion order starting at its endpoints
        self._orders = {
            (s, d): self._seeded_order(s, d) for s, d in query.edges
        }

    # ------------------------------------------------------------------
    # Stream API
    # ------------------------------------------------------------------
    def insert_edge(self, a: int, b: int) -> UpdateDelta:
        """Apply an edge insertion and report the created embeddings."""
        if not self.graph.insert_edge(a, b):
            return UpdateDelta((a, b), True, (), ())
        created = tuple(sorted(self._embeddings_using(a, b)))
        if self.track_matches:
            self._matches.update(created)
        return UpdateDelta((a, b), True, created, ())

    def delete_edge(self, a: int, b: int) -> UpdateDelta:
        """Apply an edge deletion and report the destroyed embeddings."""
        if not self.graph.has_edge(a, b):
            return UpdateDelta((a, b), False, (), ())
        destroyed = tuple(sorted(self._embeddings_using(a, b)))
        self.graph.delete_edge(a, b)
        if self.track_matches:
            self._matches.difference_update(destroyed)
        return UpdateDelta((a, b), False, (), destroyed)

    @property
    def current_matches(self) -> Set[Embedding]:
        """The maintained embedding set (requires ``track_matches``)."""
        if not self.track_matches:
            raise RuntimeError("constructed with track_matches=False")
        return set(self._matches)

    # ------------------------------------------------------------------
    # Delta enumeration
    # ------------------------------------------------------------------
    def _embeddings_using(self, a: int, b: int) -> Set[Embedding]:
        """All embeddings (in the graph's current state) that map some
        query edge onto the data edge ``(a, b)``."""
        out: Set[Embedding] = set()
        for (q_u, q_v), order in self._orders.items():
            for x, y in ((a, b), (b, a)):
                if not self.graph.labels_of(x) >= self.query.labels_of(q_u):
                    continue
                if not self.graph.labels_of(y) >= self.query.labels_of(q_v):
                    continue
                mapping = [-1] * self.query.num_vertices
                if not self.symmetry.admissible(q_u, x, mapping):
                    continue
                mapping[q_u] = x
                if not self.symmetry.admissible(q_v, y, mapping):
                    continue
                mapping[q_v] = y
                self._complete(order, 2, mapping, {x, y}, out)
        return out

    def _seeded_order(self, q_u: int, q_v: int) -> List[int]:
        """Connected completion order starting with ``q_u, q_v``."""
        order = [q_u, q_v]
        placed = {q_u, q_v}
        while len(order) < self.query.num_vertices:
            frontier = [
                w
                for w in self.query.vertices()
                if w not in placed
                and any(n in placed for n in self.query.neighbors(w))
            ]
            nxt = max(
                frontier,
                key=lambda w: (
                    sum(1 for n in self.query.neighbors(w) if n in placed),
                    self.query.degree(w),
                    -w,
                ),
            )
            order.append(nxt)
            placed.add(nxt)
        return order

    def _complete(
        self,
        order: Sequence[int],
        depth: int,
        mapping: List[int],
        used: Set[int],
        out: Set[Embedding],
    ) -> None:
        if depth == len(order):
            out.add(tuple(mapping))
            return
        u = order[depth]
        labels = self.query.labels_of(u)
        mapped = [
            mapping[w] for w in self.query.neighbors(u) if mapping[w] >= 0
        ]
        anchor = min(mapped, key=self.graph.degree)
        for v in self.graph.neighbors(anchor):
            if v in used:
                continue
            if not self.graph.labels_of(v) >= labels:
                continue
            ok = True
            for mv in mapped:
                if mv != anchor and not self.graph.has_edge(v, mv):
                    ok = False
                    break
            if not ok or not self.symmetry.admissible(u, v, mapping):
                continue
            mapping[u] = v
            used.add(v)
            self._complete(order, depth + 1, mapping, used, out)
            used.discard(v)
            mapping[u] = -1

    def _full_enumeration(self) -> Iterator[Embedding]:
        from ..core.matcher import CECIMatcher

        snapshot = self.graph.snapshot()
        if snapshot.num_edges == 0 and self.query.num_edges > 0:
            return iter(())
        matcher = CECIMatcher(
            self.query,
            snapshot,
            break_automorphisms=self.symmetry.enabled,
        )
        return iter(matcher.match())
