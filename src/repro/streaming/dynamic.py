"""A mutable graph for streaming workloads.

Section 7: "Subgraph Isomorphism in Streaming Graph is gaining more
popularity as most of the real world graph data are continuously
evolving" — CECI's related work points at TurboFlux [25] and the
evolving-graph stores [31].  :class:`DynamicGraph` is the substrate for
that workload here: a labeled graph under edge insertions and deletions
that can hand out immutable :class:`~repro.graph.graph.Graph` snapshots
(cached until the next mutation) for any matcher in the repository.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..graph import Graph

__all__ = ["DynamicGraph"]


class DynamicGraph:
    """Mutable labeled graph with O(1) edge updates and cached
    snapshots."""

    def __init__(
        self,
        num_vertices: int = 0,
        edges: Optional[Iterable[Tuple[int, int]]] = None,
        labels: Optional[object] = None,
    ) -> None:
        self._labels: List[FrozenSet[object]] = []
        self._adjacency: List[Set[int]] = []
        self._num_edges = 0
        self._snapshot: Optional[Graph] = None
        for _ in range(num_vertices):
            self.add_vertex()
        if labels is not None:
            seq = list(labels)  # type: ignore[arg-type]
            if len(seq) != num_vertices:
                raise ValueError("labels length must match num_vertices")
            for v, entry in enumerate(seq):
                self.set_labels(v, entry)
        if edges is not None:
            for s, d in edges:
                self.insert_edge(s, d)

    @classmethod
    def from_graph(cls, graph: Graph) -> "DynamicGraph":
        """Start from an immutable graph's current state."""
        dynamic = cls()
        for v in graph.vertices():
            dynamic.add_vertex(graph.labels_of(v))
        for s, d in graph.edges:
            dynamic.insert_edge(s, d)
        return dynamic

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_vertex(self, labels: Optional[object] = None) -> int:
        """Append a vertex; returns its id."""
        vid = len(self._adjacency)
        self._adjacency.append(set())
        if labels is None:
            labelset: FrozenSet[object] = frozenset((0,))
        elif isinstance(labels, (set, frozenset, list, tuple)):
            labelset = frozenset(labels)
            if not labelset:
                raise ValueError("labels may not be empty")
        else:
            labelset = frozenset((labels,))
        self._labels.append(labelset)
        self._snapshot = None
        return vid

    def set_labels(self, v: int, labels: object) -> None:
        """Replace the label set of ``v``."""
        if isinstance(labels, (set, frozenset, list, tuple)):
            labelset = frozenset(labels)
            if not labelset:
                raise ValueError("labels may not be empty")
        else:
            labelset = frozenset((labels,))
        self._labels[v] = labelset
        self._snapshot = None

    def insert_edge(self, u: int, v: int) -> bool:
        """Insert an edge; returns False if it already existed."""
        self._check(u)
        self._check(v)
        if u == v:
            raise ValueError("self loops are not allowed")
        if v in self._adjacency[u]:
            return False
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)
        self._num_edges += 1
        self._snapshot = None
        return True

    def delete_edge(self, u: int, v: int) -> bool:
        """Delete an edge; returns False if it was absent."""
        self._check(u)
        self._check(v)
        if v not in self._adjacency[u]:
            return False
        self._adjacency[u].discard(v)
        self._adjacency[v].discard(u)
        self._num_edges -= 1
        self._snapshot = None
        return True

    def _check(self, v: int) -> None:
        if not 0 <= v < len(self._adjacency):
            raise ValueError(f"unknown vertex {v}")

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Current vertex count."""
        return len(self._adjacency)

    @property
    def num_edges(self) -> int:
        """Current edge count."""
        return self._num_edges

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the edge currently exists."""
        return v in self._adjacency[u]

    def neighbors(self, v: int) -> Set[int]:
        """Current neighbor set of ``v`` (a copy)."""
        return set(self._adjacency[v])

    def degree(self, v: int) -> int:
        """Current degree of ``v``."""
        return len(self._adjacency[v])

    def labels_of(self, v: int) -> FrozenSet[object]:
        """Current label set of ``v``."""
        return self._labels[v]

    def snapshot(self) -> Graph:
        """An immutable :class:`Graph` of the current state, cached
        until the next mutation."""
        if self._snapshot is None:
            edges = [
                (u, v)
                for u in range(len(self._adjacency))
                for v in self._adjacency[u]
                if u < v
            ]
            self._snapshot = Graph(
                len(self._adjacency), edges, list(self._labels)
            )
        return self._snapshot

    def __repr__(self) -> str:
        return (
            f"<DynamicGraph |V|={self.num_vertices} |E|={self.num_edges}>"
        )
