"""Automorphism breaking (Section 2.2).

When query vertices are symmetric, each embedding's vertex set would be
listed once per automorphism (a triangle lists 6 times).  The paper
combines TurboIso's NEC-equivalence grouping with the ordering rules of
Grochow & Kellis [16]: vertices in the same equivalence group must be
matched in ascending data-vertex order.

Two query vertices ``u`` and ``w`` are equivalent when they carry the same
labels and ``N(u) \\ {w} == N(w) \\ {u}`` — this covers both the adjacent
case (mutual neighbors plus each other, e.g. a clique) and the
non-adjacent case (shared neighborhood, e.g. the two degree-1 tips of a
star).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..graph import Graph

__all__ = [
    "equivalence_groups",
    "SymmetryBreaker",
    "canonical_form",
    "canonical_signature",
]


def equivalence_groups(query: Graph) -> List[Tuple[int, ...]]:
    """Partition query vertices into NEC-equivalence groups (only groups
    of size >= 2 are returned, sorted by their smallest member)."""
    n = query.num_vertices
    assigned = [-1] * n
    groups: List[List[int]] = []
    for u in range(n):
        if assigned[u] >= 0:
            continue
        group = [u]
        assigned[u] = len(groups)
        for w in range(u + 1, n):
            if assigned[w] >= 0:
                continue
            if query.labels_of(u) != query.labels_of(w):
                continue
            nu = set(query.neighbor_set(u)) - {w}
            nw = set(query.neighbor_set(w)) - {u}
            if nu == nw:
                group.append(w)
                assigned[w] = assigned[u]
        groups.append(group)
    return [tuple(g) for g in groups if len(g) >= 2]


def _wl_colors(graph: Graph) -> List[int]:
    """Weisfeiler-Leman vertex colors, mapped to dense ints by sorted
    signature so the coloring is invariant under relabeling.  Seeded by
    (label set, degree), refined with neighbor-color multisets until the
    partition stabilises."""
    n = graph.num_vertices
    keys: List[object] = [
        (tuple(sorted(map(repr, graph.labels_of(u)))), graph.degree(u))
        for u in range(n)
    ]
    colors = _densify(keys)
    while True:
        keys = [
            (colors[u], tuple(sorted(colors[w] for w in graph.neighbors(u))))
            for u in range(n)
        ]
        refined = _densify(keys)
        if refined == colors:
            return colors
        colors = refined


def _densify(keys: List[object]) -> List[int]:
    rank = {key: i for i, key in enumerate(sorted(set(keys)))}
    return [rank[key] for key in keys]


def canonical_form(graph: Graph) -> Tuple[str, Tuple[int, ...]]:
    """Canonical labeling of a (small) graph: ``(signature, order)``.

    ``signature`` is a hex digest identical for any two isomorphic
    graphs and different for non-isomorphic ones; ``order[i]`` is the
    vertex placed at canonical position ``i``.  Two isomorphic graphs
    ``a`` and ``b`` are mapped onto each other by
    ``sigma[u] = order_b[position_a[u]]``.

    The search is individualization-lite: vertices are placed one
    position at a time, branching only on candidates whose invariant
    step key — WL color plus the positions of already-placed neighbors
    — is minimal, deduplicated per NEC twin class (swapping two unused
    twins is an automorphism fixing every placed vertex, so one branch
    per class suffices; this is what keeps cliques linear instead of
    factorial).  The lexicographically smallest complete encoding wins.
    Like :func:`automorphisms`, this is meant for *query* graphs —
    small, usually labeled — not for data graphs.
    """
    import hashlib

    n = graph.num_vertices
    if n == 0:
        return hashlib.sha256(b"empty").hexdigest(), ()
    colors = _wl_colors(graph)
    # WL colors are *dense per-graph ranks* — iso-invariant for ordering
    # but blind to label content (all-"a" and all-"b" cliques both rank
    # to color 0).  The encoding therefore carries each vertex's actual
    # label set too, making signature equality equivalent to labeled
    # isomorphism: the per-step placed-neighbor positions reconstruct
    # the full adjacency matrix and the labels reconstruct the coloring.
    label_keys = [
        tuple(sorted(map(repr, graph.labels_of(u)))) for u in range(n)
    ]
    twin_class = list(range(n))
    for group in equivalence_groups(graph):
        for member in group:
            twin_class[member] = group[0]

    best: List[object] = []
    best_order: List[int] = []
    order: List[int] = []
    position = [-1] * n
    encoding: List[object] = []

    def rec() -> None:
        depth = len(order)
        if depth == n:
            if not best_order or encoding < best:
                best[:] = encoding
                best_order[:] = order
            return
        step_keys = {}
        for v in range(n):
            if position[v] >= 0:
                continue
            step_keys[v] = (
                label_keys[v],
                colors[v],
                tuple(sorted(
                    position[w]
                    for w in graph.neighbors(v)
                    if position[w] >= 0
                )),
            )
        minimum = min(step_keys.values())
        seen_classes = set()
        for v, key in sorted(step_keys.items()):
            if key != minimum:
                continue
            marker = (twin_class[v], key)
            if marker in seen_classes:
                continue
            seen_classes.add(marker)
            encoding.append(key)
            if best_order and encoding > best[: len(encoding)]:
                encoding.pop()
                continue
            order.append(v)
            position[v] = depth
            rec()
            position[v] = -1
            order.pop()
            encoding.pop()

    rec()
    digest = hashlib.sha256(repr(best).encode()).hexdigest()
    return digest, tuple(best_order)


def canonical_signature(graph: Graph) -> str:
    """Just the signature half of :func:`canonical_form`."""
    return canonical_form(graph)[0]


def automorphisms(query: Graph) -> List[Tuple[int, ...]]:
    """All automorphisms of the query graph (label- and adjacency-
    preserving permutations), by backtracking with degree/label pruning.

    Query graphs are small (the paper's go up to 50 vertices, and
    labeled ones almost always have a trivial group), so exhaustive
    enumeration is cheap.
    """
    n = query.num_vertices
    out: List[Tuple[int, ...]] = []
    perm: List[int] = [-1] * n
    used = [False] * n

    def compatible(u: int, w: int) -> bool:
        if query.labels_of(u) != query.labels_of(w):
            return False
        if query.degree(u) != query.degree(w):
            return False
        for x in query.neighbors(u):
            px = perm[x]
            if px >= 0 and not query.has_edge(w, px):
                return False
        # exact adjacency: non-edges must map to non-edges
        for x in range(n):
            px = perm[x]
            if px >= 0 and x not in query.neighbor_set(u) and x != u:
                if query.has_edge(w, px):
                    return False
        return True

    def rec(u: int) -> None:
        if u == n:
            out.append(tuple(perm))
            return
        for w in range(n):
            if used[w]:
                continue
            if compatible(u, w):
                perm[u] = w
                used[w] = True
                rec(u + 1)
                used[w] = False
                perm[u] = -1

    rec(0)
    return out


def gk_conditions(aut: List[Tuple[int, ...]]) -> List[Tuple[int, int]]:
    """Grochow-Kellis [16] symmetry-breaking conditions.

    Repeatedly: take the smallest vertex ``v`` with a nontrivial orbit
    under the remaining group, require ``map(v) < map(w)`` for every
    other orbit member ``w``, then recurse on the stabilizer of ``v``.
    Exactly one member of each automorphism orbit of embeddings
    satisfies all conditions.
    """
    conditions: List[Tuple[int, int]] = []
    group = list(aut)
    if not group:
        return conditions
    n = len(group[0])
    while True:
        target = -1
        orbit: set = set()
        for v in range(n):
            images = {g[v] for g in group}
            if len(images) > 1:
                target = v
                orbit = images
                break
        if target < 0:
            break
        for w in sorted(orbit):
            if w != target:
                conditions.append((target, w))
        group = [g for g in group if g[target] == target]
    return conditions


class SymmetryBreaker:
    """Precomputed ordering constraints breaking the FULL automorphism
    group of the query.

    The paper combines TurboIso's NEC-equivalence groups with the
    ordering rules of Grochow & Kellis [16].  Group transpositions alone
    under-break queries whose symmetry is not generated by neighborhood-
    equivalent pairs (the 4-cycle QG2 has |Aut| = 8 but only 4 pairwise
    swaps; the house QG5 has a reflection with no equivalent pair at
    all), so this implementation derives the GK conditions from the full
    automorphism group — exactly one listing per image subgraph.
    """

    def __init__(self, query: Graph, enabled: bool = True) -> None:
        self.enabled = enabled
        self.groups: List[Tuple[int, ...]] = (
            equivalence_groups(query) if enabled else []
        )
        self._aut_size = 1
        #: per query vertex: (vertices that must map lower, higher).
        self._must_be_above: Dict[int, List[int]] = {}
        self._must_be_below: Dict[int, List[int]] = {}
        if enabled:
            aut = automorphisms(query)
            self._aut_size = len(aut)
            self.conditions: List[Tuple[int, int]] = gk_conditions(aut)
            for lo, hi in self.conditions:
                self._must_be_above.setdefault(hi, []).append(lo)
                self._must_be_below.setdefault(lo, []).append(hi)
        else:
            self.conditions = []

    def automorphism_count(self) -> int:
        """``|Aut(Gq)|`` — the exact relisting factor suppressed."""
        return self._aut_size

    def admissible(self, u: int, v: int, mapping: Sequence[int]) -> bool:
        """Whether assigning data vertex ``v`` to query vertex ``u`` is
        consistent with the ordering rules given the partial ``mapping``
        (``mapping[q] == -1`` when ``q`` is unmatched)."""
        if not self.enabled:
            return True
        for lo in self._must_be_above.get(u, ()):
            matched = mapping[lo]
            if matched >= 0 and not matched < v:
                return False
        for hi in self._must_be_below.get(u, ()):
            matched = mapping[hi]
            if matched >= 0 and not v < matched:
                return False
        return True
