"""CECI creation and BFS-based filtering — Algorithm 1 (Section 3.2).

The data graph is explored from the cluster pivots level by level along
the query tree.  Each frontier expansion applies four filters:

* **LF** — label filter: ``L_q(u) ⊆ L(v)``;
* **DF** — degree filter: ``degree(v) >= degree(u)``;
* **NLCF** — neighborhood label count filter: for every label ``l`` around
  ``u``, ``count_v(l) >= count_u(l)``;
* **empty-entry cascade** — if ``TE_Candidates[u]`` has no entry for key
  ``v_p``, then ``v_p`` cannot match ``u_p``: it is deleted from the
  parent's candidates and from the TE maps of all of ``u_p``'s children.

``NTE_Candidates`` are built afterwards the same way: for each non-tree
edge the earlier vertex in the matching order acts as parent, its
candidates are the frontier, and only neighbors that already survived as
candidates of the child qualify.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..graph import Graph
from ..observability.tracer import NULL_TRACER
from .ceci import CECI
from .query_tree import QueryTree
from .root_selection import initial_candidates, select_root
from .stats import MatchStats

__all__ = ["build_ceci", "FilterConfig"]


class FilterConfig:
    """Ablation switches for the filtering pipeline.

    All filters are on by default — switching one off reproduces the
    ablation benchmarks; the index stays *complete* either way, only its
    tightness (and therefore enumeration cost) changes.
    """

    __slots__ = ("use_degree_filter", "use_nlc_filter", "use_cascade")

    def __init__(
        self,
        use_degree_filter: bool = True,
        use_nlc_filter: bool = True,
        use_cascade: bool = True,
    ) -> None:
        self.use_degree_filter = use_degree_filter
        self.use_nlc_filter = use_nlc_filter
        self.use_cascade = use_cascade


def build_ceci(
    tree: QueryTree,
    data: Graph,
    pivots: Optional[List[int]] = None,
    stats: Optional[MatchStats] = None,
    config: Optional[FilterConfig] = None,
    build_nte: bool = True,
    tracer=None,
) -> CECI:
    """Run Algorithm 1 (TE construction + filtering) and the analogous
    NTE construction, returning the populated (not yet refined) CECI.

    ``pivots`` are the root candidates; when omitted they are recomputed
    with the LF/DF/NLCF scan.  ``build_nte=False`` produces a TE-only
    index — the shape of CFLMatch's CPI, used by that baseline.  An
    enabled ``tracer`` gets one child span per frontier expansion (the
    per-level decomposition of the filter phase).
    """
    config = config or FilterConfig()
    stats = stats if stats is not None else MatchStats()
    tracer = NULL_TRACER if tracer is None else tracer
    query = tree.query
    ceci = CECI(tree, data)

    if pivots is None:
        pivots = initial_candidates(
            query,
            data,
            tree.root,
            stats,
            use_degree_filter=config.use_degree_filter,
            use_nlc_filter=config.use_nlc_filter,
        )
    ceci.pivots = sorted(pivots)
    ceci.cand[tree.root] = set(pivots)

    if tracer.enabled:
        for u in tree.order[1:]:
            with tracer.span("filter:te", u=int(u)):
                _expand_tree_edge(ceci, u, stats, config)
    else:
        for u in tree.order[1:]:
            _expand_tree_edge(ceci, u, stats, config)

    ceci.nte_built = build_nte
    if build_nte:
        if tracer.enabled:
            for u_n, u in tree.non_tree_edges:
                with tracer.span("filter:nte", u=int(u), u_n=int(u_n)):
                    _expand_non_tree_edge(ceci, u_n, u)
        else:
            for u_n, u in tree.non_tree_edges:
                _expand_non_tree_edge(ceci, u_n, u)

    # Sync the candidate sets to the surviving unions: cascade deletions
    # may have orphaned values whose every parent key is gone.
    for u in tree.order:
        ceci.cand[u] = ceci.te_union(u)

    ceci.record_size(stats)
    return ceci


def _passes_filters(
    query: Graph,
    data: Graph,
    u: int,
    v: int,
    stats: MatchStats,
    config: FilterConfig,
) -> bool:
    """LF + DF + NLCF on one (query vertex, data vertex) pair."""
    stats.candidates_initial += 1
    if not data.label_matches(query.labels_of(u), v):
        stats.removed_by_label += 1
        return False
    if config.use_degree_filter and data.degree(v) < query.degree(u):
        stats.removed_by_degree += 1
        return False
    if config.use_nlc_filter:
        nlc_v = data.neighbor_label_counts(v)
        for label, needed in query.neighbor_label_counts(u).items():
            if nlc_v.get(label, 0) < needed:
                stats.removed_by_nlc += 1
                return False
    return True


def _expand_tree_edge(
    ceci: CECI,
    u: int,
    stats: MatchStats,
    config: FilterConfig,
) -> None:
    """One level of Algorithm 1: fill ``TE_Candidates[u]`` by expanding
    the frontier of ``u``'s tree parent.

    The inner loop runs once per (frontier vertex, neighbor) pair — the
    hottest code in index construction — so the per-``u`` invariants are
    hoisted and the uniform-label regime (the paper's unlabeled graphs)
    skips LF and collapses NLCF into DF.
    """
    tree = ceci.tree
    query, data = tree.query, ceci.data
    u_p = tree.parent[u]
    frontier = sorted(ceci.te_union(u_p))
    te_u: Dict[int, List[int]] = ceci.te[u]
    candidate_union = ceci.cand[u]
    dead_frontier: List[int] = []

    query_labels = query.labels_of(u)
    uniform = data.uniform_label()
    skip_label = uniform is not None and query_labels == frozenset((uniform,))
    # Single-label regime: count_v(l) == degree(v), so NLCF == DF; an
    # enabled NLCF therefore implies the degree constraint even when the
    # explicit degree filter is ablated away.
    use_nlc = config.use_nlc_filter and not skip_label
    nlc_items = tuple(query.neighbor_label_counts(u).items()) if use_nlc else ()
    if config.use_degree_filter or (skip_label and config.use_nlc_filter):
        degree_u = query.degree(u)
    else:
        degree_u = 0

    # Direct-indexing fast path when the data graph exposes its tables
    # (a TrackedGraph does not, so metered access stays correct).
    adjacency = getattr(data, "adjacency", None)
    if adjacency is not None and skip_label:
        degrees = data.degrees
        passed = 0
        for v_f in frontier:
            neighbors = adjacency[v_f]
            matched = [v for v in neighbors if degrees[v] >= degree_u]
            stats.candidates_initial += len(neighbors)
            stats.removed_by_degree += len(neighbors) - len(matched)
            passed += len(matched)
            if matched:
                te_u[v_f] = matched
                candidate_union.update(matched)
            else:
                dead_frontier.append(v_f)
    else:
        for v_f in frontier:
            matched = []
            for v in data.neighbors(v_f):
                stats.candidates_initial += 1
                if not skip_label and not data.label_matches(query_labels, v):
                    stats.removed_by_label += 1
                    continue
                if data.degree(v) < degree_u:
                    stats.removed_by_degree += 1
                    continue
                if nlc_items:
                    nlc_v = data.neighbor_label_counts(v)
                    ok = True
                    for label, needed in nlc_items:
                        if nlc_v.get(label, 0) < needed:
                            stats.removed_by_nlc += 1
                            ok = False
                            break
                    if not ok:
                        continue
                matched.append(v)
            if matched:
                te_u[v_f] = matched  # neighbors() is sorted already
                candidate_union.update(matched)
            else:
                dead_frontier.append(v_f)

    if config.use_cascade:
        for v_f in dead_frontier:
            # Lines 9-12: v_f cannot match u_p; drop it from u_p's
            # candidates and from the TE maps of all of u_p's children.
            stats.removed_by_cascade += 1
            ceci.remove_candidate(u_p, v_f)


def _expand_non_tree_edge(ceci: CECI, u_n: int, u: int) -> None:
    """Build ``NTE_Candidates[u][u_n]``.

    The frontier is the candidate set of the NTE parent ``u_n``.  A
    neighbor qualifies when it already survived TE filtering as a
    candidate of ``u`` — re-running LF/DF/NLCF would be redundant because
    candidate membership subsumes those checks.  Frontier vertices with an
    empty entry are dropped from ``u_n``'s candidates: they can never
    close the non-tree edge (the paper prunes the analogous ``v_8`` /
    ``v_9`` entries in Figure 3).
    """
    data = ceci.data
    target_candidates = ceci.te_union(u)
    group: Dict[int, List[int]] = {}
    dead: List[int] = []
    for v_n in sorted(ceci.frontier_union(u_n)):
        matched = [v for v in data.neighbors(v_n) if v in target_candidates]
        if matched:
            group[v_n] = matched
        else:
            dead.append(v_n)
    ceci.nte[u][u_n] = group
    for v_n in dead:
        ceci.remove_candidate(u_n, v_n)
