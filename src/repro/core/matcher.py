"""High-level CECI matching API.

:class:`CECIMatcher` wires the whole pipeline together — root selection,
query tree, Algorithm 1 filtering, Algorithm 2 refinement, symmetry
breaking, and set-intersection enumeration — and exposes ablation
switches for every design choice the paper evaluates.  The module-level
:func:`match`, :func:`count_embeddings` and :func:`find_embedding` are
the one-line entry points used throughout the examples.
"""

from __future__ import annotations

import time
from typing import Iterator, List, Optional, Sequence

from ..graph import Graph
from ..kernels import DEFAULT_CACHE_SIZE, KERNEL_CHOICES
from ..observability.progress import ProgressReporter
from ..observability.tracer import NULL_TRACER
from ..resilience.budget import (
    Budget,
    BudgetExhausted,
    BudgetTracker,
    PartialResult,
)
from .automorphism import SymmetryBreaker
from .ceci import CECI
from .clusters import WorkUnit, clusters_of, decompose_extreme_clusters
from .enumeration import ENGINE_CHOICES, Embedding, Enumerator
from .filtering import FilterConfig, build_ceci
from .matching_order import make_order
from .query_tree import QueryTree
from .refinement import refine_ceci
from .root_selection import initial_candidates, select_root
from .stats import MatchStats
from .store import STORE_CHOICES, CECIStore

__all__ = ["CECIMatcher", "match", "count_embeddings", "find_embedding"]


class CECIMatcher:
    """One query/data pair, matched the CECI way.

    Parameters mirror the paper's design space:

    * ``order_strategy`` — ``"bfs"`` (default), ``"edge_ranked"`` or
      ``"path_ranked"`` (Section 2.2);
    * ``break_automorphisms`` — NEC groups + ordering rules (Section 2.2);
    * ``use_degree_filter`` / ``use_nlc_filter`` / ``use_cascade`` —
      Algorithm 1 filters;
    * ``use_refinement`` — Algorithm 2 (off = only BFS filtering);
    * ``use_intersection`` — Section 4 intersection-based enumeration
      (off = per-edge verification);
    * ``kernel`` — intersection kernel (``"auto"`` adaptive dispatch,
      or force ``"merge"`` / ``"gallop"`` / ``"bitset"``);
    * ``cache_size`` — TE∩NTE memo-cache entry bound (``0`` disables);
    * ``store`` — runtime index representation: ``"compact"``
      (default) freezes the refined index into flat int64 arrays
      (:class:`~repro.core.store.CompactCECI`, the paper's compact
      layout — DESIGN.md §8); ``"dict"`` keeps the mutable builder;
    * ``engine`` — enumeration engine: ``"auto"`` (default) expands
      whole frontiers as numpy batches on the compact store
      (set-at-a-time joins — DESIGN.md §12) and falls back to the
      per-embedding recursion elsewhere; ``"recursive"`` forces the
      recursion; ``"batch"`` forces the vectorised engine (requires
      ``store="compact"`` and ``use_intersection=True``);
    * ``budget`` — optional :class:`~repro.resilience.budget.Budget`
      capping the run (deadline / calls / embeddings / memory); use
      :meth:`run` to get the explicit ``truncated`` flag;
    * ``tracer`` — optional
      :class:`~repro.observability.tracer.Tracer`; every phase and
      per-cluster span of the run lands in its JSONL stream (the
      default :data:`~repro.observability.tracer.NULL_TRACER` makes
      this free);
    * ``progress`` — optional
      :class:`~repro.observability.progress.ProgressReporter`
      heartbeat for long enumerations (the matcher fills in its
      cardinality-bound ETA estimate and budget tracker).
    """

    def __init__(
        self,
        query: Graph,
        data: Graph,
        order_strategy: str = "bfs",
        break_automorphisms: bool = True,
        use_degree_filter: bool = True,
        use_nlc_filter: bool = True,
        use_cascade: bool = True,
        use_refinement: bool = True,
        use_intersection: bool = True,
        budget: Optional[Budget] = None,
        kernel: str = "auto",
        cache_size: int = DEFAULT_CACHE_SIZE,
        store: str = "compact",
        engine: str = "auto",
        tracer=None,
        progress: Optional[ProgressReporter] = None,
    ) -> None:
        if query.num_vertices == 0:
            raise ValueError("query graph is empty")
        if not query.is_connected():
            raise ValueError("query graph must be connected")
        if kernel not in KERNEL_CHOICES:
            raise ValueError(
                f"unknown intersection kernel {kernel!r}; "
                f"expected one of {KERNEL_CHOICES}"
            )
        if store not in STORE_CHOICES:
            raise ValueError(
                f"unknown index store {store!r}; "
                f"expected one of {STORE_CHOICES}"
            )
        if engine not in ENGINE_CHOICES:
            raise ValueError(
                f"unknown enumeration engine {engine!r}; "
                f"expected one of {ENGINE_CHOICES}"
            )
        if engine == "batch" and (store != "compact" or not use_intersection):
            raise ValueError(
                "engine='batch' requires store='compact' and "
                "use_intersection=True"
            )
        self.query = query
        self.data = data
        self.order_strategy = order_strategy
        self.use_refinement = use_refinement
        self.use_intersection = use_intersection
        self.kernel = kernel
        self.cache_size = cache_size
        self.store = store
        self.engine = engine
        self.filter_config = FilterConfig(
            use_degree_filter=use_degree_filter,
            use_nlc_filter=use_nlc_filter,
            use_cascade=use_cascade,
        )
        self.stats = MatchStats()
        self.symmetry = SymmetryBreaker(query, enabled=break_automorphisms)
        self.budget = budget
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.progress = progress
        self._ceci: Optional[CECIStore] = None
        self._tree: Optional[QueryTree] = None
        #: Plan facts recorded during :meth:`build` for telemetry:
        #: the chosen root's selection score (|initial candidates| /
        #: degree) and the per-vertex initial candidate counts the root
        #: cost function scanned.  ``None``/empty until built.
        self.root_score: Optional[float] = None
        self.initial_candidate_counts: List[int] = []

    # ------------------------------------------------------------------
    # Pipeline
    # ------------------------------------------------------------------
    def build(self) -> CECIStore:
        """Run preprocessing, filtering and refinement; cached.  With
        ``store="compact"`` the dict builder is additionally frozen into
        a :class:`~repro.core.store.CompactCECI` (timed as the
        ``freeze`` phase) and the builder is discarded."""
        if self._ceci is not None:
            return self._ceci
        started = time.perf_counter()
        # One LDF/NLC scan per query vertex serves both the root cost
        # function and the ranked matching orders.
        candidate_counts: List[int] = []
        root = -1
        pivots: List[int] = []
        best_cost = float("inf")
        for u in self.query.vertices():
            candidates = initial_candidates(self.query, self.data, u, self.stats)
            candidate_counts.append(len(candidates))
            cost = len(candidates) / (self.query.degree(u) or 1)
            if cost < best_cost:
                root, pivots, best_cost = u, candidates, cost
        order = make_order(
            self.query, root, self.order_strategy, candidate_counts
        )
        self._tree = QueryTree(self.query, root, order)
        self.root_score = best_cost
        self.initial_candidate_counts = candidate_counts
        self._record_phase("preprocess", started)

        started = time.perf_counter()
        ceci = build_ceci(
            self._tree,
            self.data,
            pivots,
            self.stats,
            self.filter_config,
            tracer=self.tracer,
        )
        self._record_phase("filter", started)

        started = time.perf_counter()
        if self.use_refinement:
            refine_ceci(ceci, self.stats, kernel=self.kernel, tracer=self.tracer)
        else:
            _assign_uniform_cardinality(ceci)
        ceci.freeze()
        self._record_phase("refine", started)

        index: CECIStore = ceci
        if self.store == "compact":
            started = time.perf_counter()
            index = ceci.compact(tracer=self.tracer)
            self._record_phase("freeze", started)
        self.stats.memory_bytes = index.memory_bytes()
        self._ceci = index
        return index

    def _record_phase(self, name: str, started: float) -> None:
        """Book one phase into the stats *and* the trace with the same
        duration float — the invariant behind ``trace summarize``
        agreeing with ``MatchStats.phase_seconds`` exactly."""
        seconds = time.perf_counter() - started
        self.stats.add_phase(name, seconds)
        if self.tracer.enabled:
            self.tracer.phase(name, started, seconds)

    @property
    def tree(self) -> QueryTree:
        """The query tree (builds on first access)."""
        self.build()
        assert self._tree is not None
        return self._tree

    def plan_facts(self) -> dict:
        """The optimizer's decisions for this query as a JSON-ready
        dict (builds on first access): root + selection score, matching
        order, per-level candidate cardinalities and the deterministic
        cardinality bound.  This is the ``plan`` object the service's
        flight recorder and slow-query explain embed."""
        from .estimate import plan_facts  # circular at module level

        facts = plan_facts(self.build(), self.query)
        facts["order_strategy"] = self.order_strategy
        if self.root_score is not None:
            facts["root_score"] = self.root_score
        if self.initial_candidate_counts:
            facts["initial_candidates"] = list(self.initial_candidate_counts)
        return facts

    def enumerator(
        self, tracker: Optional[BudgetTracker] = None
    ) -> Enumerator:
        """A fresh enumerator over the built index, sharing ``stats``.
        ``tracker`` (a pre-started budget clock) takes precedence over
        the matcher's own ``budget``."""
        return Enumerator(
            self.build(),
            symmetry=self.symmetry,
            use_intersection=self.use_intersection,
            stats=self.stats,
            budget=self.budget,
            tracker=tracker,
            kernel=self.kernel,
            cache_size=self.cache_size,
            tracer=self.tracer,
            progress=self._armed_progress(tracker),
            engine=self.engine,
        )

    def _armed_progress(
        self, tracker: Optional[BudgetTracker] = None
    ) -> Optional[ProgressReporter]:
        """The configured progress reporter with its derived fields
        filled in: the cardinality-bound ETA estimate (free once the
        index is built — :mod:`repro.core.estimate`), the budget
        tracker, and the tracer for mirrored ``progress`` instants."""
        progress = self.progress
        if progress is None:
            return None
        if progress.total_estimate is None:
            from .estimate import cardinality_bound

            progress.total_estimate = int(cardinality_bound(self))
        if progress.tracker is None and tracker is not None:
            progress.tracker = tracker
        if progress.tracer is None and self.tracer.enabled:
            progress.tracer = self.tracer
        # Arm the clock now so the final ``(done)`` line of runs shorter
        # than ``check_every`` calls still reports a real elapsed time.
        return progress.start()

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def embeddings(self, limit: Optional[int] = None) -> Iterator[Embedding]:
        """Stream embeddings; ``embedding[u]`` is the match of query
        vertex ``u``."""
        started = time.perf_counter()
        try:
            yield from self.enumerator().embeddings(limit)
        finally:
            self._record_phase("enumerate", started)
            self._finish_progress()

    def match(self, limit: Optional[int] = None) -> List[Embedding]:
        """All embeddings (or the first ``limit``) as a list (uses the
        non-generator fast path)."""
        enumerator = self.enumerator()  # builds the index if needed
        started = time.perf_counter()
        try:
            return enumerator.collect(limit)
        finally:
            self._record_phase("enumerate", started)
            self._finish_progress()

    def _finish_progress(self) -> None:
        if self.progress is not None:
            self.progress.finish()

    def count(self, limit: Optional[int] = None) -> int:
        """Embedding count (fast path; embeddings are materialized in
        bulk, then discarded)."""
        return len(self.match(limit))

    def run(self, limit: Optional[int] = None) -> PartialResult:
        """Match under the configured ``budget`` and say so explicitly.

        The budget clock starts *before* index construction, so a
        deadline covers filtering and refinement too; a run that cannot
        finish returns the embeddings found so far with
        ``truncated=True`` and ``stop_reason`` naming the axis —
        it never hangs and never raises for running out of budget.
        """
        tracker: Optional[BudgetTracker] = None
        if self.budget is not None and not self.budget.unlimited:
            tracker = self.budget.tracker().start()
        try:
            self.build()
            if tracker is not None:
                tracker.check_deadline()
        except BudgetExhausted as stop:
            self.stats.budget_stops += 1
            return PartialResult(
                [],
                truncated=True,
                exhausted=False,
                stop_reason=stop.reason,
                stats=self.stats,
            )
        enumerator = self.enumerator(tracker=tracker)
        started = time.perf_counter()
        try:
            embeddings = enumerator.collect(limit)
        finally:
            self._record_phase("enumerate", started)
            self._finish_progress()
        truncated = enumerator.truncated
        exhausted = not truncated and (
            limit is None or len(embeddings) < limit
        )
        return PartialResult(
            embeddings,
            truncated=truncated,
            exhausted=exhausted,
            stop_reason=enumerator.stop_reason if truncated else None,
            stats=self.stats,
        )

    # ------------------------------------------------------------------
    # Parallel work
    # ------------------------------------------------------------------
    def work_units(
        self,
        worker_count: int = 1,
        beta: Optional[float] = 0.2,
    ) -> List[WorkUnit]:
        """The schedulable work pool.

        ``beta=None`` returns intact clusters (ST/CGD granularity);
        otherwise ExtremeClusters are decomposed per Algorithm 3 (FGD).
        """
        ceci = self.build()
        if beta is None:
            return clusters_of(ceci)
        return decompose_extreme_clusters(
            ceci, worker_count, beta, self.symmetry
        )

    def embeddings_of_unit(
        self, unit: WorkUnit, limit: Optional[int] = None
    ) -> List[Embedding]:
        """Embeddings of one work unit (used by the schedulers)."""
        return list(self.enumerator().embeddings_from_unit(unit.prefix, limit))


def _assign_uniform_cardinality(ceci: CECI) -> None:
    """Without refinement there are no true cardinalities; weight every
    cluster by its pivot's TE fanout product so the schedulers still have
    a (crude) workload signal."""
    tree = ceci.tree
    for u in tree.order:
        for v in ceci.cand[u]:
            ceci.cardinality[u][v] = 1
    root_children = tree.children[tree.root]
    for pivot in ceci.pivots:
        weight = 1
        for u_c in root_children:
            weight *= max(len(ceci.te[u_c].get(pivot, ())), 1)
        ceci.cardinality[tree.root][pivot] = weight


def match(
    query: Graph, data: Graph, limit: Optional[int] = None, **options
) -> List[Embedding]:
    """Find (up to ``limit``) embeddings of ``query`` in ``data``."""
    return CECIMatcher(query, data, **options).match(limit)


def count_embeddings(
    query: Graph, data: Graph, limit: Optional[int] = None, **options
) -> int:
    """Count (up to ``limit``) embeddings of ``query`` in ``data``."""
    return CECIMatcher(query, data, **options).count(limit)


def find_embedding(query: Graph, data: Graph, **options) -> Optional[Embedding]:
    """First embedding or ``None`` — the containment-search primitive."""
    found = match(query, data, limit=1, **options)
    return found[0] if found else None
