"""CECI index persistence.

Section 6.4: "For larger graphs whose CECI does not fit inside memory,
we plan to store it in non-volatile memory [30]."  This module is that
feature's laptop-scale counterpart: a compact binary serialization of a
built (filtered + refined) CECI, so an index can be constructed once and
re-enumerated many times — across processes — without paying
construction again.  The format stores, per query vertex, the TE and NTE
key/value lists and the cardinality table, plus the query tree needed to
re-attach the index.

The on-disk layout is a small header followed by numpy ``.npy`` blocks
(varint-free, mmap-friendly), mirroring how an NVM-resident CECI would
be laid out as flat arrays.
"""

from __future__ import annotations

import io
import json
from typing import BinaryIO, Dict, List

import numpy as np

from ..graph import Graph
from .ceci import CECI
from .query_tree import QueryTree

__all__ = ["save_ceci", "load_ceci", "dump_ceci_bytes", "load_ceci_bytes"]

_MAGIC = b"CECIIDX2"


def _encode_pairs(mapping: Dict[int, List[int]]) -> List[np.ndarray]:
    """Flatten ``{key: [values]}`` into (keys, offsets, values) arrays."""
    keys = np.fromiter(sorted(mapping), dtype=np.int64, count=len(mapping))
    offsets = np.zeros(len(keys) + 1, dtype=np.int64)
    chunks: List[np.ndarray] = []
    for i, key in enumerate(keys):
        values = mapping[int(key)]
        offsets[i + 1] = offsets[i] + len(values)
        chunks.append(np.asarray(values, dtype=np.int64))
    values = (
        np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
    )
    return [keys, offsets, values]


def _decode_pairs(keys: np.ndarray, offsets: np.ndarray, values: np.ndarray) -> Dict[int, List[int]]:
    out: Dict[int, List[int]] = {}
    for i, key in enumerate(keys):
        start, end = int(offsets[i]), int(offsets[i + 1])
        out[int(key)] = [int(v) for v in values[start:end]]
    return out


def dump_ceci_bytes(ceci: CECI) -> bytes:
    """Serialize a built CECI to bytes."""
    tree = ceci.tree
    header = {
        "query_vertices": tree.query.num_vertices,
        "query_edges": [list(edge) for edge in tree.query.edges],
        "query_labels": [
            sorted(map(repr, tree.query.labels_of(u)))
            for u in tree.query.vertices()
        ],
        "root": tree.root,
        "order": list(tree.order),
        "pivots": list(ceci.pivots),
        "nte_groups": [
            sorted(ceci.nte[u]) for u in range(tree.query.num_vertices)
        ],
    }
    buf = io.BytesIO()
    buf.write(_MAGIC)
    payload = json.dumps(header).encode("utf-8")
    buf.write(len(payload).to_bytes(8, "little"))
    buf.write(payload)

    arrays: List[np.ndarray] = []
    for u in range(tree.query.num_vertices):
        arrays.extend(_encode_pairs(ceci.te[u]))
        for u_n in sorted(ceci.nte[u]):
            arrays.extend(_encode_pairs(ceci.nte[u][u_n]))
        arrays.extend(_encode_pairs(
            {v: [c] for v, c in ceci.cardinality[u].items()}
        ))
    for array in arrays:
        np.save(buf, array, allow_pickle=False)
    return buf.getvalue()


def load_ceci_bytes(blob: bytes, data: Graph) -> CECI:
    """Reconstruct a CECI against the (identical) data graph."""
    buf = io.BytesIO(blob)
    if buf.read(len(_MAGIC)) != _MAGIC:
        raise ValueError("not a CECI index blob")
    size = int.from_bytes(buf.read(8), "little")
    header = json.loads(buf.read(size).decode("utf-8"))

    query = Graph(
        header["query_vertices"],
        [tuple(edge) for edge in header["query_edges"]],
        [frozenset(_parse(label) for label in labels)
         for labels in header["query_labels"]],
    )
    tree = QueryTree(query, header["root"], header["order"])
    ceci = CECI(tree, data)
    ceci.pivots = list(header["pivots"])

    def read_pairs() -> Dict[int, List[int]]:
        keys = np.load(buf, allow_pickle=False)
        offsets = np.load(buf, allow_pickle=False)
        values = np.load(buf, allow_pickle=False)
        return _decode_pairs(keys, offsets, values)

    for u in range(query.num_vertices):
        ceci.te[u] = read_pairs()
        for u_n in header["nte_groups"][u]:
            ceci.nte[u][u_n] = read_pairs()
        ceci.cardinality[u] = {
            v: values[0] for v, values in read_pairs().items()
        }
        ceci.cand[u] = ceci.te_union(u)
    ceci.freeze()
    return ceci


def _parse(token: str) -> object:
    try:
        return int(token)
    except ValueError:
        if token.startswith(("'", '"')) and token.endswith(("'", '"')):
            return token[1:-1]
        return token


def save_ceci(ceci: CECI, path: str) -> None:
    """Write a built CECI to ``path``."""
    with open(path, "wb") as handle:
        handle.write(dump_ceci_bytes(ceci))


def load_ceci(path: str, data: Graph) -> CECI:
    """Load a CECI from ``path`` against the identical data graph."""
    with open(path, "rb") as handle:
        return load_ceci_bytes(handle.read(), data)
