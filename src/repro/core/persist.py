"""CECI index persistence.

Section 6.4: "For larger graphs whose CECI does not fit inside memory,
we plan to store it in non-volatile memory [30]."  This module is that
feature's laptop-scale counterpart: a compact binary serialization of a
built (filtered + refined) CECI, so an index can be constructed once and
re-enumerated many times — across processes — without paying
construction again.

Two formats share one file extension:

* ``CECIIDX3`` (current) — a JSON header followed by the
  :class:`~repro.core.store.CompactCECI` arrays as raw ``.npy`` blocks,
  in a fixed deterministic order.  Because the in-memory compact store
  and the on-disk layout are the *same* flat ``(keys, offsets,
  values)`` triples, dumping is a straight array write and
  :func:`load_ceci` rebuilds the store by ``np.memmap``-ing each block
  in place — **no dict reconstruction, no value boxing**; candidate
  lookups on a loaded index are served from the mapped file.
* ``CECIIDX2`` (legacy) — the same arrays decoded back into the dict
  builder; kept so previously written indexes stay loadable and for
  the ``--store dict`` pipeline.

**Integrity.**  Since minor version 3.1 the v3 header carries a CRC32
per array block (``"block_crc32"``; CRC32C/xxhash would be preferable
but need non-stdlib deps, and zlib's CRC32 catches the same bit-flip
class).  Loads verify every block *before* any array is materialised
or memory-mapped, so a corrupted file — torn write, bit rot, truncation
— raises :class:`ChecksumError` instead of serving garbage candidates.
Files written before 3.1 have no checksums and still load; the result
is marked ``checksum_verified = False`` so callers (the service spill
tier) can decide whether to trust them.
"""

from __future__ import annotations

import io
import json
import os
import zlib
from typing import BinaryIO, Dict, List, Optional, Tuple, Union

import numpy as np

from ..graph import Graph
from .ceci import CECI
from .query_tree import QueryTree
from .store import CompactCECI, PairArrays, encode_pairs

__all__ = [
    "ChecksumError",
    "save_ceci",
    "load_ceci",
    "publish_ceci",
    "publish_bytes",
    "dump_ceci_bytes",
    "load_ceci_bytes",
    "dump_store_bytes",
    "load_store_bytes",
]

_MAGIC = b"CECIIDX2"  # legacy dict-builder blobs
_MAGIC_V3 = b"CECIIDX3"  # compact-store format (current)


class ChecksumError(ValueError):
    """A stored array block does not match its recorded checksum —
    the file is corrupt and must not be served from."""

_encode_pairs = encode_pairs  # shared with the compact store


def _decode_pairs(keys: np.ndarray, offsets: np.ndarray, values: np.ndarray) -> Dict[int, List[int]]:
    out: Dict[int, List[int]] = {}
    for i, key in enumerate(keys):
        start, end = int(offsets[i]), int(offsets[i + 1])
        out[int(key)] = [int(v) for v in values[start:end]]
    return out


def _header_of(index: Union[CECI, CompactCECI]) -> Dict[str, object]:
    """The JSON header both formats share: enough to rebuild the query
    graph and tree, plus the NTE group keys that fix the array order."""
    tree = index.tree
    return {
        "query_vertices": tree.query.num_vertices,
        "query_edges": [list(edge) for edge in tree.query.edges],
        "query_labels": [
            sorted(map(repr, tree.query.labels_of(u)))
            for u in tree.query.vertices()
        ],
        "root": tree.root,
        "order": list(tree.order),
        "nte_built": index.nte_built,
        "nte_groups": [
            sorted(int(u_n) for u_n in index.nte[u])
            for u in range(tree.query.num_vertices)
        ],
    }


def _rebuild_tree(header: Dict[str, object]) -> QueryTree:
    query = Graph(
        header["query_vertices"],
        [tuple(edge) for edge in header["query_edges"]],
        [frozenset(_parse(label) for label in labels)
         for labels in header["query_labels"]],
    )
    return QueryTree(query, header["root"], header["order"])


def _write_header(buf: BinaryIO, magic: bytes, header: Dict[str, object]) -> None:
    buf.write(magic)
    payload = json.dumps(header).encode("utf-8")
    buf.write(len(payload).to_bytes(8, "little"))
    buf.write(payload)


def _read_header(buf: BinaryIO) -> Dict[str, object]:
    size = int.from_bytes(buf.read(8), "little")
    return json.loads(buf.read(size).decode("utf-8"))


# ----------------------------------------------------------------------
# Legacy dict-builder format (CECIIDX2)
# ----------------------------------------------------------------------
def dump_ceci_bytes(ceci: CECI) -> bytes:
    """Serialize a built dict-builder CECI to bytes (legacy format)."""
    if isinstance(ceci, CompactCECI):
        raise TypeError(
            "dump_ceci_bytes writes the legacy dict-builder format; "
            "use dump_store_bytes (or save_ceci) for a CompactCECI"
        )
    tree = ceci.tree
    header = _header_of(ceci)
    header["pivots"] = [int(p) for p in ceci.pivots]
    buf = io.BytesIO()
    _write_header(buf, _MAGIC, header)

    arrays: List[np.ndarray] = []
    for u in range(tree.query.num_vertices):
        arrays.extend(_encode_pairs(ceci.te[u]))
        for u_n in sorted(ceci.nte[u]):
            arrays.extend(_encode_pairs(ceci.nte[u][u_n]))
        arrays.extend(_encode_pairs(
            {v: [c] for v, c in ceci.cardinality[u].items()}
        ))
    for array in arrays:
        np.save(buf, array, allow_pickle=False)
    return buf.getvalue()


def load_ceci_bytes(blob: bytes, data: Graph) -> CECI:
    """Reconstruct a dict-builder CECI from a legacy blob."""
    buf = io.BytesIO(blob)
    if buf.read(len(_MAGIC)) != _MAGIC:
        raise ValueError("not a CECI index blob")
    header = _read_header(buf)
    tree = _rebuild_tree(header)
    query = tree.query
    ceci = CECI(tree, data)
    ceci.pivots = list(header["pivots"])
    ceci.nte_built = bool(header.get("nte_built", True))

    def read_pairs() -> Dict[int, List[int]]:
        keys = np.load(buf, allow_pickle=False)
        offsets = np.load(buf, allow_pickle=False)
        values = np.load(buf, allow_pickle=False)
        return _decode_pairs(keys, offsets, values)

    for u in range(query.num_vertices):
        ceci.te[u] = read_pairs()
        for u_n in header["nte_groups"][u]:
            ceci.nte[u][u_n] = read_pairs()
        ceci.cardinality[u] = {
            v: values[0] for v, values in read_pairs().items()
        }
        ceci.cand[u] = ceci.te_union(u)
    ceci.freeze()
    return ceci


# ----------------------------------------------------------------------
# Compact-store format (CECIIDX3)
# ----------------------------------------------------------------------
def dump_store_bytes(index: Union[CECI, CompactCECI]) -> bytes:
    """Serialize a compact store (a dict builder is frozen first).

    The array order is fixed: pivots, then per query vertex the TE
    triple, each NTE group triple (group keys ascending, recorded in
    the header), and the cardinality ``(keys, values)`` pair.  Each
    block's CRC32 lands in the header (``"block_crc32"``) so loads can
    verify integrity before touching any array.
    """
    store = index if isinstance(index, CompactCECI) else index.compact()
    tree = store.tree

    def encode(array: np.ndarray) -> bytes:
        block = io.BytesIO()
        np.save(block, array, allow_pickle=False)
        return block.getvalue()

    blocks: List[bytes] = [encode(store.pivots)]
    for u in range(tree.query.num_vertices):
        for array in store.te[u]:
            blocks.append(encode(array))
        for u_n in sorted(store.nte[u]):
            for array in store.nte[u][u_n]:
                blocks.append(encode(array))
        for array in store.card[u]:
            blocks.append(encode(array))

    header = _header_of(store)
    header["checksum"] = "crc32"
    header["block_bytes"] = [len(block) for block in blocks]
    header["block_crc32"] = [
        zlib.crc32(block) & 0xFFFFFFFF for block in blocks
    ]
    buf = io.BytesIO()
    _write_header(buf, _MAGIC_V3, header)
    for block in blocks:
        buf.write(block)
    return buf.getvalue()


def _read_block(
    handle: BinaryIO,
    path: str,
    mmap: bool,
    expected: Optional[Tuple[int, int]] = None,
) -> np.ndarray:
    """One ``.npy`` block, either loaded or mapped in place.

    ``expected`` is the header-recorded ``(length, crc32)`` of the
    block; when given, the raw bytes are read and CRC-verified *before*
    any npy parsing happens — a corrupt block (even one whose npy
    header is mangled) raises :class:`ChecksumError` and is never
    loaded or mapped.  The mmap path parses only the npy header,
    creates a read-only ``np.memmap`` view at the data offset and seeks
    past the block — the candidate payload never enters the Python
    heap.
    """
    start = handle.tell()
    if expected is not None:
        length, expected_crc = int(expected[0]), int(expected[1])
        raw = handle.read(length)
        if len(raw) != length:
            raise ChecksumError(
                f"truncated array block at byte {start} "
                f"(wanted {length} bytes, file has {len(raw)})"
            )
        actual = zlib.crc32(raw) & 0xFFFFFFFF
        if actual != expected_crc:
            raise ChecksumError(
                f"array block at byte {start} fails CRC32 "
                f"(stored {expected_crc:#010x}, computed {actual:#010x})"
            )
        handle.seek(start)
    if not mmap:
        return np.load(handle, allow_pickle=False)
    version = np.lib.format.read_magic(handle)
    if version == (1, 0):
        shape, _fortran, dtype = np.lib.format.read_array_header_1_0(handle)
    elif version == (2, 0):
        shape, _fortran, dtype = np.lib.format.read_array_header_2_0(handle)
    else:  # pragma: no cover - numpy only writes 1.0/2.0 today
        raise ValueError(f"unsupported npy format version {version}")
    offset = handle.tell()
    count = 1
    for dim in shape:
        count *= int(dim)
    handle.seek(offset + count * dtype.itemsize)
    if count == 0:
        # Zero-length arrays cannot be mapped (mmap forbids empty
        # ranges); an empty in-heap array is observationally identical.
        return np.empty(shape, dtype=dtype)
    return np.memmap(path, dtype=dtype, mode="r", offset=offset, shape=shape)


def _load_store(
    handle: BinaryIO, data: Graph, path: str, mmap: bool, verify: bool = True
) -> CompactCECI:
    """Rebuild a :class:`CompactCECI` from a v3 stream positioned just
    after the magic — straight into arrays, never through dicts.

    With ``verify`` (the default) every block is CRC-checked against
    the header's ``block_crc32`` table before it is loaded or mapped;
    pre-3.1 files have no table, load unverified, and come back with
    ``checksum_verified = False``.
    """
    header = _read_header(handle)
    tree = _rebuild_tree(header)
    n = tree.query.num_vertices
    checksums = None
    if verify and "block_crc32" in header and "block_bytes" in header:
        checksums = list(zip(header["block_bytes"], header["block_crc32"]))
    cursor = iter(checksums) if checksums is not None else None

    def block() -> np.ndarray:
        expected = None
        if cursor is not None:
            expected = next(cursor, None)
            if expected is None:
                raise ChecksumError(
                    "checksum table shorter than the block stream"
                )
        return _read_block(handle, path, mmap, expected=expected)

    pivots = block()
    te: List[PairArrays] = []
    nte: List[Dict[int, PairArrays]] = []
    card: List[Tuple[np.ndarray, np.ndarray]] = []
    for u in range(n):
        te.append((block(), block(), block()))
        groups: Dict[int, PairArrays] = {}
        for u_n in header["nte_groups"][u]:
            groups[int(u_n)] = (block(), block(), block())
        nte.append(groups)
        card.append((block(), block()))
    store = CompactCECI(
        tree, data, pivots, te, nte, card,
        nte_built=bool(header.get("nte_built", True)),
    )
    store.checksum_verified = checksums is not None
    return store


def load_store_bytes(
    blob: bytes, data: Graph, verify: bool = True
) -> CompactCECI:
    """Reconstruct a compact store from v3 bytes (no dict round-trip).
    ``verify`` CRC-checks every block when the blob carries checksums;
    a corrupt block raises :class:`ChecksumError`."""
    buf = io.BytesIO(blob)
    if buf.read(len(_MAGIC_V3)) != _MAGIC_V3:
        raise ValueError("not a compact CECI store blob")
    return _load_store(buf, data, "<bytes>", mmap=False, verify=verify)


def _parse(token: str) -> object:
    try:
        return int(token)
    except ValueError:
        if token.startswith(("'", '"')) and token.endswith(("'", '"')):
            return token[1:-1]
        return token


# ----------------------------------------------------------------------
# File entry points (format auto-detected on load)
# ----------------------------------------------------------------------
def save_ceci(index: Union[CECI, CompactCECI], path: str) -> None:
    """Write a built index to ``path``: compact stores (and anything
    the matcher's default pipeline produces) in the v3 array format,
    dict builders in the legacy format."""
    if isinstance(index, CompactCECI):
        blob = dump_store_bytes(index)
    else:
        blob = dump_ceci_bytes(index)
    publish_bytes(blob, path)


def publish_bytes(blob: bytes, path: str) -> int:
    """Atomically publish ``blob`` at ``path`` (write-to-temp, fsync,
    rename): readers — including other processes about to ``np.memmap``
    the file — observe either the previous file or the complete new
    one, never a torn intermediate.  Returns the byte count."""
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as handle:
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return len(blob)


def publish_ceci(index: Union[CECI, CompactCECI], path: str) -> int:
    """Atomically publish a built index at ``path`` in the v3 format —
    the shared-mmap publication path of the sharded service tier: one
    process freezes and publishes, N processes
    :func:`load_ceci`\\ (…, ``mmap=True``) the same checksummed file and
    share its pages through the OS page cache.  Returns the byte count
    written."""
    store = index if isinstance(index, CompactCECI) else index.compact()
    return publish_bytes(dump_store_bytes(store), path)


def load_ceci(
    path: str, data: Graph, mmap: bool = True, verify: bool = True
) -> Union[CECI, CompactCECI]:
    """Load an index from ``path`` against the identical data graph.

    v3 files come back as a :class:`CompactCECI` whose arrays are
    ``np.memmap`` views into the file (pass ``mmap=False`` to read them
    into RAM instead); legacy files come back as the dict builder.
    ``verify`` CRC-checks checksummed v3 files block-by-block *before*
    anything is mapped; corruption raises :class:`ChecksumError`.
    """
    with open(path, "rb") as handle:
        magic = handle.read(len(_MAGIC_V3))
        if magic == _MAGIC_V3:
            return _load_store(handle, data, path, mmap=mmap, verify=verify)
        if magic == _MAGIC:
            handle.seek(0)
            return load_ceci_bytes(handle.read(), data)
    raise ValueError(f"{path}: not a CECI index file")
