"""Matching (visit) orders over the BFS query tree (Section 2.2).

The CECI techniques "can easily adopt other matching orders without the
need for a major modification"; any order where each vertex follows its
BFS-tree parent is valid.  Three orders are provided:

* :func:`bfs_order` — the paper's default (plain level order);
* :func:`edge_ranked_order` — the GpSM-style edge-ranked order [53]: greedy
  expansion along the cheapest frontier edge, cost = candidate-count ratio;
* :func:`path_ranked_order` — the TurboIso-style path-ranked order [17]:
  root-to-leaf tree paths sorted by estimated candidate-path frequency,
  cheapest path first.

Both ranked orders need candidate-set sizes; callers pass the per-vertex
candidate counts computed during root selection.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Sequence, Tuple

from ..graph import Graph

__all__ = ["bfs_order", "edge_ranked_order", "path_ranked_order", "make_order"]


def _bfs_parents(query: Graph, root: int) -> List[int]:
    parent = [-1] * query.num_vertices
    seen = {root}
    queue = deque([root])
    while queue:
        u = queue.popleft()
        for w in query.neighbors(u):
            if w not in seen:
                seen.add(w)
                parent[w] = u
                queue.append(w)
    return parent


def bfs_order(query: Graph, root: int) -> Tuple[int, ...]:
    """Plain BFS level order with ascending-id tie-breaks."""
    order: List[int] = []
    seen = {root}
    queue = deque([root])
    while queue:
        u = queue.popleft()
        order.append(u)
        for w in query.neighbors(u):
            if w not in seen:
                seen.add(w)
                queue.append(w)
    if len(order) != query.num_vertices:
        raise ValueError("query graph is not connected")
    return tuple(order)


def edge_ranked_order(
    query: Graph,
    root: int,
    candidate_counts: Sequence[int],
) -> Tuple[int, ...]:
    """Greedy selective-first order.

    Starting from the root, repeatedly pick the unvisited vertex adjacent
    to the visited set with the smallest
    ``candidate_count(u) / connections-to-visited`` score — fewer
    candidates and more constraining edges first.  The BFS-tree-parent
    constraint is enforced so the order stays CECI-compatible.
    """
    parent = _bfs_parents(query, root)
    order = [root]
    visited = {root}
    while len(order) < query.num_vertices:
        best_u = -1
        best_score = float("inf")
        for u in query.vertices():
            if u in visited or parent[u] not in visited:
                continue
            connections = sum(1 for w in query.neighbors(u) if w in visited)
            if connections == 0:
                continue
            score = (candidate_counts[u] + 1) / connections
            if score < best_score or (score == best_score and u < best_u):
                best_u = u
                best_score = score
        if best_u < 0:
            raise ValueError("query graph is not connected")
        order.append(best_u)
        visited.add(best_u)
    return tuple(order)


def path_ranked_order(
    query: Graph,
    root: int,
    candidate_counts: Sequence[int],
) -> Tuple[int, ...]:
    """TurboIso-style path ordering.

    Each root-to-leaf path of the BFS tree gets a score equal to the
    product of its vertices' candidate counts (an upper bound on candidate
    paths); paths are emitted cheapest first, skipping already-ordered
    vertices.  Tree-parent precedence holds because each path is emitted
    root-first.
    """
    parent = _bfs_parents(query, root)
    children: List[List[int]] = [[] for _ in range(query.num_vertices)]
    for u in query.vertices():
        if parent[u] >= 0:
            children[parent[u]].append(u)

    paths: List[Tuple[float, List[int]]] = []

    def walk(u: int, path: List[int], score: float) -> None:
        path = path + [u]
        score = score * max(candidate_counts[u], 1)
        if not children[u]:
            paths.append((score, path))
            return
        for c in children[u]:
            walk(c, path, score)

    walk(root, [], 1.0)
    paths.sort(key=lambda item: (item[0], item[1]))
    order: List[int] = []
    emitted = set()
    for _score, path in paths:
        for u in path:
            if u not in emitted:
                emitted.add(u)
                order.append(u)
    return tuple(order)


def make_order(
    query: Graph,
    root: int,
    strategy: str = "bfs",
    candidate_counts: Sequence[int] | None = None,
) -> Tuple[int, ...]:
    """Dispatch by strategy name: ``bfs``, ``edge_ranked``, ``path_ranked``."""
    if strategy == "bfs":
        return bfs_order(query, root)
    if candidate_counts is None:
        raise ValueError(f"strategy {strategy!r} needs candidate_counts")
    if strategy == "edge_ranked":
        return edge_ranked_order(query, root, candidate_counts)
    if strategy == "path_ranked":
        return path_ranked_order(query, root, candidate_counts)
    raise ValueError(f"unknown matching-order strategy {strategy!r}")
