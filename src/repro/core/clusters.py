"""Embedding clusters and ExtremeCluster decomposition — Sections 4.2/4.3.

An *embedding cluster* is the set of embeddings sharing one pivot (the
data vertex matched to the root query vertex).  Clusters are the parallel
work units.  Because real graphs are power-law, a few clusters can
dominate the total work; the refinement cardinality of the pair
``(u_s, v_s)`` estimates each cluster's workload ahead of time, and
clusters whose cardinality exceeds ``beta x cardinality_exp``
(``cardinality_exp`` = expected workload per worker) are flagged
**ExtremeClusters** and recursively split along the next query vertex of
the matching order (Algorithm 3).

A work unit is represented by its partial-embedding *prefix* along the
matching order — a bare pivot for an intact cluster, longer for
sub-clusters.  Enumerating every work unit's embeddings yields exactly
the full embedding set, partitioned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..kernels import intersect
from .automorphism import SymmetryBreaker
from .store import CECIStore

__all__ = ["WorkUnit", "clusters_of", "decompose_extreme_clusters"]


@dataclass(frozen=True)
class WorkUnit:
    """One schedulable unit: a matching-order prefix plus its estimated
    workload (cardinality share)."""

    prefix: Tuple[int, ...]
    workload: float

    @property
    def pivot(self) -> int:
        """The cluster pivot this unit descends from."""
        return self.prefix[0]

    @property
    def depth(self) -> int:
        """Prefix length (1 = intact cluster)."""
        return len(self.prefix)


def clusters_of(ceci: CECIStore) -> List[WorkUnit]:
    """The intact embedding clusters: one unit per pivot, workload =
    ``cardinality(u_s, v_s)``, sorted largest first (the paper sorts the
    work pool by cardinality so big clusters start early)."""
    units = [
        WorkUnit((int(pivot),), float(ceci.cluster_cardinality(pivot)))
        for pivot in ceci.pivots
    ]
    units.sort(key=lambda unit: (-unit.workload, unit.prefix))
    return units


def decompose_extreme_clusters(
    ceci: CECIStore,
    worker_count: int,
    beta: float = 0.2,
    symmetry: Optional[SymmetryBreaker] = None,
) -> List[WorkUnit]:
    """Algorithm 3: split every ExtremeCluster until all units fall under
    ``beta x cardinality_exp``.

    ``symmetry`` lets the splitter skip prefixes that the ordering rules
    would reject anyway, so no dead units are scheduled.  Units are
    returned sorted by workload, largest first.
    """
    if worker_count < 1:
        raise ValueError("worker_count must be >= 1")
    if beta <= 0:
        raise ValueError("beta must be positive")
    symmetry = symmetry or SymmetryBreaker(ceci.tree.query, enabled=False)
    total = float(
        sum(ceci.cluster_cardinality(pivot) for pivot in ceci.pivots)
    )
    if total == 0.0:
        return []
    threshold = beta * (total / worker_count)
    units: List[WorkUnit] = []
    for pivot in ceci.pivots:
        pivot = int(pivot)
        workload = float(ceci.cluster_cardinality(pivot))
        if workload <= 0.0:
            continue
        if workload <= threshold:
            units.append(WorkUnit((pivot,), workload))
        else:
            _split(ceci, (pivot,), workload, threshold, symmetry, units)
    units.sort(key=lambda unit: (-unit.workload, unit.prefix))
    return units


def _split(
    ceci: CECIStore,
    prefix: Tuple[int, ...],
    workload: float,
    threshold: float,
    symmetry: SymmetryBreaker,
    units: List[WorkUnit],
) -> None:
    """Recursive body of Algorithm 3 (``prepare_work``)."""
    tree = ceci.tree
    order = tree.order
    depth = len(prefix)
    if depth == len(order):
        # The prefix already is a complete embedding; emit as-is.
        units.append(WorkUnit(prefix, workload))
        return
    u_next = order[depth]
    matching = _matching_nodes(ceci, u_next, prefix)
    mapping = [-1] * tree.query.num_vertices
    for d, v in enumerate(prefix):
        mapping[order[d]] = v
    used = set(prefix)
    viable: List[Tuple[int, float]] = []
    total = 0.0
    for v in matching:
        v = int(v)
        if v in used or not symmetry.admissible(u_next, v, mapping):
            continue
        share = float(ceci.cardinality_of(u_next, v))
        if share > 0.0:
            viable.append((v, share))
            total += share
    if total == 0.0:
        return  # dead sub-cluster: no embeddings below this prefix
    for v, share in viable:
        my_work = share / total * workload
        child_prefix = prefix + (v,)
        if my_work <= threshold:
            units.append(WorkUnit(child_prefix, my_work))
        else:
            _split(ceci, child_prefix, my_work, threshold, symmetry, units)


def _matching_nodes(
    ceci: CECIStore, u: int, prefix: Sequence[int]
) -> Sequence[int]:
    """TE ∩ NTE matching nodes for ``u`` under a matching-order prefix —
    the same lists enumeration would intersect (Algorithm 3 line 13-15).
    Lookups go through the store accessors (dict or compact); emptiness
    is length-based because compact slices are numpy arrays."""
    tree = ceci.tree
    order = tree.order
    position = {order[d]: d for d in range(len(prefix))}
    v_p = prefix[position[tree.parent[u]]]
    base = ceci.te_values(u, v_p)
    if len(base) == 0:
        return []
    lists = [base]
    for u_n in tree.nte_parents[u]:
        other = ceci.nte_values(u, u_n, prefix[position[u_n]])
        if len(other) == 0:
            return []
        lists.append(other)
    return intersect(lists) if len(lists) > 1 else base
