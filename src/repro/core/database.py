"""Subgraph containment search over a graph database.

Section 7 separates *containment search* — "finds whether a data graph
contains at least one isomorphic embedding of a given query graph" over
a database of many graphs — from subgraph listing, noting listing is the
harder problem.  Since a CECI matcher answers containment as the
``limit=1`` case, a database layer falls out naturally; this module adds
the standard index-then-verify pipeline the containment literature
(gIndex/FG-index/CT-index, references [5, 8, 26, 56]) uses:

1. a cheap per-graph **feature filter** — label histogram, degree
   ceiling, edge count — discards graphs that provably cannot contain
   the query;
2. surviving candidates are verified with a real CECI match.

``GraphDatabase`` is what the chemical-search example sells: load
thousands of molecule-sized graphs, screen by pattern.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..graph import Graph
from .matcher import CECIMatcher

__all__ = ["GraphDatabase", "ContainmentResult"]


@dataclass(frozen=True)
class ContainmentResult:
    """Outcome of one containment query."""

    #: Indices of database graphs containing the query.
    matches: Tuple[int, ...]
    #: Graphs discarded by the feature filter (never verified).
    filtered_out: int
    #: Graphs that passed the filter but failed verification.
    false_candidates: int

    @property
    def verified(self) -> int:
        """Graphs that went through full verification."""
        return len(self.matches) + self.false_candidates


class _GraphFeatures:
    """The per-graph filter summary."""

    __slots__ = ("label_counts", "max_degree", "num_edges", "degree_histogram")

    def __init__(self, graph: Graph) -> None:
        counts: Counter = Counter()
        for v in graph.vertices():
            for label in graph.labels_of(v):
                counts[label] += 1
        self.label_counts: Dict[object, int] = dict(counts)
        degrees = sorted((graph.degree(v) for v in graph.vertices()), reverse=True)
        self.max_degree = degrees[0] if degrees else 0
        self.num_edges = graph.num_edges
        self.degree_histogram = degrees

    def may_contain(self, query_features: "_GraphFeatures") -> bool:
        """Necessary conditions for containment."""
        if query_features.num_edges > self.num_edges:
            return False
        if query_features.max_degree > self.max_degree:
            return False
        for label, needed in query_features.label_counts.items():
            if self.label_counts.get(label, 0) < needed:
                return False
        # k-th largest query degree must fit under k-th largest data degree
        for q_deg, d_deg in zip(
            query_features.degree_histogram, self.degree_histogram
        ):
            if q_deg > d_deg:
                return False
        return True


class GraphDatabase:
    """A collection of data graphs with containment screening."""

    def __init__(self, graphs: Optional[Iterable[Graph]] = None) -> None:
        self._graphs: List[Graph] = []
        self._features: List[_GraphFeatures] = []
        if graphs is not None:
            for graph in graphs:
                self.add(graph)

    def add(self, graph: Graph) -> int:
        """Add a graph; returns its database index."""
        self._graphs.append(graph)
        self._features.append(_GraphFeatures(graph))
        return len(self._graphs) - 1

    def __len__(self) -> int:
        return len(self._graphs)

    def __getitem__(self, index: int) -> Graph:
        return self._graphs[index]

    def contains(self, query: Graph) -> ContainmentResult:
        """Which database graphs contain at least one embedding of
        ``query``?  Filter first, verify survivors with CECI."""
        query_features = _GraphFeatures(query)
        matches: List[int] = []
        filtered_out = 0
        false_candidates = 0
        for index, features in enumerate(self._features):
            if not features.may_contain(query_features):
                filtered_out += 1
                continue
            matcher = CECIMatcher(query, self._graphs[index])
            if matcher.match(limit=1):
                matches.append(index)
            else:
                false_candidates += 1
        return ContainmentResult(
            tuple(matches), filtered_out, false_candidates
        )

    def occurrences(
        self, query: Graph, limit_per_graph: Optional[int] = None
    ) -> Dict[int, List[Tuple[int, ...]]]:
        """All embeddings per containing graph (listing, not just
        containment)."""
        result = self.contains(query)
        out: Dict[int, List[Tuple[int, ...]]] = {}
        for index in result.matches:
            out[index] = CECIMatcher(query, self._graphs[index]).match(
                limit_per_graph
            )
        return out
