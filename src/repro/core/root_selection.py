"""Root query vertex selection and the LDF/NLC candidate scan.

Section 2.2: the root is the vertex minimizing
``|candidate(u)| / degree(u)``, where ``candidate(u)`` is obtained "by
verifying each data node by the label, degree, and neighborhood label
count".  That per-vertex scan is also exactly the pivot computation — the
root's candidates become the cluster pivots — so both live here.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..graph import Graph
from .stats import MatchStats

__all__ = ["initial_candidates", "select_root"]


def initial_candidates(
    query: Graph,
    data: Graph,
    u: int,
    stats: MatchStats | None = None,
    use_degree_filter: bool = True,
    use_nlc_filter: bool = True,
) -> List[int]:
    """Scan the data graph for candidates of query vertex ``u``.

    A data vertex ``v`` qualifies when:

    * **LF**: ``L_q(u) ⊆ L(v)``,
    * **DF**: ``degree(v) >= degree(u)``,
    * **NLCF**: for every label ``l`` in ``u``'s neighborhood,
      ``count_v(l) >= count_u(l)``.

    The label index makes the scan proportional to the label frequency
    rather than ``|V|``.
    """
    query_labels = query.labels_of(u)
    # Scan the rarest label's posting list, then subset-check the rest.
    seed_label = min(
        query_labels, key=lambda l: len(data.vertices_with_label(l))
    )
    degree_u = query.degree(u)
    nlc_u = query.neighbor_label_counts(u)
    out: List[int] = []
    for v in data.vertices_with_label(seed_label):
        if stats is not None:
            stats.candidates_initial += 1
        if not data.label_matches(query_labels, v):
            if stats is not None:
                stats.removed_by_label += 1
            continue
        if use_degree_filter and data.degree(v) < degree_u:
            if stats is not None:
                stats.removed_by_degree += 1
            continue
        if use_nlc_filter and not _nlc_ok(nlc_u, data.neighbor_label_counts(v)):
            if stats is not None:
                stats.removed_by_nlc += 1
            continue
        out.append(v)
    return out


def _nlc_ok(nlc_query: Dict, nlc_data: Dict) -> bool:
    for label, needed in nlc_query.items():
        if nlc_data.get(label, 0) < needed:
            return False
    return True


def select_root(
    query: Graph,
    data: Graph,
    stats: MatchStats | None = None,
) -> Tuple[int, List[int]]:
    """Pick the root vertex minimizing ``|candidate(u)|/degree(u)`` and
    return ``(root, its candidate list)`` — the candidates double as the
    cluster pivots.

    Vertices whose candidate set is empty make the whole query
    unsatisfiable; in that case the vertex is still returned (cost 0) so
    the caller can terminate with zero embeddings cheaply.
    """
    best_u = -1
    best_cost = float("inf")
    best_candidates: List[int] = []
    for u in query.vertices():
        candidates = initial_candidates(query, data, u, stats)
        degree = query.degree(u) or 1
        cost = len(candidates) / degree
        if cost < best_cost:
            best_u = u
            best_cost = cost
            best_candidates = candidates
            if not candidates:
                break  # cannot do better than an unsatisfiable vertex
    return best_u, best_candidates
