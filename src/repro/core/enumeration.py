"""Parallel embedding enumeration — Section 4.

Enumeration walks the matching order with backtracking.  At query vertex
``u`` the matching nodes are the **set intersection** of:

* ``TE_Candidates[u][v_p]`` where ``v_p`` is the data vertex already
  matched to ``u``'s tree parent, and
* ``NTE_Candidates[u][u_n][v_n]`` for every NTE parent ``u_n`` (matched to
  ``v_n``).

Each matching node not already used in the partial embedding (subgraph
isomorphism is injective) and admissible under the symmetry-breaking
rules extends the embedding; the process backtracks when an embedding
completes or no extension exists (Figure 4b).

The intersection replaces the per-candidate *edge verification* that
TurboIso/CFLMatch-style indexes need (Lemma 2); the
``use_intersection=False`` mode re-enables edge verification for the
Section 4.1 ablation.

Intersections run through the adaptive kernel suite
(:mod:`repro.kernels`): merge / gallop / bitset picked per call by size
ratio and density (or forced via ``kernel=``), with results memoised in
a bounded memo cache keyed on ``(query vertex, parent candidate, NTE
candidate tuple)`` — sibling subtrees repeat exactly those
intersections.  On a TE-only index (CFLMatch's CPI) intersection mode
substitutes the data adjacency list of each matched NTE parent for the
missing NTE candidate list, which yields the identical result set.

A call of the recursive routine is counted per extension, matching the
paper's search-space proxy ("a new recursive call ... every time an
intermediate match is expanded by one tree-edge", Section 6.6).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..kernels import (
    DEFAULT_CACHE_SIZE,
    KERNEL_CHOICES,
    IntersectionCache,
    dispatch,
)
from ..observability.tracer import NULL_TRACER
from ..resilience.budget import Budget, BudgetExhausted, BudgetTracker
from .automorphism import SymmetryBreaker
from .batch import ENGINE_CHOICES, BatchEngine, batch_capable
from .stats import MatchStats
from .store import CECIStore

__all__ = ["ENGINE_CHOICES", "Enumerator", "Embedding"]

#: A complete embedding: ``embedding[u]`` is the data vertex matched to
#: query vertex ``u`` (indexed by query vertex id, not matching order).
Embedding = Tuple[int, ...]


class Enumerator:
    """Enumerates embeddings from a CECI, whole clusters or work units.

    Parameters
    ----------
    ceci:
        A built (and normally refined) index — any :class:`CECIStore`:
        the dict builder or the frozen :class:`CompactCECI`.
    symmetry:
        Symmetry breaker; pass one with ``enabled=False`` to list every
        automorphism.
    use_intersection:
        ``True`` (paper default) intersects TE and NTE candidate lists;
        ``False`` scans TE candidates and verifies each non-tree edge on
        the data graph — the Section 4.1 baseline.
    stats:
        Counter sink; a fresh one is created when omitted.
    budget:
        Optional :class:`~repro.resilience.budget.Budget`; when any of
        its axes trips, enumeration stops early, ``truncated`` is set
        and ``stop_reason`` names the axis.  Entry points still return
        the embeddings found so far — never an exception.
    tracker:
        A pre-started :class:`BudgetTracker` to enforce instead of
        ``budget`` (the matcher passes one whose clock already covers
        index construction).
    kernel:
        Intersection kernel: ``"auto"`` (adaptive dispatch, default),
        ``"merge"``, ``"gallop"`` or ``"bitset"``.
    cache_size:
        Entry bound of the TE∩NTE memo cache; ``0`` disables caching.
    cache:
        Externally-owned memo cache (overrides ``cache_size``).  Pass a
        :meth:`~repro.kernels.cache.IntersectionCache.view` whose
        namespace carries the query/data identity when the underlying
        pool is shared across queries.
    tracer:
        Optional :class:`~repro.observability.tracer.Tracer`; when
        enabled, each cluster enumerated via :meth:`collect` /
        :meth:`embeddings` gets a (sampled) child span and the memo
        cache's final state is recorded as an instant.  The default
        null tracer costs one attribute check per cluster.
    progress:
        Optional
        :class:`~repro.observability.progress.ProgressReporter`;
        ticked once per recursive call.  Wiring happens by shadowing
        the recursion entry points, so the disabled hot path carries
        no per-call check at all.
    engine:
        ``"auto"`` (default) routes compact-store intersection
        enumeration through the set-at-a-time batch engine
        (:mod:`repro.core.batch`) and everything else through the
        recursion; ``"recursive"`` forces the per-embedding recursion;
        ``"batch"`` forces the vectorised engine and raises when the
        index cannot serve it (dict store, edge-verification mode, or
        a TE-only index facing a query with non-tree edges).
    """

    def __init__(
        self,
        ceci: CECIStore,
        symmetry: Optional[SymmetryBreaker] = None,
        use_intersection: bool = True,
        stats: Optional[MatchStats] = None,
        budget: Optional[Budget] = None,
        tracker: Optional[BudgetTracker] = None,
        kernel: str = "auto",
        cache_size: int = DEFAULT_CACHE_SIZE,
        cache=None,
        tracer=None,
        progress=None,
        engine: str = "auto",
    ) -> None:
        if kernel not in KERNEL_CHOICES:
            raise ValueError(
                f"unknown intersection kernel {kernel!r}; "
                f"expected one of {KERNEL_CHOICES}"
            )
        if engine not in ENGINE_CHOICES:
            raise ValueError(
                f"unknown enumeration engine {engine!r}; "
                f"expected one of {ENGINE_CHOICES}"
            )
        capable = batch_capable(ceci, use_intersection)
        if engine == "batch" and not capable:
            raise ValueError(
                "engine='batch' requires a CompactCECI store in "
                "intersection mode (with NTE groups built, or an "
                "NTE-free query)"
            )
        #: The resolved engine actually running: "batch" or "recursive".
        self.engine = "batch" if (capable and engine != "recursive") else (
            "recursive"
        )
        self._batch: Optional[BatchEngine] = None
        self.ceci = ceci
        self.tree = ceci.tree
        self.symmetry = symmetry or SymmetryBreaker(ceci.tree.query)
        self.use_intersection = use_intersection
        self.stats = stats if stats is not None else MatchStats()
        self.kernel = kernel
        # ``cache`` injects an externally-owned memo cache — typically a
        # NamespacedCache view of a pool shared across requests, whose
        # namespace must carry the query/data identity the bare keys
        # lack (see repro.kernels.cache).  Without it, a private
        # per-enumerator cache is created from ``cache_size``.
        if cache is not None:
            self._cache = cache
        else:
            self._cache = (
                IntersectionCache(cache_size, stats=self.stats)
                if cache_size > 0
                else None
            )
        if tracker is None and budget is not None and not budget.unlimited:
            tracker = budget.tracker()
        self._tracker = tracker
        self.tracer = NULL_TRACER if tracer is None else tracer
        self._progress = progress
        if progress is not None:
            # Shadow the recursive entry points with progress-ticked
            # wrappers.  Recursion dispatches through the instance
            # attribute, so every recursive call ticks — and the default
            # hot path carries no per-call observability check at all.
            self._collect = self._collect_observed
            self._extend = self._extend_observed
        #: True once a budget axis has stopped an enumeration early.
        self.truncated = False
        #: The axis that tripped ("deadline", "max_calls", ...), if any.
        self.stop_reason: Optional[str] = None

    def _note_budget_stop(self, stop: BudgetExhausted) -> None:
        self.truncated = True
        self.stop_reason = stop.reason
        self.stats.budget_stops += 1

    def trace_cache_state(self) -> None:
        """Record the memo cache's cumulative state as a trace instant
        (no-op without an enabled tracer or a cache)."""
        if self.tracer.enabled and self._cache is not None:
            self.tracer.instant("cache", **self._cache.snapshot())

    # ------------------------------------------------------------------
    # Batch (set-at-a-time) delegation — DESIGN.md §12
    # ------------------------------------------------------------------
    def _batch_instance(self) -> BatchEngine:
        if self._batch is None:
            self._batch = BatchEngine(
                self.ceci,
                self.symmetry,
                self.stats,
                tracker=self._tracker,
                progress=self._progress,
            )
        return self._batch

    def _batch_serial(self, limit: Optional[int]) -> bool:
        """Whether to seed one root frontier per pivot (cluster-serial
        DFS) instead of one all-pivots frontier.

        Serial is required whenever per-cluster behavior is observable:
        an enabled tracer wants per-cluster spans, a ``limit`` must not
        pay for clusters past the cut, and a counting budget axis must
        charge clusters in the recursive engine's order.  The
        unbudgeted, unlimited perf path takes the all-pivots mega-batch
        (which still yields exact DFS order — see DESIGN.md §12).
        """
        if limit is not None or self.tracer.enabled:
            return True
        if self._tracker is not None:
            budget = self._tracker.budget
            return not (
                budget.max_calls is None
                and budget.max_embeddings is None
                and budget.max_memory_bytes is None
            )
        return False

    def _batch_blocks(
        self, limit: Optional[int]
    ) -> Iterator["np.ndarray"]:
        """Stream complete-embedding blocks for a whole-index run,
        handling tracker start, cluster spans, limit and budget stops."""
        engine = self._batch_instance()
        if self._tracker is not None:
            self._tracker.start()
        remaining: List[Optional[int]] = [limit]
        tracer = self.tracer
        try:
            if self._batch_serial(limit):
                for pivot in self.ceci.pivots:
                    with tracer.cluster_span(int(pivot)):
                        yield from engine.blocks(
                            engine.root_frontier([pivot]), 1, remaining
                        )
                    if remaining[0] is not None and remaining[0] <= 0:
                        return
            else:
                pivots = self.ceci.pivots
                if len(pivots):
                    yield from engine.blocks(
                        engine.root_frontier(pivots), 1, remaining
                    )
        except BudgetExhausted as stop:
            self._note_budget_stop(stop)
        finally:
            self.trace_cache_state()

    def _batch_unit_blocks(
        self, prefix: Sequence[int], limit: Optional[int]
    ) -> Iterator["np.ndarray"]:
        """Stream complete-embedding blocks for one work-unit prefix."""
        engine = self._batch_instance()
        if self._tracker is not None:
            self._tracker.start()
        frontier = engine.seed_frontier(prefix)
        if frontier is None:
            return
        try:
            yield from engine.blocks(frontier, len(prefix), [limit])
        except BudgetExhausted as stop:
            self._note_budget_stop(stop)

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def embeddings(self, limit: Optional[int] = None) -> Iterator[Embedding]:
        """Yield embeddings cluster by cluster (pivot order)."""
        if self.engine == "batch":
            for block in self._batch_blocks(limit):
                for row in block.tolist():
                    yield tuple(row)
            return
        if self._tracker is not None:
            self._tracker.start()
        remaining = [limit]
        tracer = self.tracer
        try:
            for pivot in list(self.ceci.pivots):
                with tracer.cluster_span(pivot):
                    yield from self._from_prefix((pivot,), remaining)
                if remaining[0] is not None and remaining[0] <= 0:
                    return
        except BudgetExhausted as stop:
            self._note_budget_stop(stop)
        finally:
            self.trace_cache_state()

    def embeddings_from_unit(
        self, prefix: Sequence[int], limit: Optional[int] = None
    ) -> Iterator[Embedding]:
        """Yield embeddings of one work unit (partial-embedding prefix
        along the matching order) — the FGD execution path."""
        if self.engine == "batch":
            for block in self._batch_unit_blocks(prefix, limit):
                for row in block.tolist():
                    yield tuple(row)
            return
        if self._tracker is not None:
            self._tracker.start()
        try:
            yield from self._from_prefix(tuple(prefix), [limit])
        except BudgetExhausted as stop:
            self._note_budget_stop(stop)

    def count(self, limit: Optional[int] = None) -> int:
        """Number of embeddings (up to ``limit``)."""
        if self.engine == "batch":
            # Count whole blocks — embeddings are never materialised as
            # tuples at all on this path.
            return sum(len(block) for block in self._batch_blocks(limit))
        total = 0
        for _ in self.embeddings(limit):
            total += 1
        return total

    # ------------------------------------------------------------------
    # Non-generator fast path (same recursion, list collection): Python
    # generator chains cost a large constant per yield, which dominates
    # on embedding-heavy workloads.  ``collect``/``count_fast`` are what
    # the matcher facade and the benchmarks use.
    # ------------------------------------------------------------------
    def collect(self, limit: Optional[int] = None) -> List[Embedding]:
        """All embeddings (or the first ``limit``) as a list.  Under a
        budget the list may be partial — check ``truncated``."""
        if self.engine == "batch":
            batched: List[Embedding] = []
            for block in self._batch_blocks(limit):
                batched.extend(map(tuple, block.tolist()))
            return batched
        out: List[Embedding] = []
        sink = out.append
        order = self.tree.order
        root = self.tree.root
        n = self.tree.query.num_vertices
        mapping = [-1] * n
        used: set = set()
        single = len(order) == 1
        tracker = self._tracker
        tracer = self.tracer
        if tracker is not None:
            tracker.start()
        try:
            for pivot in self.ceci.pivots:
                if not self.symmetry.admissible(root, pivot, mapping):
                    continue
                with tracer.cluster_span(pivot):
                    if single:
                        self.stats.recursive_calls += 1
                        if tracker is not None:
                            tracker.charge_call()
                            tracker.charge_embedding(n)
                        self.stats.embeddings_found += 1
                        sink((pivot,))
                    else:
                        mapping[root] = pivot
                        used.add(pivot)
                        budget = None if limit is None else limit - len(out)
                        self._collect(1, mapping, used, sink, budget)
                        used.discard(pivot)
                        mapping[root] = -1
                if limit is not None and len(out) >= limit:
                    break
        except BudgetExhausted as stop:
            self._note_budget_stop(stop)
        finally:
            self.trace_cache_state()
        return out[:limit] if limit is not None else out

    def collect_from_unit(
        self, prefix: Sequence[int], limit: Optional[int] = None
    ) -> List[Embedding]:
        """List-returning analog of :meth:`embeddings_from_unit`."""
        if self.engine == "batch":
            batched: List[Embedding] = []
            for block in self._batch_unit_blocks(prefix, limit):
                batched.extend(map(tuple, block.tolist()))
            return batched
        out: List[Embedding] = []
        if self._tracker is not None:
            self._tracker.start()
        try:
            self._collect_prefix(tuple(prefix), out.append, limit, 0)
        except BudgetExhausted as stop:
            self._note_budget_stop(stop)
        return out

    def _collect_prefix(self, prefix, sink, limit, already) -> bool:
        """Seed the mapping with a prefix and recurse; returns False when
        the global limit has been hit."""
        order = self.tree.order
        mapping = [-1] * self.tree.query.num_vertices
        used = set()
        for depth, v in enumerate(prefix):
            u = order[depth]
            if v in used or not self.symmetry.admissible(u, v, mapping):
                return True
            mapping[u] = v
            used.add(v)
        budget = None if limit is None else limit - already
        if budget is not None and budget <= 0:
            return False
        if len(prefix) == len(order):
            # The unit already is a complete embedding.
            self.stats.recursive_calls += 1
            if self._tracker is not None:
                self._tracker.charge_call()
                self._tracker.charge_embedding(len(mapping))
            self.stats.embeddings_found += 1
            sink(tuple(mapping))
            return budget is None or budget - 1 > 0
        left = self._collect(len(prefix), mapping, used, sink, budget)
        return left is None or left > 0

    def _collect_observed(self, depth, mapping, used, sink, budget):
        """Progress-ticked wrapper installed as ``self._collect`` when a
        reporter is attached; recursion inside the plain body dispatches
        back through the instance attribute, so each call ticks."""
        self._progress.tick()
        return Enumerator._collect(self, depth, mapping, used, sink, budget)

    def _collect(self, depth, mapping, used, sink, budget) -> Optional[int]:
        """Recursive collector; ``budget`` is remaining embeddings or
        None for unlimited.  Returns the updated budget."""
        self.stats.recursive_calls += 1
        tracker = self._tracker
        if tracker is not None:
            tracker.charge_call()
        order = self.tree.order
        u = order[depth]
        symmetry = self.symmetry
        if depth + 1 == len(order):
            # Leaf level: every surviving candidate closes one embedding;
            # append in bulk instead of recursing per candidate.  The
            # try/finally keeps the counters exact when a budget axis
            # trips mid-loop.
            emitted = 0
            n = len(mapping)
            try:
                for v in self.matching_nodes(u, mapping):
                    if v in used:
                        continue
                    if not symmetry.admissible(u, v, mapping):
                        continue
                    self.stats.recursive_calls += 1
                    if tracker is not None:
                        tracker.charge_call()
                        tracker.charge_embedding(n)
                    mapping[u] = v
                    sink(tuple(mapping))
                    emitted += 1
                    if budget is not None and emitted >= budget:
                        break
            finally:
                mapping[u] = -1
                self.stats.embeddings_found += emitted
            return None if budget is None else budget - emitted
        for v in self.matching_nodes(u, mapping):
            if v in used:
                continue
            if not symmetry.admissible(u, v, mapping):
                continue
            mapping[u] = v
            used.add(v)
            budget = self._collect(depth + 1, mapping, used, sink, budget)
            used.discard(v)
            mapping[u] = -1
            if budget is not None and budget <= 0:
                return budget
        return budget

    # ------------------------------------------------------------------
    # Core recursion
    # ------------------------------------------------------------------
    def _from_prefix(
        self, prefix: Tuple[int, ...], remaining: List[Optional[int]]
    ) -> Iterator[Embedding]:
        if remaining[0] is not None and remaining[0] <= 0:
            return
        order = self.tree.order
        if len(prefix) > len(order):
            raise ValueError("work-unit prefix longer than the query")
        mapping = [-1] * self.tree.query.num_vertices
        used = set()
        for depth, v in enumerate(prefix):
            u = order[depth]
            if v in used:
                return  # prefix violates injectivity: dead unit
            if not self.symmetry.admissible(u, v, mapping):
                return
            mapping[u] = v
            used.add(v)
        yield from self._extend(len(prefix), mapping, used, remaining)

    def _extend_observed(self, depth, mapping, used, remaining):
        """Progress-ticked wrapper installed as ``self._extend`` when a
        reporter is attached (one tick per recursive expansion)."""
        self._progress.tick()
        return Enumerator._extend(self, depth, mapping, used, remaining)

    def _extend(
        self,
        depth: int,
        mapping: List[int],
        used: set,
        remaining: List[Optional[int]],
    ) -> Iterator[Embedding]:
        self.stats.recursive_calls += 1
        if self._tracker is not None:
            self._tracker.charge_call()
        order = self.tree.order
        if depth == len(order):
            if self._tracker is not None:
                self._tracker.charge_embedding(len(mapping))
            self.stats.embeddings_found += 1
            if remaining[0] is not None:
                remaining[0] -= 1
            yield tuple(mapping)
            return
        u = order[depth]
        for v in self.matching_nodes(u, mapping):
            if v in used:
                continue
            if not self.symmetry.admissible(u, v, mapping):
                continue
            mapping[u] = v
            used.add(v)
            yield from self._extend(depth + 1, mapping, used, remaining)
            used.discard(v)
            mapping[u] = -1
            if remaining[0] is not None and remaining[0] <= 0:
                return

    def matching_nodes(self, u: int, mapping: Sequence[int]) -> Sequence[int]:
        """Candidates of ``u`` consistent with the partial ``mapping``
        (before injectivity and symmetry checks).

        Candidate lookups go through the :class:`CECIStore` accessors,
        so the same code path serves the dict builder (Python lists)
        and the compact store (zero-copy int64 array slices; emptiness
        is tested with ``len`` because array truthiness is ambiguous).
        """
        ceci = self.ceci
        v_p = mapping[self.tree.parent[u]]
        base = ceci.te_values(u, v_p)
        if len(base) == 0:
            return []
        nte_parents = self.tree.nte_parents[u]
        if not nte_parents:
            return base
        if self.use_intersection:
            stats = self.stats
            stats.intersections += 1
            cache = self._cache
            if cache is not None:
                # Single NTE parent is the common case: key on the bare
                # candidate instead of a 1-tuple to keep hashing cheap.
                if len(nte_parents) == 1:
                    key = (u, v_p, mapping[nte_parents[0]])
                else:
                    key = (u, v_p, tuple(mapping[u_n] for u_n in nte_parents))
                cached = cache.get(key)
                if cached is not None:
                    return cached
            lists = [base]
            adjacency_mode = not ceci.nte_built
            for u_n in nte_parents:
                if adjacency_mode:
                    # TE-only index (CPI shape): the NTE constraint is
                    # "adjacent to the NTE parent's match", so the sorted
                    # adjacency list is the candidate list.
                    other = ceci.data.neighbors(mapping[u_n])
                else:
                    other = ceci.nte_values(u, u_n, mapping[u_n])
                if len(other) == 0:
                    if cache is not None:
                        cache.put(key, [])
                    return []
                lists.append(other)
            name, result = dispatch(lists, self.kernel)
            stats.count_kernel(name)
            if cache is not None:
                cache.put(key, result)
            return result
        # Edge-verification mode (CFLMatch/TurboIso regime): each
        # non-tree edge is checked by binary search on the sorted
        # adjacency list — the paper's cost model (Section 4.1).  The
        # O(1) bitmap CFLMatch actually uses needs an |V|x|V| matrix,
        # which is exactly what limits it to sub-500K-vertex graphs.
        import bisect

        data = ceci.data
        out = []
        for v in base:
            ok = True
            for u_n in nte_parents:
                self.stats.edge_verifications += 1
                v_n = mapping[u_n]
                neighbors = data.neighbors(v)
                i = bisect.bisect_left(neighbors, v_n)
                if i >= len(neighbors) or neighbors[i] != v_n:
                    ok = False
                    break
            if ok:
                out.append(v)
        return out
