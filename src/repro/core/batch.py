"""Set-at-a-time frontier enumeration over the compact store.

The recursive enumerator (:mod:`repro.core.enumeration`) walks the
matching order one partial embedding at a time: every extension is a
Python-level binary search plus per-candidate ``used``-set and symmetry
checks.  On the frozen :class:`~repro.core.store.CompactCECI` that
per-row interpreter overhead dominates — the arrays are already flat
int64, but each probe boxes its way through Python.

This module expands **whole frontiers** instead, in the set-at-a-time
join style of the STwig/billion-node literature: a frontier is a 2-D
int64 array of partial embeddings (one row per embedding, one column per
query vertex, ``-1`` for unmatched), and one matching-order step is a
handful of whole-array numpy operations:

* one vectorised ``searchsorted`` over the TE triple locates every
  row's candidate block (:func:`~repro.kernels.searchsorted_blocks`);
* one ragged gather materialises all extensions at once
  (:func:`~repro.kernels.expand_blocks`);
* NTE constraints become membership probes of combined
  ``key * scale + value`` codes against a pre-sorted per-group array
  (:meth:`~repro.core.store.CompactCECI.nte_combined` /
  :func:`~repro.kernels.member_mask`) — the batched equivalent of the
  TE∩NTE intersection;
* injectivity and the Grochow–Kellis ordering rules are per-column
  boolean masks (:func:`used_exclusion_mask`) instead of per-row set
  and dict probes.

Frontier blocks are processed **depth-first** off an explicit stack
(expansion chunks pushed in reverse), so complete embeddings stream out
in exactly the recursive engine's DFS order — ``limit`` prefixes are
bit-identical — while memory stays bounded by ``O(depth x block x
fanout)`` rows.  Budget axes charge whole blocks at once
(:meth:`~repro.resilience.budget.BudgetTracker.charge_calls`) and leaf
blocks are truncated *exactly* at the budget boundary before being
committed, preserving the recursive engine's ``PartialResult``
semantics; when ``max_calls`` is active, blocks shrink to single rows so
the charge order equals the recursive engine's DFS node order and the
truncation point is identical.  See DESIGN.md §12.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..kernels.intersect import (
    expand_blocks,
    member_mask,
    searchsorted_blocks,
)
from ..resilience.budget import BudgetExhausted

__all__ = [
    "BLOCK_ROWS",
    "ENGINE_CHOICES",
    "BatchEngine",
    "batch_capable",
    "used_exclusion_mask",
]

#: What ``Enumerator(engine=...)`` / ``--engine`` accept.  ``auto``
#: (the default) picks ``batch`` whenever the index is capable (compact
#: store, intersection mode, NTE groups present or query NTE-free) and
#: falls back to ``recursive`` otherwise — dict-store recursion is
#: untouched.
ENGINE_CHOICES: Tuple[str, ...] = ("auto", "recursive", "batch")

#: Row cap per frontier block: expansion output larger than this is
#: split into chunks processed depth-first, bounding peak frontier
#: memory while keeping each numpy call big enough to amortise its
#: fixed cost.
BLOCK_ROWS = 1 << 16


def batch_capable(ceci, use_intersection: bool) -> bool:
    """Whether the batch engine can serve this index.

    It needs the compact store's CSR triples and intersection-mode NTE
    groups; a TE-only index (CFLMatch's CPI shape) qualifies only when
    the query has no non-tree edges to check.  Edge-verification mode
    (``use_intersection=False``) always stays recursive — it is the
    Section 4.1 ablation and must keep its per-edge cost model.
    """
    from .store import CompactCECI

    if not use_intersection:
        return False
    if not isinstance(ceci, CompactCECI):
        return False
    if ceci.nte_built:
        return True
    return not any(ceci.tree.nte_parents)


def used_exclusion_mask(
    frontier: np.ndarray,
    rows: np.ndarray,
    cand: np.ndarray,
    used_cols: Sequence[int],
) -> np.ndarray:
    """Injectivity mask: ``True`` where ``cand[i]`` differs from every
    already-matched column of its source row ``frontier[rows[i]]``.

    The batched replacement for the recursive engine's per-embedding
    ``used`` set: each matched query-vertex column is compared against
    the candidate column in one whole-array operation.
    """
    keep = np.ones(len(cand), dtype=bool)
    for col in used_cols:
        keep &= frontier[rows, col] != cand
    return keep


class _Level:
    """Precomputed per-depth expansion plan (one per matching-order
    step): the TE triple to probe, the NTE membership arrays, and which
    frontier columns the injectivity / symmetry masks compare against."""

    __slots__ = (
        "u",
        "parent_col",
        "te_keys",
        "te_offsets",
        "te_values",
        "nte",
        "used_cols",
        "above_cols",
        "below_cols",
    )

    def __init__(self, ceci, symmetry, depth: int) -> None:
        tree = ceci.tree
        order = tree.order
        self.u = order[depth]
        self.parent_col = tree.parent[self.u]
        self.te_keys, self.te_offsets, self.te_values = ceci.te[self.u]
        #: ``(column of the NTE parent, combined sorted codes)`` pairs.
        self.nte: List[Tuple[int, np.ndarray]] = [
            (u_n, ceci.nte_combined(self.u, u_n))
            for u_n in tree.nte_parents[self.u]
        ]
        self.used_cols: Tuple[int, ...] = tuple(order[:depth])
        # Grochow-Kellis counterparts matched *before* this depth; later
        # ones are still -1 in every row, which `admissible` skips.
        position = tree.position
        self.above_cols: Tuple[int, ...] = tuple(
            lo
            for lo, hi in symmetry.conditions
            if hi == self.u and position[lo] < depth
        )
        self.below_cols: Tuple[int, ...] = tuple(
            hi
            for lo, hi in symmetry.conditions
            if lo == self.u and position[hi] < depth
        )


class BatchEngine:
    """Vectorised frontier expansion over one built compact index.

    Owned by an :class:`~repro.core.enumeration.Enumerator` in batch
    mode; shares that enumerator's ``stats``, budget ``tracker`` and
    ``progress`` reporter so the two engines are drop-in replacements
    behind the same counters and truncation semantics.
    """

    def __init__(
        self, ceci, symmetry, stats, tracker=None, progress=None
    ) -> None:
        self.ceci = ceci
        self.tree = ceci.tree
        self.symmetry = symmetry
        self.stats = stats
        self.tracker = tracker
        self.progress = progress
        self.num_vertices = self.tree.query.num_vertices
        self.scale = ceci.pair_scale
        order = self.tree.order
        self.depth_total = len(order)
        self.levels: List[_Level] = [
            _Level(ceci, symmetry, depth) for depth in range(len(order))
        ]

    # ------------------------------------------------------------------
    # Frontier construction
    # ------------------------------------------------------------------
    def root_frontier(self, pivots) -> np.ndarray:
        """A depth-1 frontier: one row per pivot, root column set."""
        arr = np.asarray(pivots, dtype=np.int64)
        frontier = np.full(
            (len(arr), self.num_vertices), -1, dtype=np.int64
        )
        if len(arr):
            frontier[:, self.tree.root] = arr
        return frontier

    def seed_frontier(self, prefix: Sequence[int]) -> Optional[np.ndarray]:
        """A one-row frontier seeded from a work-unit prefix, or
        ``None`` when the prefix is dead (injectivity or symmetry
        violation) — mirroring the recursive engine's prefix checks."""
        order = self.tree.order
        if len(prefix) > len(order):
            raise ValueError("work-unit prefix longer than the query")
        mapping = [-1] * self.num_vertices
        used: set = set()
        for depth, v in enumerate(prefix):
            u = order[depth]
            v = int(v)
            if v in used or not self.symmetry.admissible(u, v, mapping):
                return None
            mapping[u] = v
            used.add(v)
        return np.asarray([mapping], dtype=np.int64)

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------
    def _expand(self, frontier: np.ndarray, depth: int) -> Optional[np.ndarray]:
        """One matching-order step for a whole frontier block: returns
        the depth+1 frontier (or ``None`` when nothing survives)."""
        level = self.levels[depth]
        stats = self.stats
        starts, counts = searchsorted_blocks(
            level.te_keys, level.te_offsets, frontier[:, level.parent_col]
        )
        if level.nte:
            # One logical TE∩NTE intersection per row with a non-empty
            # TE base — the recursive engine's counting convention.
            stats.intersections += int(np.count_nonzero(counts))
        rows, cand = expand_blocks(level.te_values, starts, counts)
        if len(cand) == 0:
            return None
        keep = None
        if level.nte:
            # Batched semi-join: each NTE group is one vectorised
            # membership probe of combined (parent match, candidate)
            # codes — the array-kernel path of this engine.
            stats.kernel_array_calls += len(level.nte)
            scale = self.scale
            for col, combined in level.nte:
                mask = member_mask(
                    combined, frontier[rows, col] * scale + cand
                )
                keep = mask if keep is None else keep & mask
        used = used_exclusion_mask(frontier, rows, cand, level.used_cols)
        keep = used if keep is None else keep & used
        for col in level.above_cols:
            keep &= frontier[rows, col] < cand
        for col in level.below_cols:
            keep &= cand < frontier[rows, col]
        if not keep.all():
            rows = rows[keep]
            cand = cand[keep]
            if len(cand) == 0:
                return None
        out = frontier[rows]
        out[:, level.u] = cand
        return out

    # ------------------------------------------------------------------
    # Depth-first block processing
    # ------------------------------------------------------------------
    def blocks(
        self,
        frontier: np.ndarray,
        depth: int,
        remaining: List[Optional[int]],
    ) -> Iterator[np.ndarray]:
        """Expand ``frontier`` to completion, yielding blocks of
        complete embeddings in exact recursive-DFS order.

        ``remaining`` is the shared one-cell ``limit`` budget (``[None]``
        for unlimited); budget axes raise :class:`BudgetExhausted`
        exactly where the recursive engine would.  Each popped block is
        charged ``len(block)`` extension calls; complete blocks are
        truncated to the tightest remaining capacity before being
        committed, so truncation lands mid-block with no overshoot.
        """
        total_depth = self.depth_total
        stats = self.stats
        tracker = self.tracker
        progress = self.progress
        if remaining[0] is not None and remaining[0] <= 0:
            return
        # Exact max_calls parity needs the charge order to equal the
        # DFS node order, which only single-row blocks give; the other
        # axes truncate at leaf emission, so full blocks are fine.
        row_cap = BLOCK_ROWS
        if tracker is not None and tracker.budget.max_calls is not None:
            row_cap = 1
        stack: List[Tuple[int, np.ndarray]] = [(depth, frontier)]
        while stack:
            d, block = stack.pop()
            n_rows = len(block)
            if n_rows == 0:
                continue
            if d >= total_depth:
                yield from self._emit(block, remaining)
                if remaining[0] is not None and remaining[0] <= 0:
                    return
                continue
            stats.batch_blocks += 1
            stats.batch_rows += n_rows
            if tracker is None:
                stats.recursive_calls += n_rows
            else:
                before = tracker.calls
                try:
                    tracker.charge_calls(n_rows)
                finally:
                    stats.recursive_calls += tracker.calls - before
            if progress is not None:
                progress.tick_many(n_rows)
            grown = self._expand(block, d)
            if grown is None:
                continue
            if len(grown) > row_cap:
                stack.extend(
                    (d + 1, grown[i : i + row_cap])
                    for i in reversed(range(0, len(grown), row_cap))
                )
            else:
                stack.append((d + 1, grown))

    def _emit(
        self, block: np.ndarray, remaining: List[Optional[int]]
    ) -> Iterator[np.ndarray]:
        """Commit one block of complete embeddings, truncated exactly at
        the tightest of ``limit`` and the budget capacities."""
        n_rows = len(block)
        take = n_rows
        reason: Optional[str] = None
        if remaining[0] is not None and remaining[0] < take:
            take = remaining[0]
        tracker = self.tracker
        if tracker is not None:
            cap, cap_reason = tracker.embedding_capacity(self.num_vertices)
            if cap is not None and cap < take:
                take, reason = cap, cap_reason
            calls_left = tracker.calls_capacity()
            if calls_left is not None and calls_left < take:
                take, reason = calls_left, "max_calls"
        if take > 0:
            self.stats.recursive_calls += take
            self.stats.embeddings_found += take
            if tracker is not None:
                tracker.commit_calls(take)
                tracker.commit_embeddings(take, self.num_vertices)
            if self.progress is not None:
                self.progress.tick_many(take)
            if remaining[0] is not None:
                remaining[0] -= take
            yield block[:take]
        if take < n_rows and reason is not None:
            # A budget axis (not the caller's limit) cut this block
            # short.  Account the failing candidate's entry call exactly
            # as the recursion would, then surface the binding axis —
            # charge_call itself raises max_calls when that is it.
            if tracker is not None:
                before = tracker.calls
                try:
                    tracker.charge_call()
                finally:
                    self.stats.recursive_calls += tracker.calls - before
            raise BudgetExhausted(reason)
