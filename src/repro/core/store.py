"""The frozen, array-packed CECI store — the index's second phase.

The paper's central claim is *compactness*: the CECI is ``O(|Eq| x
|Eg|)`` and Section 6.4 plans an NVM-resident layout of flat arrays.
The dict-of-dict builder (:class:`repro.core.ceci.CECI`) is the right
shape for BFS filtering and reverse-BFS refinement — those phases
mutate heavily — but it is the wrong shape to *keep*: boxed ints,
per-list headers and hash tables cost an order of magnitude over the
payload, and every enumeration probe materialises Python objects.

This module introduces the two-phase index lifecycle:

* **build** — filtering and refinement mutate the dict builder;
* **freeze** — :meth:`CECI.compact` / :meth:`CompactCECI.from_ceci`
  pack the final index into per-query-vertex sorted ``(keys, offsets,
  values)`` int64 triples (CSR over the candidate keys) plus a flat
  ``(keys, values)`` cardinality pair — exactly the layout
  :mod:`repro.core.persist` writes to disk, so persistence becomes a
  header plus raw array blocks and loading can ``mmap`` the arrays
  without ever reconstructing dicts.

Both representations satisfy the small :class:`CECIStore` protocol, so
enumeration (:mod:`repro.core.enumeration`), cluster decomposition
(:mod:`repro.core.clusters`) and estimation (:mod:`repro.core.estimate`)
run against either.  Compact lookups return **zero-copy array slices**
(``values[offsets[i]:offsets[i+1]]``) which the kernel dispatcher routes
through the vectorised :func:`repro.kernels.intersect_ndarray` path.
"""

from __future__ import annotations

from typing import Dict, List, Protocol, Sequence, Tuple, runtime_checkable

import numpy as np

from ..graph import Graph
from .query_tree import QueryTree
from .stats import MatchStats

__all__ = [
    "STORE_CHOICES",
    "CECIStore",
    "CompactCECI",
    "PairArrays",
    "encode_pairs",
    "lookup_pairs",
]

#: What ``CECIMatcher(store=...)`` / ``--store`` accept.  ``compact``
#: (the default) freezes the builder into a :class:`CompactCECI` after
#: refinement; ``dict`` keeps the mutable builder as the runtime index.
STORE_CHOICES: Tuple[str, ...] = ("dict", "compact")

#: One flattened ``{key: [values]}`` mapping: sorted ``keys``,
#: ``offsets`` of length ``len(keys) + 1``, concatenated ``values`` —
#: ``values[offsets[i]:offsets[i+1]]`` are the sorted values of
#: ``keys[i]``.  All int64.
PairArrays = Tuple[np.ndarray, np.ndarray, np.ndarray]

_EMPTY_I64 = np.empty(0, dtype=np.int64)


@runtime_checkable
class CECIStore(Protocol):
    """The read interface enumeration, clusters and estimation need.

    Satisfied structurally by both the dict builder
    (:class:`repro.core.ceci.CECI`) and :class:`CompactCECI`; consumers
    type against this so the two-phase lifecycle is invisible to them.
    """

    tree: QueryTree
    data: Graph
    nte_built: bool

    @property
    def pivots(self) -> Sequence[int]: ...

    def te_values(self, u: int, v_p: int) -> Sequence[int]: ...

    def nte_values(self, u: int, u_n: int, v_n: int) -> Sequence[int]: ...

    def cardinality_of(self, u: int, v: int) -> int: ...

    def cluster_cardinality(self, pivot: int) -> int: ...

    def candidates(self, u: int) -> Sequence[int]: ...

    def te_edge_count(self) -> int: ...

    def nte_edge_count(self) -> int: ...

    def record_size(self, stats: MatchStats) -> None: ...

    def memory_bytes(self) -> int: ...


def encode_pairs(mapping: Dict[int, Sequence[int]]) -> PairArrays:
    """Flatten ``{key: [sorted values]}`` into ``(keys, offsets,
    values)`` int64 arrays — the compact store's (and the on-disk
    format's) unit of layout."""
    keys = np.fromiter(sorted(mapping), dtype=np.int64, count=len(mapping))
    offsets = np.zeros(len(keys) + 1, dtype=np.int64)
    chunks: List[np.ndarray] = []
    for i, key in enumerate(keys):
        values = mapping[int(key)]
        offsets[i + 1] = offsets[i] + len(values)
        chunks.append(np.asarray(values, dtype=np.int64))
    values = np.concatenate(chunks) if chunks else _EMPTY_I64
    return keys, offsets, values


def lookup_pairs(triple: PairArrays, key: int) -> np.ndarray:
    """Zero-copy value slice for ``key`` (empty array when unkeyed).

    The compact store's (and any compact-region baseline's) single probe
    primitive: binary-search the key column, hand back a value *view*."""
    keys, offsets, values = triple
    i = int(np.searchsorted(keys, key))
    if i >= len(keys) or keys[i] != key:
        return _EMPTY_I64
    return values[offsets[i] : offsets[i + 1]]


def _unique_pair_count(triple: PairArrays) -> int:
    """Distinct undirected ``(key, value)`` pairs in one mapping — the
    Table 2 candidate-edge convention (each edge counted once even when
    keyed under both endpoints)."""
    keys, offsets, values = triple
    if len(values) == 0:
        return 0
    a = np.repeat(keys, np.diff(offsets))
    lo = np.minimum(a, values)
    hi = np.maximum(a, values)
    return int(len(np.unique(np.stack([lo, hi], axis=1), axis=0)))


class CompactCECI:
    """The frozen CECI: flat sorted int64 arrays, nothing boxed.

    Per query vertex ``u``:

    * ``te[u]`` — one :data:`PairArrays` triple for TE_Candidates;
    * ``nte[u][u_n]`` — one triple per NTE parent group;
    * ``card[u]`` — ``(keys, values)`` refinement-cardinality columns.

    Lookups binary-search the key column and hand back value *views*;
    nothing is copied and nothing is rebuilt into Python containers.
    The identical arrays are what :mod:`repro.core.persist` writes, so
    a loaded index can be ``np.memmap``-backed transparently.
    """

    #: Whether the arrays were integrity-checked on the way in.  True
    #: for stores built in memory; the persist loader sets False when a
    #: pre-checksum (v3.0) file is loaded without a CRC table.
    checksum_verified: bool = True

    def __init__(
        self,
        tree: QueryTree,
        data: Graph,
        pivots: np.ndarray,
        te: List[PairArrays],
        nte: List[Dict[int, PairArrays]],
        card: List[Tuple[np.ndarray, np.ndarray]],
        nte_built: bool = True,
    ) -> None:
        self.tree = tree
        self.data = data
        self._pivots = np.asarray(pivots, dtype=np.int64)
        self.te = te
        self.nte = nte
        self.card = card
        self.nte_built = nte_built
        # Lazily-built combined-key views for the batch engine (one
        # sorted ``key * scale + value`` array per NTE group); see
        # :meth:`nte_combined`.  Keyed ``(u, u_n)``.
        self._nte_combined: Dict[Tuple[int, int], np.ndarray] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_ceci(cls, ceci) -> "CompactCECI":
        """Freeze a built (filtered + refined) dict builder."""
        tree = ceci.tree
        n = tree.query.num_vertices
        te = [encode_pairs(ceci.te[u]) for u in range(n)]
        nte = [
            {
                int(u_n): encode_pairs(ceci.nte[u][u_n])
                for u_n in sorted(ceci.nte[u])
            }
            for u in range(n)
        ]
        card = []
        for u in range(n):
            table = ceci.cardinality[u]
            keys = np.fromiter(
                sorted(table), dtype=np.int64, count=len(table)
            )
            values = np.fromiter(
                (table[int(k)] for k in keys), dtype=np.int64, count=len(keys)
            )
            card.append((keys, values))
        pivots = np.fromiter(
            ceci.pivots, dtype=np.int64, count=len(ceci.pivots)
        )
        return cls(tree, ceci.data, pivots, te, nte, card, ceci.nte_built)

    # ------------------------------------------------------------------
    # CECIStore accessors
    # ------------------------------------------------------------------
    @property
    def pivots(self) -> np.ndarray:
        """Sorted pivot array (read-only view of the store)."""
        return self._pivots

    def te_values(self, u: int, v_p: int) -> np.ndarray:
        """Zero-copy sorted TE candidate slice of ``u`` under ``v_p``."""
        return lookup_pairs(self.te[u], v_p)

    def nte_values(self, u: int, u_n: int, v_n: int) -> np.ndarray:
        """Zero-copy sorted NTE candidate slice of ``u`` under NTE
        parent ``u_n``'s candidate ``v_n``."""
        triple = self.nte[u].get(u_n)
        if triple is None:
            return _EMPTY_I64
        return lookup_pairs(triple, v_n)

    @property
    def pair_scale(self) -> int:
        """Multiplier folding a ``(key, value)`` pair into one int64
        (``key * scale + value``); any value strictly greater than every
        data-vertex id works, and ``num_vertices`` is the smallest."""
        return max(int(self.data.num_vertices), 1)

    def nte_combined(self, u: int, u_n: int) -> np.ndarray:
        """The NTE group ``nte[u][u_n]`` as one globally-sorted array of
        combined ``key * pair_scale + value`` codes.

        Because the key column is sorted and each value block is sorted,
        the concatenation ``repeat(keys, block_len) * scale + values``
        is already sorted — so one ``searchsorted`` answers "is data
        edge ``(v_n, c)`` a candidate edge of this group" for a whole
        frontier of pairs at once.  Built lazily per group and memoised
        on the store (a shared store may build a view twice under a
        race; both results are identical arrays, so last-write-wins is
        benign).
        """
        cached = self._nte_combined.get((u, u_n))
        if cached is not None:
            return cached
        triple = self.nte[u].get(u_n)
        if triple is None:
            combined = _EMPTY_I64
        else:
            keys, offsets, values = triple
            if len(values) == 0:
                combined = _EMPTY_I64
            else:
                combined = (
                    np.repeat(keys, np.diff(offsets)) * self.pair_scale
                    + values
                )
        self._nte_combined[(u, u_n)] = combined
        return combined

    def cardinality_of(self, u: int, v: int) -> int:
        """Refinement cardinality of ``u -> v`` (0 if pruned)."""
        keys, values = self.card[u]
        i = int(np.searchsorted(keys, v))
        if i >= len(keys) or keys[i] != v:
            return 0
        return int(values[i])

    def cluster_cardinality(self, pivot: int) -> int:
        """Maximum embeddings in the cluster rooted at ``pivot``."""
        return self.cardinality_of(self.tree.root, pivot)

    def candidates(self, u: int) -> np.ndarray:
        """Sorted candidates of ``u``: the pivots for the root, else the
        distinct TE values (exactly the builder's frontier union)."""
        if u == self.tree.root:
            return self._pivots
        values = self.te[u][2]
        if len(values) == 0:
            return _EMPTY_I64
        return np.unique(values)

    def te_edge_count(self) -> int:
        """Distinct tree-edge candidate edges (Table 2 convention)."""
        return sum(_unique_pair_count(triple) for triple in self.te)

    def nte_edge_count(self) -> int:
        """Distinct non-tree-edge candidate edges."""
        return sum(
            _unique_pair_count(triple)
            for per_node in self.nte
            for triple in per_node.values()
        )

    def record_size(self, stats: MatchStats) -> None:
        """Publish index-size counters into ``stats`` (Table 2)."""
        stats.te_candidate_edges = self.te_edge_count()
        stats.nte_candidate_edges = self.nte_edge_count()

    def memory_bytes(self) -> int:
        """Exact payload footprint: the sum of all array bytes.  This is
        what the dict builder's ``memory_bytes`` model is compared
        against in ``BENCH_store.json``."""
        total = int(self._pivots.nbytes)
        for keys, offsets, values in self.te:
            total += int(keys.nbytes + offsets.nbytes + values.nbytes)
        for per_node in self.nte:
            for keys, offsets, values in per_node.values():
                total += int(keys.nbytes + offsets.nbytes + values.nbytes)
        for keys, values in self.card:
            total += int(keys.nbytes + values.nbytes)
        return total

    def __repr__(self) -> str:
        return (
            f"<CompactCECI clusters={len(self._pivots)} "
            f"bytes={self.memory_bytes()}>"
        )
