"""Instrumentation counters.

The paper's evaluation reports several internal quantities besides wall
clock: number of recursive calls (Figure 18 uses it as the proxy for total
search space), CECI index size in bytes against the theoretical
``|Eq| x |Eg|`` bound (Table 2), candidates removed by each filter, and the
phase breakdown of the run (Figures 15, 19, 20).  :class:`MatchStats`
collects all of them during one ``match`` run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Tuple

from ..observability.metrics import MetricSpec, MetricsRegistry

__all__ = [
    "MatchStats",
    "BYTES_PER_CANDIDATE_EDGE",
    "match_metric_specs",
]

#: The paper stores each candidate edge in 8 bytes ("8 bytes is used to
#: store each edge" — Section 6.4); index sizes are reported on that basis.
BYTES_PER_CANDIDATE_EDGE = 8


@dataclass
class MatchStats:
    """Counters populated while building a CECI and enumerating from it."""

    # --- enumeration ---------------------------------------------------
    recursive_calls: int = 0
    embeddings_found: int = 0
    intersections: int = 0
    edge_verifications: int = 0
    #: Frontier blocks expanded by the set-at-a-time batch engine.
    batch_blocks: int = 0
    #: Partial embeddings (frontier rows) expanded in batch.
    batch_rows: int = 0

    # --- intersection kernels & candidate cache --------------------------
    #: Intersections executed by each kernel (adaptive dispatch or forced).
    kernel_merge_calls: int = 0
    kernel_gallop_calls: int = 0
    kernel_bitset_calls: int = 0
    #: Fully-vectorised intersections over compact-store array slices.
    kernel_array_calls: int = 0
    #: Memo-cache outcomes for TE∩NTE intersections (see DESIGN.md §7).
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0

    # --- filtering / refinement ----------------------------------------
    candidates_initial: int = 0
    removed_by_label: int = 0
    removed_by_degree: int = 0
    removed_by_nlc: int = 0
    removed_by_cascade: int = 0
    removed_by_refinement: int = 0

    # --- index size -----------------------------------------------------
    te_candidate_edges: int = 0
    nte_candidate_edges: int = 0
    #: Measured resident bytes of the runtime index representation
    #: (flat arrays for ``store="compact"``, the boxed-container model
    #: for ``store="dict"``); 0 until an index is built.  Contrast with
    #: :attr:`index_bytes`, the paper's 8-bytes-per-candidate-edge
    #: accounting, which is representation-independent.
    memory_bytes: int = 0

    # --- resilience (budgets, fault recovery) ---------------------------
    #: Enumerations stopped early by a Budget axis.
    budget_stops: int = 0
    #: Work pieces (units/clusters) re-run after a failure.
    retries: int = 0
    #: Orphaned work pieces handed to a surviving executor.
    reassignments: int = 0
    #: Worker threads lost to crashes.
    worker_crashes: int = 0
    #: Simulated machines lost to crashes.
    machine_crashes: int = 0
    #: Coordinator messages dropped (and retransmitted).
    messages_dropped: int = 0
    #: Work-steal operations (distributed enumeration phase).
    steals: int = 0

    # --- phase timings (seconds) -----------------------------------------
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def index_bytes(self) -> int:
        """Actual CECI size in bytes (Table 2's first number)."""
        return (
            self.te_candidate_edges + self.nte_candidate_edges
        ) * BYTES_PER_CANDIDATE_EDGE

    def theoretical_bytes(self, num_query_edges: int, num_data_edges: int) -> int:
        """Theoretical bound ``|Eq| x |Eg| x 8`` (Table 2's parenthesized
        number)."""
        return num_query_edges * num_data_edges * BYTES_PER_CANDIDATE_EDGE

    def space_saved_percent(self, num_query_edges: int, num_data_edges: int) -> float:
        """Table 2's bracketed percentage."""
        theoretical = self.theoretical_bytes(num_query_edges, num_data_edges)
        if theoretical == 0:
            return 0.0
        return 100.0 * (1.0 - self.index_bytes / theoretical)

    def count_kernel(self, name: str) -> None:
        """Record one intersection executed by kernel ``name`` (the
        dispatcher's ``"trivial"`` passthrough is not counted)."""
        if name == "merge":
            self.kernel_merge_calls += 1
        elif name == "gallop":
            self.kernel_gallop_calls += 1
        elif name == "bitset":
            self.kernel_bitset_calls += 1
        elif name == "array":
            self.kernel_array_calls += 1

    def add_phase(self, phase: str, seconds: float) -> None:
        """Accumulate wall-clock time into a named phase."""
        self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + seconds

    def registry(self) -> MetricsRegistry:
        """Project these counters into a :class:`MetricsRegistry` — the
        spec table declares each field's kind and merge semantic, so the
        registry is the canonical typed form of a run's telemetry."""
        reg = MetricsRegistry(match_metric_specs())
        for spec in match_metric_specs():
            if spec.labeled:
                for label, value in getattr(self, spec.name).items():
                    reg.inc(spec.name, value, label=label)
            elif spec.kind == "gauge":
                reg.set_gauge(spec.name, getattr(self, spec.name))
            else:
                reg.inc(spec.name, getattr(self, spec.name))
        return reg

    def apply_registry(self, registry: MetricsRegistry) -> None:
        """Load field values back from a registry (inverse of
        :meth:`registry`)."""
        for spec in match_metric_specs():
            if spec.labeled:
                setattr(self, spec.name, dict(registry.labels(spec.name)))
            elif spec.kind == "gauge":
                setattr(self, spec.name, int(registry.get(spec.name)))
            else:
                setattr(self, spec.name, int(registry.get(spec.name)))

    def merge(self, other: "MatchStats") -> None:
        """Fold another stats object into this one (per-worker /
        per-machine merge).  Delegates to the single
        :meth:`MetricsRegistry.merge` implementation, which applies each
        field's declared semantic: work counters and phase timings sum,
        while ``memory_bytes`` keeps the peak (workers share one index,
        so the footprint is a max, not a sum)."""
        self.apply_registry(self.registry().merge(other.registry()))


#: Fields whose merge semantic is "peak survives" rather than "sum".
_PEAK_FIELDS = frozenset({"memory_bytes"})

_MATCH_METRIC_SPECS: Tuple[MetricSpec, ...] = ()


def match_metric_specs() -> Tuple[MetricSpec, ...]:
    """The spec table for :class:`MatchStats`, derived from its fields —
    adding a dataclass field is all it takes to get a merged, dumpable
    metric (no second copy of the list to keep in sync)."""
    global _MATCH_METRIC_SPECS
    if not _MATCH_METRIC_SPECS:
        specs = []
        for spec_field in fields(MatchStats):
            if spec_field.name == "phase_seconds":
                specs.append(
                    MetricSpec(
                        "phase_seconds",
                        kind="counter",
                        merge="sum",
                        labeled=True,
                        label_name="phase",
                        help="Wall-clock seconds per matching phase.",
                    )
                )
            elif spec_field.name in _PEAK_FIELDS:
                specs.append(
                    MetricSpec(
                        spec_field.name,
                        kind="gauge",
                        merge="max",
                        help="Measured resident bytes of the index (peak).",
                    )
                )
            else:
                specs.append(MetricSpec(spec_field.name))
        _MATCH_METRIC_SPECS = tuple(specs)
    return _MATCH_METRIC_SPECS
