"""Reverse-BFS refinement and cardinality — Algorithm 2 (Section 3.3).

Traversing the CECI in *reverse* matching order, each candidate pair
``(u, v)`` gets a **cardinality** — the maximum number of embeddings that
could match ``v`` to ``u``:

* leaves of the query tree have cardinality 1;
* otherwise ``cardinality(u, v) = Π_{u_c} Σ_{v_c} cardinality(u_c, v_c)``
  over tree children ``u_c`` and their candidates ``v_c`` adjacent to
  ``v`` (i.e. in ``TE_Candidates[u_c][v]``) that also appear in the
  NTE_Candidates of ``u_c``;
* a candidate that is missing from the NTE_Candidates of one of its
  non-tree edges can never close that edge: its cardinality is 0
  (Algorithm 2 lines 4-6 — this is how ``v_7`` dies in Figure 3).

Zero-cardinality candidates are guaranteed non-matches and are deleted
from the index together with their entries in all (NTE-)children
(lines 8-11).  The surviving root cardinalities are exactly the embedding
cluster workload estimates used by ExtremeCluster decomposition.
"""

from __future__ import annotations

from typing import Optional

from ..kernels import dispatch
from ..observability.tracer import NULL_TRACER
from .ceci import CECI
from .stats import MatchStats

__all__ = ["refine_ceci"]


def refine_ceci(
    ceci: CECI,
    stats: Optional[MatchStats] = None,
    kernel: str = "auto",
    tracer=None,
) -> CECI:
    """Run Algorithm 2 in place and return the same (now refined) CECI.

    The NTE membership constraint (lines 4-6) is evaluated as one k-way
    sorted intersection per query vertex — the candidate list against
    every NTE member list — through the adaptive kernel suite
    (``kernel`` as in :class:`~repro.core.enumeration.Enumerator`).
    An enabled ``tracer`` gets one child span per reverse-order vertex.
    """
    stats = stats if stats is not None else MatchStats()
    tracer = NULL_TRACER if tracer is None else tracer
    tree = ceci.tree
    if tracer.enabled:
        for u in tree.reverse_order():
            with tracer.span("refine:vertex", u=int(u)):
                _refine_vertex(ceci, u, stats, kernel)
    else:
        for u in tree.reverse_order():
            _refine_vertex(ceci, u, stats, kernel)
    ceci.record_size(stats)
    return ceci


def _refine_vertex(ceci: CECI, u: int, stats: MatchStats, kernel: str) -> None:
    """One reverse-order step of Algorithm 2: cardinalities for ``u``'s
    candidates, zero-cardinality deletion included."""
    tree = ceci.tree
    # In a TE-only index (CFLMatch's CPI shape) the NTE groups were
    # never built; only constrain against groups that exist.
    member_lists = [
        sorted(ceci.nte_member_set(u, u_n))
        for u_n in tree.nte_parents[u]
        if u_n in ceci.nte[u]
    ]
    if member_lists:
        name, alive = dispatch(
            [sorted(ceci.cand[u])] + member_lists, kernel
        )
        stats.count_kernel(name)
        survivors: Optional[set] = set(alive)
    else:
        survivors = None
    doomed = []
    for v in ceci.cand[u]:
        cardinality = _cardinality_of(ceci, u, v, survivors)
        if cardinality == 0:
            doomed.append(v)
        else:
            ceci.cardinality[u][v] = cardinality
    for v in doomed:
        stats.removed_by_refinement += 1
        ceci.remove_candidate(u, v)


def _cardinality_of(ceci, u, v, survivors) -> int:
    """Cardinality of pair ``(u, v)``; ``survivors`` is the intersection
    of the candidate set with every NTE member list (``None`` when the
    vertex has no built NTE groups)."""
    if survivors is not None and v not in survivors:
        return 0
    # Children "including non tree edge neighbors" (Algorithm 2 line 10):
    # matching v to u must leave at least one live candidate across every
    # outgoing non-tree edge.  NTE children sit later in the matching
    # order, hence earlier in the reverse pass, so their lists are final.
    for u_c in ceci.tree.nte_children[u]:
        group = ceci.nte[u_c].get(u)
        if group is not None and not group.get(v):
            return 0
    product = 1
    for u_c in ceci.tree.children[u]:
        child_cardinalities = ceci.cardinality[u_c]
        total = 0
        for v_c in ceci.te[u_c].get(v, ()):
            total += child_cardinalities.get(v_c, 0)
        if total == 0:
            return 0
        product *= total
    return product
