"""BFS query tree (Section 2.2).

A BFS traversal of the query graph from the root query vertex yields the
*query tree*.  Edges of the query graph that appear on the tree are **tree
edges (TE)**; the rest are **non-tree edges (NTE)**.  Every non-root vertex
has exactly one tree parent.  For a non-tree edge, "the node appearing
earlier in the matching order acts as the parent and the other as child"
(Section 3.2), so NTE parent/child roles are resolved against the matching
order, not the BFS level.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Sequence, Tuple

from ..graph import Graph

__all__ = ["QueryTree"]


class QueryTree:
    """The query tree plus the matching order over it.

    Parameters
    ----------
    query:
        Connected query graph.
    root:
        Root query vertex (see :mod:`repro.core.root_selection`).
    order:
        Matching order.  Must start at ``root`` and be *tree-compatible*:
        every vertex appears after its BFS-tree parent.  Defaults to the
        plain BFS order.
    parents:
        Optional explicit tree parents (``parents[root] == -1``).  By
        default the tree is re-derived by BFS with ascending-id
        tie-breaking, which is deterministic but *labeling-dependent*:
        relabeling the query can flip which of two same-level neighbors
        becomes a vertex's parent.  Callers transplanting an index built
        for an isomorphic query (the service-layer canonical cache)
        pass the mapped parents so the transplanted tree is exactly the
        relabeled original.  Every parent must be a query neighbor and
        the edges must form one tree rooted at ``root``.
    """

    def __init__(
        self,
        query: Graph,
        root: int,
        order: Sequence[int] | None = None,
        parents: Sequence[int] | None = None,
    ) -> None:
        if not query.is_connected():
            raise ValueError("query graph must be connected")
        if not 0 <= root < query.num_vertices:
            raise ValueError(f"root {root} not a query vertex")
        self.query = query
        self.root = root

        if parents is not None:
            parent = list(parents)
            level = self._validate_parents(parent)
            bfs = sorted(range(query.num_vertices), key=lambda u: (level[u], u))
        else:
            # BFS from the root; children explored in ascending id for
            # determinism.  parent[root] == -1.
            parent = [-1] * query.num_vertices
            level = [0] * query.num_vertices
            bfs = []
            seen = {root}
            queue = deque([root])
            while queue:
                u = queue.popleft()
                bfs.append(u)
                for w in query.neighbors(u):
                    if w not in seen:
                        seen.add(w)
                        parent[w] = u
                        level[w] = level[u] + 1
                        queue.append(w)
        self.parent: Tuple[int, ...] = tuple(parent)
        self.level: Tuple[int, ...] = tuple(level)
        self.bfs_order: Tuple[int, ...] = tuple(bfs)

        if order is None:
            order = self.bfs_order
        self._validate_order(order)
        self.order: Tuple[int, ...] = tuple(order)
        self.position: Dict[int, int] = {u: i for i, u in enumerate(self.order)}

        children: List[List[int]] = [[] for _ in range(query.num_vertices)]
        for u in self.order:
            p = parent[u]
            if p >= 0:
                children[p].append(u)
        self.children: Tuple[Tuple[int, ...], ...] = tuple(tuple(c) for c in children)

        tree_edges: List[Tuple[int, int]] = []
        non_tree_edges: List[Tuple[int, int]] = []
        for s, d in query.edges:
            if parent[d] == s:
                tree_edges.append((s, d))
            elif parent[s] == d:
                tree_edges.append((d, s))
            else:
                # NTE: orient from the earlier vertex in the matching
                # order (parent role) to the later one (child role).
                if self.position[s] < self.position[d]:
                    non_tree_edges.append((s, d))
                else:
                    non_tree_edges.append((d, s))
        self.tree_edges: Tuple[Tuple[int, int], ...] = tuple(sorted(tree_edges))
        self.non_tree_edges: Tuple[Tuple[int, int], ...] = tuple(sorted(non_tree_edges))

        nte_parents: List[List[int]] = [[] for _ in range(query.num_vertices)]
        nte_children: List[List[int]] = [[] for _ in range(query.num_vertices)]
        for u_n, u in self.non_tree_edges:
            nte_parents[u].append(u_n)
            nte_children[u_n].append(u)
        #: For each query vertex ``u``: NTE neighbors appearing earlier in
        #: the matching order (whose match is already fixed when ``u`` is
        #: being matched).
        self.nte_parents: Tuple[Tuple[int, ...], ...] = tuple(tuple(p) for p in nte_parents)
        #: Inverse view of :attr:`nte_parents`.
        self.nte_children: Tuple[Tuple[int, ...], ...] = tuple(tuple(c) for c in nte_children)

    def _validate_parents(self, parent: List[int]) -> List[int]:
        """Check explicit parents form one neighbor-tree rooted at
        ``root``; returns the derived levels."""
        n = self.query.num_vertices
        if len(parent) != n:
            raise ValueError("parents must list one entry per query vertex")
        if parent[self.root] != -1:
            raise ValueError("parents[root] must be -1")
        level = [-1] * n
        level[self.root] = 0
        for u in range(n):
            if u == self.root:
                continue
            p = parent[u]
            if not 0 <= p < n or not self.query.has_edge(u, p):
                raise ValueError(
                    f"parent {p} of {u} is not a query neighbor"
                )
        for u in range(n):
            if level[u] >= 0:
                continue
            chain = []
            w = u
            while level[w] < 0:
                if w in chain:
                    raise ValueError("parents contain a cycle")
                chain.append(w)
                w = parent[w]
            depth = level[w]
            for back in reversed(chain):
                depth += 1
                level[back] = depth
        return level

    def _validate_order(self, order: Sequence[int]) -> None:
        n = self.query.num_vertices
        if len(order) != n or set(order) != set(range(n)):
            raise ValueError("matching order must be a permutation of query vertices")
        if order[0] != self.root:
            raise ValueError("matching order must start at the root")
        position = {u: i for i, u in enumerate(order)}
        for u in order[1:]:
            if position[self.parent[u]] >= position[u]:
                raise ValueError(
                    f"matching order places {u} before its tree parent {self.parent[u]}"
                )

    # ------------------------------------------------------------------
    def reverse_order(self) -> Tuple[int, ...]:
        """The matching order reversed — the refinement pass direction."""
        return tuple(reversed(self.order))

    def is_leaf(self, u: int) -> bool:
        """Whether ``u`` has no tree children."""
        return not self.children[u]

    def __repr__(self) -> str:
        return (
            f"<QueryTree root={self.root} order={list(self.order)} "
            f"TE={len(self.tree_edges)} NTE={len(self.non_tree_edges)}>"
        )
