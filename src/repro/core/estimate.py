"""Approximate subgraph counting on top of CECI.

Section 7: "approximate subgraph count estimators calculate the number
of a given query graph in data graphs [3, 6, 12].  Although these works
have better scalability, they do not provide the individual embeddings
unlike CECI system."  This module closes the loop the other way: the
refined CECI *is* an excellent proposal structure for estimation,
because the per-candidate cardinalities from Algorithm 2 give exact
upper-bound weights over the search tree.

Two estimators:

* :func:`cardinality_bound` — the deterministic upper bound
  ``Σ_pivots cardinality(u_s, v_s)`` (free once the index is built);
* :func:`estimate_embeddings` — unbiased importance sampling: random
  root-to-leaf walks through the candidate tree, each step drawn
  proportionally to cardinality, each completed walk weighted by the
  inverse of its path probability (a Knuth/Chen-style tree-size
  estimator guided by CECI's cardinalities).

The estimator ignores the injectivity and symmetry constraints while
walking and verifies them per sample, so it is exact in expectation for
the same embedding set ``match()`` lists (with automorphism breaking
off — estimates count *all* automorphic listings; divide by
``SymmetryBreaker.automorphism_count()`` for the broken count on
symmetric queries).
"""

from __future__ import annotations

import random
from typing import List, Tuple

from .matcher import CECIMatcher

__all__ = [
    "cardinality_bound",
    "estimate_embeddings",
    "level_cardinalities",
    "plan_facts",
    "store_cardinality_bound",
    "EstimateResult",
]


class EstimateResult:
    """Outcome of a sampling run."""

    def __init__(self, estimate: float, samples: int, hits: int, bound: int) -> None:
        self.estimate = estimate
        self.samples = samples
        self.hits = hits
        self.bound = bound

    def __repr__(self) -> str:
        return (
            f"<EstimateResult ~{self.estimate:.1f} embeddings "
            f"({self.hits}/{self.samples} walks hit, bound {self.bound})>"
        )


def cardinality_bound(matcher: CECIMatcher) -> int:
    """Deterministic upper bound on the number of (unbroken) embeddings:
    the sum of cluster cardinalities."""
    return store_cardinality_bound(matcher.build())


def store_cardinality_bound(store) -> int:
    """:func:`cardinality_bound` computed directly from a built store
    (dict-backed or compact) — what the service uses, since a cache hit
    has a store but no matcher."""
    return int(sum(store.cluster_cardinality(pivot) for pivot in store.pivots))


def level_cardinalities(store) -> List[Tuple[int, int]]:
    """Per-level candidate cardinalities along the matching order:
    ``[(query vertex, |refined candidate set|), ...]`` — the sizes the
    enumerator actually walks, after filtering and refinement."""
    return [
        (int(u), int(len(store.candidates(u))))
        for u in store.tree.order
    ]


def plan_facts(store, query=None) -> dict:
    """The plan a built index embodies, as a JSON-ready dict.

    Works from the store alone so the service can explain cache *hits*
    (which never construct a matcher).  ``root_score`` here is the
    post-filter score ``|candidates(root)| / degree(root)`` — the same
    cost function root selection minimized, evaluated on the refined
    sets; a matcher that ran the selection itself overrides it with the
    pre-filter value (see ``CECIMatcher.plan_facts``).
    """
    tree = store.tree
    query = tree.query if query is None else query
    root = int(tree.root)
    root_candidates = int(len(store.candidates(root)))
    return {
        "root": root,
        "root_candidates": root_candidates,
        "root_score": root_candidates / (query.degree(root) or 1),
        "order": [int(u) for u in tree.order],
        "level_candidates": [
            [u, n] for u, n in level_cardinalities(store)
        ],
        "clusters": int(len(store.pivots)),
        "cardinality_bound": store_cardinality_bound(store),
    }


def estimate_embeddings(
    matcher: CECIMatcher,
    samples: int = 1000,
    seed: int = 0,
) -> EstimateResult:
    """Importance-sampled estimate of the embedding count.

    Each walk picks a pivot with probability proportional to its cluster
    cardinality, then at every level picks one matching node with
    probability proportional to its refined cardinality.  A walk that
    reaches a full, injective, edge-consistent mapping contributes the
    inverse of its selection probability; dead walks contribute zero.
    The estimator is unbiased for the count of unbroken embeddings.
    """
    if samples < 1:
        raise ValueError("samples must be >= 1")
    ceci = matcher.build()
    enumerator = matcher.enumerator()
    tree = ceci.tree
    order = tree.order
    rng = random.Random(seed)

    pivots = [int(p) for p in ceci.pivots if ceci.cluster_cardinality(p) > 0]
    weights = [float(ceci.cluster_cardinality(p)) for p in pivots]
    total_weight = sum(weights)
    bound = int(total_weight)
    if not pivots or total_weight == 0.0:
        return EstimateResult(0.0, samples, 0, 0)

    accumulated = 0.0
    hits = 0
    for _ in range(samples):
        # pick the pivot ∝ cluster cardinality
        pick = rng.random() * total_weight
        index = 0
        while pick > weights[index]:
            pick -= weights[index]
            index += 1
        pivot = pivots[index]
        probability = weights[index] / total_weight

        mapping = [-1] * tree.query.num_vertices
        mapping[tree.root] = pivot
        used = {pivot}
        alive = True
        for depth in range(1, len(order)):
            u = order[depth]
            candidates = enumerator.matching_nodes(u, mapping)
            live: List[Tuple[int, float]] = []
            for v in candidates:
                v = int(v)
                if v in used:
                    continue
                weight = float(ceci.cardinality_of(u, v))
                if weight > 0.0:
                    live.append((v, weight))
            level_weight = sum(w for _, w in live)
            if level_weight == 0.0:
                alive = False
                break
            pick = rng.random() * level_weight
            for v, w in live:
                if pick <= w:
                    chosen, chosen_weight = v, w
                    break
                pick -= w
            probability *= chosen_weight / level_weight
            mapping[u] = chosen
            used.add(chosen)
        if alive:
            hits += 1
            accumulated += 1.0 / probability
    return EstimateResult(accumulated / samples, samples, hits, bound)
