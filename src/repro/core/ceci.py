"""The Compact Embedding Cluster Index structure (Section 3.1).

A CECI mirrors the query tree.  For each query vertex ``u`` it stores:

* ``TE_Candidates`` — key/value pairs ``<v_p, [v...]>`` where ``v_p`` is a
  candidate of ``u``'s tree parent and the value is the sorted list of
  candidates of ``u`` adjacent to ``v_p``;
* ``NTE_Candidates`` — for each non-tree edge ``(u_n, u)`` (with ``u_n``
  earlier in the matching order), key/value pairs ``<v_n, [v...]>`` keyed
  by candidates of ``u_n``;
* the per-candidate ``cardinality`` computed by reverse-BFS refinement,
  which doubles as the workload estimate for cluster decomposition.

The value lists are kept sorted so enumeration can use ordered merge
intersection — the paper's C++ implementation sorts its STL vectors for
binary search / ``lower_bound`` for the same reason.
"""

from __future__ import annotations

import sys
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..graph import Graph
from .query_tree import QueryTree
from .stats import MatchStats

if TYPE_CHECKING:  # pragma: no cover - import for annotations only
    from .store import CompactCECI

__all__ = ["CECI", "intersect_sorted"]

TECandidates = Dict[int, List[int]]
NTECandidates = Dict[int, Dict[int, List[int]]]

#: Shared empty sequence returned by the store accessors for missing keys.
_EMPTY: Tuple[int, ...] = ()


class CECI:
    """The built index; create it via :func:`repro.core.filtering.build_ceci`."""

    def __init__(self, tree: QueryTree, data: Graph) -> None:
        self.tree = tree
        self.data = data
        n = tree.query.num_vertices
        #: Pivot vertices — candidates of the root query vertex; each
        #: identifies one embedding cluster.  Backed by a mirror set
        #: (``_pivot_set``) so cascade deletes are O(1); the sorted list
        #: view is rebuilt lazily on read.
        self._pivot_set: Set[int] = set()
        self._pivot_sorted: Optional[List[int]] = None
        #: ``te[u][v_p]`` — sorted candidates of ``u`` adjacent to parent
        #: candidate ``v_p``.  Empty dict for the root.
        self.te: List[TECandidates] = [dict() for _ in range(n)]
        #: ``nte[u][u_n][v_n]`` — sorted candidates of ``u`` adjacent to
        #: NTE-parent candidate ``v_n``.
        self.nte: List[NTECandidates] = [dict() for _ in range(n)]
        #: Current candidate set of each query vertex.
        self.cand: List[Set[int]] = [set() for _ in range(n)]
        #: ``cardinality[u][v]`` — refinement's upper bound on embeddings
        #: extending the partial match ``u -> v`` downward.
        self.cardinality: List[Dict[int, int]] = [dict() for _ in range(n)]
        #: Set views of the NTE value lists, built by :meth:`freeze` once
        #: the index is final; enumeration uses them for O(1) membership.
        self.nte_sets: Optional[List[Dict[int, Dict[int, frozenset]]]] = None
        #: Set views of the TE value lists (also built by :meth:`freeze`).
        self.te_sets: Optional[List[Dict[int, frozenset]]] = None
        #: False for a TE-only index (CFLMatch's CPI shape, built with
        #: ``build_nte=False``): intersection-based enumeration then
        #: falls back to data adjacency lists for non-tree edges.
        self.nte_built: bool = True

    # ------------------------------------------------------------------
    # Pivots (sorted view over an O(1)-delete mirror set)
    # ------------------------------------------------------------------
    @property
    def pivots(self) -> List[int]:
        """Sorted pivot list, rebuilt lazily after mutation.  Treat the
        returned list as read-only; assign to ``pivots`` (or go through
        :meth:`remove_candidate`) to mutate."""
        if self._pivot_sorted is None:
            self._pivot_sorted = sorted(self._pivot_set)
        return self._pivot_sorted

    @pivots.setter
    def pivots(self, values: Iterable[int]) -> None:
        self._pivot_set = set(values)
        self._pivot_sorted = None

    # ------------------------------------------------------------------
    # Mutation helpers shared by filtering and refinement
    # ------------------------------------------------------------------
    def remove_candidate(self, u: int, v: int) -> None:
        """Remove data vertex ``v`` as a candidate of query vertex ``u``
        everywhere: from the candidate set, from ``u``'s own TE/NTE value
        lists, and as a key from the TE/NTE maps of ``u``'s (NTE-)children.
        """
        self.nte_sets = None  # mutation invalidates the frozen views
        self.te_sets = None
        self.cand[u].discard(v)
        self.cardinality[u].pop(v, None)
        if u == self.tree.root and v in self._pivot_set:
            self._pivot_set.discard(v)
            self._pivot_sorted = None
        for values in self.te[u].values():
            _remove_sorted(values, v)
        for groups in self.nte[u].values():
            for values in groups.values():
                _remove_sorted(values, v)
        for u_c in self.tree.children[u]:
            self.te[u_c].pop(v, None)
        for u_c in self.tree.nte_children[u]:
            group = self.nte[u_c].get(u)
            if group is not None:
                group.pop(v, None)

    def freeze(self) -> None:
        """Build set views of the TE and NTE lists.  Call once after the
        index is final (post-refinement); any later mutation invalidates
        the views, so :meth:`remove_candidate` clears them.

        Only query vertices with incident non-tree edges are ever probed
        by intersection, so only their entries get set views — for
        tree-like queries this is free.
        """
        self.nte_sets = [
            {
                u_n: {v_n: frozenset(values) for v_n, values in groups.items()}
                for u_n, groups in per_node.items()
            }
            for per_node in self.nte
        ]
        self.te_sets = [
            {v_p: frozenset(values) for v_p, values in self.te[u].items()}
            if self.tree.nte_parents[u]
            else {}
            for u in range(len(self.te))
        ]

    # ------------------------------------------------------------------
    # CECIStore accessors — the read interface shared with CompactCECI
    # so enumeration / clusters / estimation run against either
    # representation (see repro.core.store).
    # ------------------------------------------------------------------
    def te_values(self, u: int, v_p: int) -> Sequence[int]:
        """Sorted TE candidates of ``u`` under parent candidate ``v_p``
        (empty sequence when ``v_p`` keys nothing)."""
        return self.te[u].get(v_p, _EMPTY)

    def nte_values(self, u: int, u_n: int, v_n: int) -> Sequence[int]:
        """Sorted NTE candidates of ``u`` under NTE parent ``u_n``'s
        candidate ``v_n`` (empty sequence when unkeyed)."""
        groups = self.nte[u].get(u_n)
        if groups is None:
            return _EMPTY
        return groups.get(v_n, _EMPTY)

    def cardinality_of(self, u: int, v: int) -> int:
        """Refinement cardinality of the pair ``u -> v`` (0 if pruned)."""
        return self.cardinality[u].get(v, 0)

    def memory_bytes(self) -> int:
        """Resident-size model of the index payload: ``sys.getsizeof``
        for every container plus the boxed-int cost of each stored key
        and value.  :meth:`CompactCECI.memory_bytes` counts raw array
        bytes for the same payload; the ratio between the two is the
        footprint delta reported in ``BENCH_store.json``."""
        int_size = sys.getsizeof(1 << 30)  # a boxed int of typical magnitude
        total = sys.getsizeof(self._pivot_set) + int_size * len(self._pivot_set)
        for per_node in self.te:
            total += sys.getsizeof(per_node)
            for values in per_node.values():
                total += sys.getsizeof(values) + int_size * (len(values) + 1)
        for per_node in self.nte:
            total += sys.getsizeof(per_node)
            for groups in per_node.values():
                total += sys.getsizeof(groups)
                for values in groups.values():
                    total += sys.getsizeof(values) + int_size * (len(values) + 1)
        for card in self.cardinality:
            total += sys.getsizeof(card) + int_size * 2 * len(card)
        return total

    def compact(self, tracer=None) -> "CompactCECI":
        """Freeze this builder into the flat-array store (the second
        phase of the index lifecycle — see DESIGN.md §8).  An enabled
        ``tracer`` gets one ``freeze:pack`` span around the packing."""
        from .store import CompactCECI

        if tracer is not None and tracer.enabled:
            with tracer.span("freeze:pack", vertices=len(self.tree.order)):
                return CompactCECI.from_ceci(self)
        return CompactCECI.from_ceci(self)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def candidates(self, u: int) -> Tuple[int, ...]:
        """Sorted current candidates of ``u``."""
        return tuple(sorted(self.cand[u]))

    def te_union(self, u: int) -> Set[int]:
        """Algorithm 1 line 3: the frontier of ``u`` is the union of its
        TE_Candidates value lists (the pivots for the root).  Stale
        vertices whose every parent key was cascade-deleted drop out
        automatically."""
        if u == self.tree.root:
            return set(self._pivot_set)
        union: Set[int] = set()
        for values in self.te[u].values():
            union.update(values)
        return union

    def frontier_union(self, u: int) -> Set[int]:
        """Frontier for ``u`` acting as an NTE parent: union of its TE
        *and* NTE candidates (Section 3.2, NTE construction)."""
        union = self.te_union(u)
        for groups in self.nte[u].values():
            for values in groups.values():
                union.update(values)
        return union

    def te_edge_count(self) -> int:
        """Distinct tree-edge candidate edges in the index.

        A data edge ``(a, b)`` may be keyed under both ``a`` and ``b``
        for the same query edge (both endpoints can be candidates of
        either side on weakly-labeled graphs); the paper stores — and
        Table 2 counts — each candidate edge once, so the count is of
        unique undirected pairs per query vertex.
        """
        total = 0
        for per_node in self.te:
            pairs = set()
            for key, values in per_node.items():
                for v in values:
                    pairs.add((key, v) if key < v else (v, key))
            total += len(pairs)
        return total

    def nte_edge_count(self) -> int:
        """Distinct non-tree-edge candidate edges (same convention as
        :meth:`te_edge_count`)."""
        total = 0
        for per_node in self.nte:
            for groups in per_node.values():
                pairs = set()
                for key, values in groups.items():
                    for v in values:
                        pairs.add((key, v) if key < v else (v, key))
                total += len(pairs)
        return total

    def record_size(self, stats: MatchStats) -> None:
        """Publish index-size counters into ``stats`` (Table 2)."""
        stats.te_candidate_edges = self.te_edge_count()
        stats.nte_candidate_edges = self.nte_edge_count()

    def nte_member_set(self, u: int, u_n: int) -> Set[int]:
        """Union of NTE value lists of ``u`` under NTE parent ``u_n`` — a
        candidate of ``u`` absent from this set can never satisfy the
        non-tree edge ``(u_n, u)`` (Algorithm 2, lines 4-6)."""
        members: Set[int] = set()
        for values in self.nte[u].get(u_n, {}).values():
            members.update(values)
        return members

    def cluster_cardinality(self, pivot: int) -> int:
        """Maximum embeddings in the cluster rooted at ``pivot``
        (Section 4.3): ``cardinality(u_s, v_s)``."""
        return self.cardinality[self.tree.root].get(pivot, 0)

    def __repr__(self) -> str:
        return (
            f"<CECI clusters={len(self.pivots)} "
            f"TE={self.te_edge_count()} NTE={self.nte_edge_count()}>"
        )


def _remove_sorted(values: List[int], v: int) -> None:
    """Delete ``v`` from a sorted list if present (binary search)."""
    import bisect

    i = bisect.bisect_left(values, v)
    if i < len(values) and values[i] == v:
        del values[i]


def intersect_sorted(lists: List[List[int]]) -> List[int]:
    """k-way intersection of sorted integer lists.

    The shortest list drives the probe loop; the others are scanned with a
    resumable ``bisect`` pointer each.  This is the enumeration primitive
    the paper contrasts with per-edge verification (Lemma 2).

    Kept as the stable historical entry point; the adaptive kernel suite
    in :mod:`repro.kernels` supersedes it on the enumeration hot path.
    Only *indices* are ordered by length — the caller's list-of-lists is
    never rebound or reordered — and when the kernels' debug mode is on
    (:func:`repro.kernels.set_check_sorted`) unsorted inputs raise.
    """
    import bisect

    from ..kernels import maybe_assert_sorted

    maybe_assert_sorted(lists)
    if not lists:
        return []
    if len(lists) == 1:
        return list(lists[0])
    order = sorted(range(len(lists)), key=lambda i: len(lists[i]))
    smallest = lists[order[0]]
    rest = [lists[i] for i in order[1:]]
    pointers = [0] * len(rest)
    out: List[int] = []
    for v in smallest:
        keep = True
        for i, other in enumerate(rest):
            j = bisect.bisect_left(other, v, pointers[i])
            pointers[i] = j
            if j >= len(other) or other[j] != v:
                keep = False
                break
        if keep:
            out.append(v)
    return out
