"""CECI core: the paper's primary contribution."""

from .automorphism import (
    SymmetryBreaker,
    automorphisms,
    equivalence_groups,
    gk_conditions,
)
from .ceci import CECI, intersect_sorted
from .clusters import WorkUnit, clusters_of, decompose_extreme_clusters
from .database import ContainmentResult, GraphDatabase
from .estimate import EstimateResult, cardinality_bound, estimate_embeddings
from .enumeration import Embedding, Enumerator
from .filtering import FilterConfig, build_ceci
from .matcher import CECIMatcher, count_embeddings, find_embedding, match
from .matching_order import (
    bfs_order,
    edge_ranked_order,
    make_order,
    path_ranked_order,
)
from .query_tree import QueryTree
from .persist import (
    dump_ceci_bytes,
    dump_store_bytes,
    load_ceci,
    load_ceci_bytes,
    load_store_bytes,
    save_ceci,
)
from .refinement import refine_ceci
from .root_selection import initial_candidates, select_root
from .stats import MatchStats
from .store import STORE_CHOICES, CECIStore, CompactCECI

__all__ = [
    "CECI",
    "CECIMatcher",
    "CECIStore",
    "CompactCECI",
    "STORE_CHOICES",
    "GraphDatabase",
    "EstimateResult",
    "ContainmentResult",
    "Embedding",
    "Enumerator",
    "FilterConfig",
    "MatchStats",
    "QueryTree",
    "SymmetryBreaker",
    "WorkUnit",
    "automorphisms",
    "bfs_order",
    "build_ceci",
    "clusters_of",
    "cardinality_bound",
    "count_embeddings",
    "decompose_extreme_clusters",
    "edge_ranked_order",
    "equivalence_groups",
    "dump_ceci_bytes",
    "dump_store_bytes",
    "estimate_embeddings",
    "find_embedding",
    "gk_conditions",
    "initial_candidates",
    "intersect_sorted",
    "load_ceci",
    "load_ceci_bytes",
    "load_store_bytes",
    "make_order",
    "match",
    "path_ranked_order",
    "refine_ceci",
    "save_ceci",
    "select_root",
]
