"""The five unlabeled query graphs of Figure 6.

The paper reuses the query set of PsgL/TTJ/DualSim.  Edge counts are
pinned by Table 2's theoretical CECI sizes (``|Eq| x |Eg| x 8`` bytes):

* **QG1** — triangle (3 vertices, 3 edges; backtracking depth 3);
* **QG2** — square, the 4-cycle (4 vertices, 4 edges);
* **QG3** — diamond, a 4-cycle plus one chord (4 vertices, 5 edges;
  depth 4);
* **QG4** — 4-clique (4 vertices, 6 edges);
* **QG5** — house, a square with a triangular roof (5 vertices, 6
  edges; depth 5).

All vertices carry the same label 0, as in the paper.
"""

from __future__ import annotations

from typing import Dict

from ..graph import Graph

__all__ = ["QG1", "QG2", "QG3", "QG4", "QG5", "QUERY_GRAPHS", "query_graph"]


def _qg(name: str, n: int, edges) -> Graph:
    graph = Graph(n, edges, name=name)
    return graph


#: Triangle.
QG1 = _qg("QG1", 3, [(0, 1), (1, 2), (0, 2)])
#: Square (4-cycle).
QG2 = _qg("QG2", 4, [(0, 1), (1, 2), (2, 3), (3, 0)])
#: Diamond (4-cycle + chord).
QG3 = _qg("QG3", 4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
#: 4-clique.
QG4 = _qg("QG4", 4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
#: House (square + triangular roof).
QG5 = _qg("QG5", 5, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (1, 4)])

#: Name -> query graph.
QUERY_GRAPHS: Dict[str, Graph] = {
    "QG1": QG1,
    "QG2": QG2,
    "QG3": QG3,
    "QG4": QG4,
    "QG5": QG5,
}


def query_graph(name: str) -> Graph:
    """Look up a Figure 6 query graph by name."""
    try:
        return QUERY_GRAPHS[name]
    except KeyError:
        raise ValueError(f"unknown query graph {name!r}") from None
