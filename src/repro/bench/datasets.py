"""Scaled-down analogs of the Table 1 datasets.

The paper's graphs range up to 1.4B vertices / 12.9B edges — far beyond
a pure-Python enumeration budget.  Each analog keeps the original's
*shape* at roughly 1/1000 scale: generator family (power-law for the
SNAP social/citation graphs, Kronecker for the Graph500 synthetic),
relative density, directedness, skew regime, and label regime (HU is
dense and multi-labeled; RD gets 100 injected labels in the Figure 9
bench).  DESIGN.md Section 2 records the substitution rationale.

Analogs are deterministic (fixed seeds) and cached per process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from ..graph import Graph, dense_labeled, kronecker, power_law

__all__ = ["DatasetSpec", "DATASETS", "load_dataset", "dataset_names", "table1_rows"]


@dataclass(frozen=True)
class DatasetSpec:
    """One Table 1 row plus the recipe for its analog."""

    abbr: str
    full_name: str
    paper_vertices: str
    paper_edges: str
    directed: bool
    build: Callable[[], Graph]


def _directed(graph: Graph, name: str) -> Graph:
    """Stamp the directedness flag (matching uses symmetric adjacency
    either way, exactly like the reference implementation)."""
    return Graph(
        graph.num_vertices,
        graph.edges,
        [graph.labels_of(v) for v in graph.vertices()],
        directed=True,
        name=name,
    )


DATASETS: Dict[str, DatasetSpec] = {
    "CP": DatasetSpec(
        "CP", "citPatent", "3.77M", "16.5M", True,
        lambda: _directed(power_law(3770, 16, seed=101, name="CP", min_edges_per_vertex=1), "CP"),
    ),
    "FS": DatasetSpec(
        "FS", "Friendster", "65.6M", "1.8B", False,
        lambda: power_law(5000, 16, seed=102, name="FS", min_edges_per_vertex=1),
    ),
    "HU": DatasetSpec(
        "HU", "Human", "4.6K", "0.7M", False,
        lambda: dense_labeled(2000, avg_degree=40, num_labels=60,
                              max_labels_per_vertex=3, seed=103, name="HU"),
    ),
    "LJ": DatasetSpec(
        "LJ", "live-journal", "3.99M", "34.68M", False,
        lambda: power_law(1800, 8, seed=104, name="LJ", min_edges_per_vertex=1),
    ),
    "OK": DatasetSpec(
        "OK", "Orkut", "3.0M", "117.2M", False,
        lambda: power_law(3000, 24, seed=105, name="OK", min_edges_per_vertex=1),
    ),
    "WG": DatasetSpec(
        "WG", "Webgoogle", "0.9M", "8.6M", True,
        lambda: _directed(kronecker(8, 4, seed=106, name="WG"), "WG"),
    ),
    "WT": DatasetSpec(
        "WT", "wiki-talk", "2.3M", "5.0M", True,
        lambda: _directed(power_law(2300, 4, seed=107, name="WT", min_edges_per_vertex=1), "WT"),
    ),
    "YH": DatasetSpec(
        "YH", "Yahoo", "1.4B", "12.9B", False,
        lambda: power_law(7000, 16, seed=108, name="YH", min_edges_per_vertex=1),
    ),
    "YT": DatasetSpec(
        "YT", "Youtube", "1.1M", "3.0M", False,
        lambda: power_law(1100, 8, seed=109, name="YT", min_edges_per_vertex=1),
    ),
    "RD": DatasetSpec(
        "RD", "rand_500k", "0.5M", "2.0M", False,
        lambda: kronecker(12, 4, seed=110, name="RD"),
    ),
}

_CACHE: Dict[str, Graph] = {}


def warm(graph: Graph) -> Graph:
    """Force the graph's lazy caches (neighbor label counts) so the
    first matcher benchmarked against it is not charged for them."""
    if graph.num_vertices:
        graph.neighbor_label_counts(0)
    return graph


def load_dataset(abbr: str) -> Graph:
    """Build (or fetch from cache) one dataset analog, caches warmed."""
    spec = DATASETS.get(abbr)
    if spec is None:
        raise ValueError(f"unknown dataset {abbr!r}")
    if abbr not in _CACHE:
        _CACHE[abbr] = warm(spec.build())
    return _CACHE[abbr]


def dataset_names() -> List[str]:
    """All Table 1 abbreviations."""
    return list(DATASETS)


def table1_rows() -> List[Tuple[str, str, str, str, str, int, int]]:
    """Rows mirroring Table 1, extended with the analog's actual size:
    (abbr, full name, paper |V|, paper |E|, directed, analog |V|,
    analog |E|)."""
    rows = []
    for abbr, spec in DATASETS.items():
        graph = load_dataset(abbr)
        rows.append(
            (
                abbr,
                spec.full_name,
                spec.paper_vertices,
                spec.paper_edges,
                "Y" if spec.directed else "N",
                graph.num_vertices,
                graph.num_edges,
            )
        )
    return rows
