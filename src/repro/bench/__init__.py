"""Benchmark harness substrate: datasets, queries, result tables."""

from .datasets import (
    warm,
    DATASETS,
    DatasetSpec,
    dataset_names,
    load_dataset,
    table1_rows,
)
from .queries import QG1, QG2, QG3, QG4, QG5, QUERY_GRAPHS, query_graph
from .runner import ResultTable, geometric_mean, timed

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "QG1",
    "QG2",
    "QG3",
    "QG4",
    "QG5",
    "QUERY_GRAPHS",
    "ResultTable",
    "dataset_names",
    "geometric_mean",
    "load_dataset",
    "query_graph",
    "table1_rows",
    "timed",
    "warm",
]
