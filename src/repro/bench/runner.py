"""Shared helpers for the benchmark harness.

Every ``benchmarks/test_*`` file regenerates one table or figure of the
paper; these helpers time algorithms, build the paper-style rows, and
render them so ``pytest benchmarks/ --benchmark-only -s`` prints output
directly comparable to the paper's plots.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["timed", "Row", "ResultTable", "geometric_mean"]


def timed(fn: Callable[[], object]) -> Tuple[object, float]:
    """Run ``fn`` once; return (result, elapsed seconds)."""
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


Row = Dict[str, object]


@dataclass
class ResultTable:
    """A printable experiment result (one per figure/table)."""

    title: str
    columns: Sequence[str]
    rows: List[Row] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, **values: object) -> None:
        """Append one row (keyword per column)."""
        self.rows.append(values)

    def note(self, text: str) -> None:
        """Attach a free-form note printed under the table."""
        self.notes.append(text)

    def render(self) -> str:
        """Fixed-width text rendering."""
        headers = list(self.columns)
        body = [
            [_fmt(row.get(col, "")) for col in headers] for row in self.rows
        ]
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in body)) if body else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [f"== {self.title} =="]
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
        lines.append("  ".join("-" * w for w in widths))
        for r in body:
            lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(headers))))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def show(self) -> None:
        """Print the rendering (visible with ``pytest -s``)."""
        print()
        print(self.render())

    def column(self, name: str) -> List[object]:
        """All values of one column, in row order."""
        return [row.get(name) for row in self.rows]


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value >= 100:
            return f"{value:.0f}"
        if value >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (the paper's "on average NX faster" statistic)."""
    cleaned = [v for v in values if v > 0]
    if not cleaned:
        return 0.0
    product = 1.0
    for v in cleaned:
        product *= v
    return product ** (1.0 / len(cleaned))
