"""repro — full Python reproduction of *CECI: Compact Embedding Cluster
Index for Scalable Subgraph Matching* (SIGMOD 2019).

Quickstart::

    from repro import Graph, match

    triangle = Graph(3, [(0, 1), (1, 2), (0, 2)])
    data = Graph(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)])
    print(match(triangle, data))

Subpackages
-----------
``repro.graph``
    Labeled graph store, CSR view, generators, IO, query extraction.
``repro.core``
    The CECI index, filtering/refinement, intersection enumeration,
    embedding clusters, the :class:`CECIMatcher` facade.
``repro.baselines``
    Ullmann, VF2, QuickSI, TurboIso(+Boosted), CFLMatch, PsgL, DualSim
    and the bare-graph listing baseline.
``repro.parallel``
    ST / CGD / FGD scheduling, crash-safe thread executor,
    simulated-time executor.
``repro.kernels``
    Adaptive sorted-set intersection kernels (merge / gallop / bitset)
    and the bounded TE∩NTE memo cache behind enumeration's hot path.
``repro.resilience``
    Enumeration budgets (:class:`Budget` / :class:`PartialResult`),
    seeded fault injection (:class:`FaultPlan`), retry/recovery
    bookkeeping shared by the parallel and distributed runtimes.
``repro.distributed``
    Simulated multi-machine runtime (replicated vs shared CSR storage,
    pivot partitioning, work stealing).
``repro.bench``
    Dataset analogs (Table 1), the QG1-QG5 query graphs (Figure 6), and
    the experiment drivers behind ``benchmarks/``.
"""

from .core import (
    CECI,
    CECIMatcher,
    Embedding,
    Enumerator,
    MatchStats,
    QueryTree,
    SymmetryBreaker,
    WorkUnit,
    count_embeddings,
    find_embedding,
    match,
)
from .graph import Graph, GraphBuilder
from .resilience import Budget, FaultPlan, PartialResult

__version__ = "1.0.0"

__all__ = [
    "Budget",
    "CECI",
    "CECIMatcher",
    "Embedding",
    "Enumerator",
    "FaultPlan",
    "Graph",
    "GraphBuilder",
    "MatchStats",
    "PartialResult",
    "QueryTree",
    "SymmetryBreaker",
    "WorkUnit",
    "count_embeddings",
    "find_embedding",
    "match",
    "__version__",
]
