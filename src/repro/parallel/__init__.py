"""Parallel execution: scheduling policies, thread executor, simulator."""

from .scheduling import (
    POLICIES,
    Assignment,
    dynamic_schedule,
    static_schedule,
)
from .simulate import (
    PolicyResult,
    measure_unit_costs,
    simulate_policy,
    speedup_curve,
)
from .workers import WorkerReport, parallel_match

__all__ = [
    "POLICIES",
    "Assignment",
    "PolicyResult",
    "WorkerReport",
    "dynamic_schedule",
    "measure_unit_costs",
    "parallel_match",
    "simulate_policy",
    "speedup_curve",
    "static_schedule",
]
