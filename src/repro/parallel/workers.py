"""Real-thread parallel enumeration.

The paper's ``k embeddings at a time`` execution: ``k`` workers pull
work units (embedding clusters or their fragments) from a shared pool
and enumerate them concurrently.  Python threads do not give CPU-bound
speedup (GIL), but this executor is the *correctness* counterpart of the
simulator — it proves the cluster partitioning is race-free and exact,
and it does overlap any releases of the GIL.  The scalability *figures*
use :mod:`repro.parallel.simulate` (see DESIGN.md substitutions).
"""

from __future__ import annotations

import queue
import threading
from typing import List, Optional, Sequence, Tuple

from ..core.clusters import WorkUnit
from ..core.enumeration import Enumerator
from ..core.matcher import CECIMatcher
from ..core.stats import MatchStats

__all__ = ["parallel_match", "WorkerReport"]


class WorkerReport:
    """Per-worker outcome of a :func:`parallel_match` run."""

    def __init__(self, worker_id: int) -> None:
        self.worker_id = worker_id
        self.units_processed = 0
        self.embeddings: List[Tuple[int, ...]] = []
        self.stats = MatchStats()


def parallel_match(
    matcher: CECIMatcher,
    workers: int = 4,
    policy: str = "FGD",
    beta: float = 0.2,
    limit: Optional[int] = None,
) -> Tuple[List[Tuple[int, ...]], List[WorkerReport]]:
    """Enumerate all embeddings with ``workers`` pull-based threads.

    Returns ``(embeddings, per-worker reports)``.  Under ``"ST"`` units
    are pre-partitioned per worker; under ``"CGD"``/``"FGD"`` workers
    pull from a shared queue (FGD additionally decomposes
    ExtremeClusters).  The union of worker outputs is exactly the
    sequential embedding set — the test suite asserts it.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if policy == "FGD":
        units = matcher.work_units(worker_count=workers, beta=beta)
    elif policy in ("ST", "CGD"):
        units = matcher.work_units(beta=None)
    else:
        raise ValueError(f"unknown policy {policy!r}")

    ceci = matcher.build()
    reports = [WorkerReport(w) for w in range(workers)]
    stop = threading.Event()
    found_lock = threading.Lock()
    found_count = [0]

    def run_unit(report: WorkerReport, unit: WorkUnit) -> None:
        enumerator = Enumerator(
            ceci,
            symmetry=matcher.symmetry,
            use_intersection=matcher.use_intersection,
            stats=report.stats,
        )
        for embedding in enumerator.embeddings_from_unit(unit.prefix):
            with found_lock:
                if limit is not None and found_count[0] >= limit:
                    stop.set()
                    return
                found_count[0] += 1
            report.embeddings.append(embedding)
            if stop.is_set():
                return
        report.units_processed += 1

    threads: List[threading.Thread] = []
    if policy == "ST":
        n = len(units)
        per_worker = (n + workers - 1) // workers if n else 0

        def static_worker(w: int) -> None:
            start = w * per_worker
            for unit in units[start : start + per_worker]:
                if stop.is_set():
                    return
                run_unit(reports[w], unit)

        for w in range(workers):
            threads.append(threading.Thread(target=static_worker, args=(w,)))
    else:
        pool: "queue.SimpleQueue[Optional[WorkUnit]]" = queue.SimpleQueue()
        for unit in units:
            pool.put(unit)
        for _ in range(workers):
            pool.put(None)  # poison pill per worker

        def dynamic_worker(w: int) -> None:
            while not stop.is_set():
                unit = pool.get()
                if unit is None:
                    return
                run_unit(reports[w], unit)

        for w in range(workers):
            threads.append(threading.Thread(target=dynamic_worker, args=(w,)))

    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    embeddings: List[Tuple[int, ...]] = []
    for report in reports:
        embeddings.extend(report.embeddings)
    if limit is not None:
        embeddings = embeddings[:limit]
    return embeddings, reports
