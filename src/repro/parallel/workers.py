"""Real-thread parallel enumeration, crash-safe.

The paper's ``k embeddings at a time`` execution: ``k`` workers pull
work units (embedding clusters or their fragments) from a shared pool
and enumerate them concurrently.  Python threads do not give CPU-bound
speedup (GIL), but this executor is the *correctness* counterpart of the
simulator — it proves the cluster partitioning is race-free and exact,
and it does overlap any releases of the GIL.  The scalability *figures*
use :mod:`repro.parallel.simulate` (see DESIGN.md substitutions).

Failure model (see DESIGN.md, "Failure model & budgets"):

* a unit whose enumeration raises is captured in the worker's
  :class:`WorkerReport` and requeued to the surviving workers, up to
  ``max_retries`` re-attempts per unit;
* a *crashed* worker (injected via :class:`~repro.resilience.faults.
  FaultPlan`, or any exception escaping the pull loop itself) stops
  pulling; its in-flight unit is requeued and, under the static (ST)
  policy, its unstarted block is redistributed;
* a unit's embeddings are buffered privately and committed to the
  shared result only when the unit completes, so a retried unit can
  never contribute duplicates;
* the run either returns exactly the sequential embedding set (or
  exactly ``limit`` of it) or raises
  :class:`~repro.resilience.recovery.ParallelExecutionError` carrying a
  full :class:`~repro.resilience.recovery.FailureReport` — embeddings
  are never silently dropped.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Dict, List, Optional, Tuple

from ..core.clusters import WorkUnit
from ..core.enumeration import Enumerator
from ..core.matcher import CECIMatcher
from ..core.stats import MatchStats
from ..resilience.faults import FaultPlan, InjectedCrash, InjectedUnitError
from ..resilience.recovery import (
    FailureReport,
    ParallelExecutionError,
    RecoveryLog,
    RetryPolicy,
)

__all__ = ["parallel_match", "WorkerReport"]


class WorkerReport:
    """Per-worker outcome of a :func:`parallel_match` run."""

    def __init__(self, worker_id: int) -> None:
        self.worker_id = worker_id
        #: Units this worker finished (completed or stopped by the
        #: global limit) — failed attempts are counted separately.
        self.units_processed = 0
        #: Unit attempts on this worker that ended in an exception.
        self.units_failed = 0
        self.embeddings: List[Tuple[int, ...]] = []
        self.stats = MatchStats()
        #: True once this worker thread died mid-run.
        self.crashed = False
        #: Human-readable record of every failure this worker saw.
        self.failures: List[str] = []


class _RunState:
    """Shared coordination state for one parallel run."""

    def __init__(self, limit: Optional[int]) -> None:
        self.limit = limit
        self.lock = threading.Lock()
        self.found_count = 0
        self.stop = threading.Event()
        #: Global count of unit attempts started — the deterministic
        #: clock the fault plan's pick indices refer to.
        self.picks = 0

    def next_pick(self) -> int:
        with self.lock:
            index = self.picks
            self.picks += 1
            return index

    def commit(
        self, report: WorkerReport, buffer: List[Tuple[int, ...]]
    ) -> None:
        """Publish a finished unit's embeddings atomically, respecting
        the global limit exactly (no over- or under-count races)."""
        if not buffer:
            return
        with self.lock:
            for embedding in buffer:
                if self.limit is not None and self.found_count >= self.limit:
                    self.stop.set()
                    return
                self.found_count += 1
                report.embeddings.append(embedding)
            if self.limit is not None and self.found_count >= self.limit:
                self.stop.set()


def parallel_match(
    matcher: CECIMatcher,
    workers: int = 4,
    policy: str = "FGD",
    beta: float = 0.2,
    limit: Optional[int] = None,
    fault_plan: Optional[FaultPlan] = None,
    max_retries: int = 2,
) -> Tuple[List[Tuple[int, ...]], List[WorkerReport]]:
    """Enumerate all embeddings with ``workers`` pull-based threads.

    Returns ``(embeddings, per-worker reports)``.  Under ``"ST"`` units
    are pre-partitioned per worker; under ``"CGD"``/``"FGD"`` workers
    pull from a shared queue (FGD additionally decomposes
    ExtremeClusters).  The union of worker outputs is exactly the
    sequential embedding set — the test suite asserts it — and with
    ``limit`` set, exactly ``limit`` embeddings are returned.

    ``fault_plan`` injects deterministic worker crashes / unit errors;
    failed or orphaned units are requeued to surviving workers with at
    most ``max_retries`` re-attempts each.  If any unit is permanently
    lost (retries exhausted, or every worker crashed) the run raises
    :class:`ParallelExecutionError` instead of returning a short set.
    Recovery accounting lands in ``matcher.stats`` (``retries``,
    ``reassignments``, ``worker_crashes``).

    On success every worker's counters are folded into ``matcher.stats``
    through the one :meth:`~repro.core.stats.MatchStats.merge` path
    (work counters sum, ``memory_bytes`` keeps the peak), so callers
    read one consolidated stats object; per-worker numbers stay
    available on the reports.  With a traced matcher each unit attempt
    runs under a worker-tagged ``unit`` span and books its wall time as
    a worker-tagged ``enumerate`` phase — the per-worker bars of
    ``repro trace summarize``.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if policy == "FGD":
        units = matcher.work_units(worker_count=workers, beta=beta)
    elif policy in ("ST", "CGD"):
        units = matcher.work_units(beta=None)
    else:
        raise ValueError(f"unknown policy {policy!r}")

    # One built store shared by every worker: with ``store="compact"``
    # the workers read frozen int64 arrays (immutable, so sharing is
    # race-free by construction) and each unit's candidate lookups are
    # zero-copy slices of the same buffers — nothing is pickled or
    # duplicated per worker.
    ceci = matcher.build()
    tracer = matcher.tracer
    reports = [WorkerReport(w) for w in range(workers)]
    state = _RunState(limit)
    retry_policy = RetryPolicy(max_retries)
    log = RecoveryLog()
    failure = FailureReport(log=log)
    attempts: Dict[Tuple[int, ...], int] = {}

    def run_unit(worker: int, report: WorkerReport, unit: WorkUnit) -> None:
        """One unit attempt: may raise; commits only on success."""
        index = state.next_pick()
        if fault_plan is not None:
            if fault_plan.worker_crash_at(index):
                raise InjectedCrash("worker", worker)
            if fault_plan.worker_error_at(index):
                raise InjectedUnitError(worker, index)
        wtracer = tracer.scoped(worker=worker) if tracer.enabled else tracer
        enumerator = Enumerator(
            ceci,
            symmetry=matcher.symmetry,
            use_intersection=matcher.use_intersection,
            stats=report.stats,
            kernel=matcher.kernel,
            cache_size=matcher.cache_size,
            tracer=wtracer,
            engine=matcher.engine,
        )
        buffer: List[Tuple[int, ...]] = []
        started = time.perf_counter()
        try:
            with wtracer.span(
                "unit", prefix=[int(v) for v in unit.prefix]
            ):
                for embedding in enumerator.embeddings_from_unit(unit.prefix):
                    buffer.append(embedding)
                    if state.stop.is_set():
                        break
        finally:
            # Book the attempt's wall time whether it finished or raised
            # — stats and trace get the same float, so the per-worker
            # breakdown of ``trace summarize`` matches the merged stats.
            seconds = time.perf_counter() - started
            report.stats.add_phase("enumerate", seconds)
            if wtracer.enabled:
                wtracer.phase("enumerate", started, seconds)
        state.commit(report, buffer)
        # Completed *and* limit-stopped units both count as processed —
        # the unit occupied this worker either way.
        report.units_processed += 1

    def run_round(
        round_units: List[WorkUnit], alive: List[int]
    ) -> Tuple[List[WorkUnit], List[WorkUnit]]:
        """Execute one scheduling round on the surviving workers.

        Returns ``(failed_units, orphaned_units)``: failed units burned
        an attempt, orphaned units never started (their worker crashed
        first, or every worker died before the queue drained).
        """
        failed: List[List[WorkUnit]] = [[] for _ in range(workers)]
        orphaned: List[List[WorkUnit]] = [[] for _ in range(workers)]
        threads: List[threading.Thread] = []

        def attempt(worker: int, unit: WorkUnit) -> bool:
            """Run one unit; record failures.  False = worker crashed."""
            report = reports[worker]
            try:
                run_unit(worker, report, unit)
                return True
            except InjectedCrash as crash:
                report.crashed = True
                report.failures.append(str(crash))
                failed[worker].append(unit)
                log.record(
                    "worker_crash", worker, unit.prefix, detail=str(crash)
                )
                matcher.stats.worker_crashes += 1
                return False
            except Exception as exc:  # noqa: BLE001 — report, never drop
                report.units_failed += 1
                report.failures.append(f"unit {unit.prefix}: {exc!r}")
                failed[worker].append(unit)
                log.record(
                    "unit_error", worker, unit.prefix, detail=repr(exc)
                )
                return True

        if policy == "ST":
            n = len(round_units)
            alive_count = len(alive)
            per_worker = (n + alive_count - 1) // alive_count if n else 0

            def static_worker(slot: int, worker: int) -> None:
                start = slot * per_worker
                block = round_units[start : start + per_worker]
                for position, unit in enumerate(block):
                    if state.stop.is_set():
                        return
                    if not attempt(worker, unit):
                        # Crashed: the rest of the block never started.
                        orphaned[worker].extend(block[position + 1 :])
                        return

            for slot, worker in enumerate(alive):
                threads.append(
                    threading.Thread(target=static_worker, args=(slot, worker))
                )
        else:
            pool: "queue.SimpleQueue[Optional[WorkUnit]]" = queue.SimpleQueue()
            for unit in round_units:
                pool.put(unit)
            for _ in alive:
                pool.put(None)  # poison pill per worker

            def dynamic_worker(worker: int) -> None:
                while not state.stop.is_set():
                    unit = pool.get()
                    if unit is None:
                        return
                    if not attempt(worker, unit):
                        return

            for worker in alive:
                threads.append(
                    threading.Thread(target=dynamic_worker, args=(worker,))
                )

        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        leftovers: List[WorkUnit] = []
        if policy != "ST" and not state.stop.is_set():
            # If every consumer crashed, unstarted units remain queued.
            while True:
                try:
                    unit = pool.get_nowait()
                except queue.Empty:
                    break
                if unit is not None:
                    leftovers.append(unit)
        flat_failed = [u for per in failed for u in per]
        flat_orphaned = [u for per in orphaned for u in per] + leftovers
        return flat_failed, flat_orphaned

    pending: List[WorkUnit] = list(units)
    while pending and not state.stop.is_set():
        alive = [w for w in range(workers) if not reports[w].crashed]
        if not alive:
            for unit in pending:
                failure.failed_work.append(
                    (unit.prefix, "no surviving workers")
                )
                log.record("give_up", -1, unit.prefix)
            break
        failed_units, orphaned_units = run_round(pending, alive)
        pending = []
        for unit in orphaned_units:
            # Never started: redistributing it costs no retry budget.
            matcher.stats.reassignments += 1
            log.record("reassign", -1, unit.prefix)
            pending.append(unit)
        for unit in failed_units:
            attempts[unit.prefix] = attempts.get(unit.prefix, 0) + 1
            if retry_policy.allows(attempts[unit.prefix]):
                matcher.stats.retries += 1
                log.record(
                    "requeue", -1, unit.prefix, attempt=attempts[unit.prefix]
                )
                pending.append(unit)
            else:
                failure.failed_work.append(
                    (unit.prefix, f"retries exhausted ({max_retries})")
                )
                log.record(
                    "give_up", -1, unit.prefix, attempt=attempts[unit.prefix]
                )

    failure.crashed = [r.worker_id for r in reports if r.crashed]
    limit_satisfied = (
        limit is not None and state.found_count >= limit
    )
    if failure.failed_work and not limit_satisfied:
        raise ParallelExecutionError(failure, reports)

    embeddings: List[Tuple[int, ...]] = []
    for report in reports:
        embeddings.extend(report.embeddings)
        matcher.stats.merge(report.stats)
    return embeddings, reports
