"""Deterministic simulated-time parallel execution.

The paper measures thread scaling on a 28-core OpenMP machine.  Pure
Python cannot show CPU-bound thread speedup (the GIL serializes it), so
the scalability figures run on this simulator instead: each work unit's
*true* sequential cost is measured once (recursive calls of its
enumeration), then a scheduling policy replays those costs on ``k``
virtual workers and reports the makespan.  This reproduces exactly the
phenomena Figures 11-14 and 16-17 are about — policy quality, cluster
skew, and the flattening when units run out — while staying exact and
machine-independent.  DESIGN.md Section 2 documents the substitution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.clusters import WorkUnit
from ..core.enumeration import Enumerator
from ..core.matcher import CECIMatcher
from ..core.stats import MatchStats
from .scheduling import Assignment, dynamic_schedule, static_schedule

__all__ = [
    "measure_unit_costs",
    "simulate_policy",
    "speedup_curve",
    "PolicyResult",
]

#: Cost charged per unit pulled under dynamic policies (work-pool lock,
#: in recursive-call units).  Small but nonzero, so decomposing into very
#: many fragments has a price.
PULL_OVERHEAD = 0.25

#: One-time cost of *creating* one decomposed work unit (Algorithm 3's
#: cardinality bookkeeping), charged to the makespan as setup.
DECOMPOSE_OVERHEAD = 0.25


def measure_unit_costs(
    matcher: CECIMatcher, units: Sequence[WorkUnit]
) -> List[float]:
    """Sequentially enumerate each unit and record its true cost
    (recursive calls).  The embeddings themselves are discarded here;
    correctness of unit-partitioned enumeration is asserted by the test
    suite instead."""
    ceci = matcher.build()
    costs: List[float] = []
    for unit in units:
        stats = MatchStats()
        enumerator = Enumerator(
            ceci,
            symmetry=matcher.symmetry,
            use_intersection=matcher.use_intersection,
            stats=stats,
            engine=matcher.engine,
        )
        for _ in enumerator.embeddings_from_unit(unit.prefix):
            pass
        costs.append(float(stats.recursive_calls))
    return costs


@dataclass(frozen=True)
class PolicyResult:
    """Simulated outcome of one (policy, worker-count) combination."""

    policy: str
    workers: int
    makespan: float
    sequential_cost: float
    setup_cost: float
    assignment: Assignment

    @property
    def speedup(self) -> float:
        """Sequential cost over parallel makespan (incl. setup)."""
        denominator = self.makespan + self.setup_cost
        return self.sequential_cost / denominator if denominator > 0 else 1.0

    @property
    def worker_finish_times(self) -> Tuple[float, ...]:
        """Per-worker busy time — Figure 12's bars."""
        return self.assignment.finish_times


def simulate_policy(
    matcher: CECIMatcher,
    workers: int,
    policy: str = "FGD",
    beta: float = 0.2,
    unit_costs: Optional[Sequence[float]] = None,
    units: Optional[Sequence[WorkUnit]] = None,
) -> PolicyResult:
    """Measure (or reuse) per-unit costs and replay them under a policy.

    ``policy`` is ``"ST"``, ``"CGD"`` (both use intact clusters) or
    ``"FGD"`` (ExtremeCluster decomposition with ``beta``).
    """
    if policy not in ("ST", "CGD", "FGD"):
        raise ValueError(f"unknown policy {policy!r}")
    if units is None:
        if policy == "FGD":
            units = matcher.work_units(worker_count=workers, beta=beta)
        else:
            units = matcher.work_units(beta=None)
    if policy == "ST":
        # Static distribution has no work pool: clusters are handed out
        # in natural pivot order, not sorted by cardinality (the sort is
        # a dynamic-pool optimization, Section 4.3).
        if unit_costs is None:
            units = sorted(units, key=lambda unit: unit.prefix)
        else:
            paired = sorted(zip(units, unit_costs), key=lambda p: p[0].prefix)
            units = [unit for unit, _ in paired]
            unit_costs = [cost for _, cost in paired]
    if unit_costs is None:
        unit_costs = measure_unit_costs(matcher, units)
    sequential = float(sum(unit_costs))
    setup = 0.0
    if policy == "ST":
        assignment = static_schedule(unit_costs, workers)
    else:
        assignment = dynamic_schedule(
            unit_costs, workers, pull_overhead=PULL_OVERHEAD
        )
        if policy == "FGD":
            fragments = sum(1 for unit in units if unit.depth > 1)
            setup = DECOMPOSE_OVERHEAD * fragments
    return PolicyResult(
        policy=policy,
        workers=workers,
        makespan=assignment.makespan,
        sequential_cost=sequential,
        setup_cost=setup,
        assignment=assignment,
    )


def speedup_curve(
    matcher: CECIMatcher,
    worker_counts: Sequence[int],
    policy: str = "FGD",
    beta: float = 0.2,
) -> Dict[int, float]:
    """Speedup at each worker count (Figures 13/14/16/17 series).

    Cluster costs are measured once and reused across worker counts;
    FGD re-decomposes per worker count because the ExtremeCluster
    threshold depends on ``cardinality_exp = total / workers``.
    """
    curve: Dict[int, float] = {}
    cached_units = None
    cached_costs = None
    if policy != "FGD":
        cached_units = matcher.work_units(beta=None)
        cached_costs = measure_unit_costs(matcher, cached_units)
    for workers in worker_counts:
        result = simulate_policy(
            matcher,
            workers,
            policy=policy,
            beta=beta,
            units=cached_units,
            unit_costs=cached_costs,
        )
        curve[workers] = result.speedup
    return curve
