"""Workload distribution policies — Section 4.2/4.3.

Three policies over a pool of work units (embedding clusters or their
ExtremeCluster fragments):

* **ST** — static: units pre-assigned in equal-count blocks, no
  re-adjustment ("assign an equal number of embedding clusters to each
  worker");
* **CGD** — coarse-grained dynamic: classical pull-based balancing at
  *cluster* granularity — an idle worker pulls the next unit;
* **FGD** — fine-grained dynamic: the same pull loop but over the
  ExtremeCluster-decomposed pool (the caller supplies decomposed units).

Policies are pure functions from per-unit costs to an assignment, so the
same code drives both the real thread executor and the simulated-time
executor.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = ["Assignment", "static_schedule", "dynamic_schedule", "POLICIES"]


@dataclass(frozen=True)
class Assignment:
    """Result of scheduling ``len(unit_costs)`` units onto workers."""

    #: ``worker_units[w]`` — unit indices executed by worker ``w`` in order.
    worker_units: Tuple[Tuple[int, ...], ...]
    #: ``finish_times[w]`` — cumulative cost when worker ``w`` goes idle.
    finish_times: Tuple[float, ...]

    @property
    def makespan(self) -> float:
        """Longest worker finishing time."""
        return max(self.finish_times) if self.finish_times else 0.0

    @property
    def skew(self) -> float:
        """Makespan divided by the mean finish time (1.0 = perfectly
        balanced) — the quantity Figure 12 plots per worker."""
        if not self.finish_times:
            return 1.0
        mean = sum(self.finish_times) / len(self.finish_times)
        return self.makespan / mean if mean > 0 else 1.0


def static_schedule(unit_costs: Sequence[float], workers: int) -> Assignment:
    """ST: contiguous equal-count blocks, fixed up front."""
    if workers < 1:
        raise ValueError("workers must be >= 1")
    n = len(unit_costs)
    per_worker = (n + workers - 1) // workers if n else 0
    worker_units: List[List[int]] = [[] for _ in range(workers)]
    for i in range(n):
        worker_units[min(i // per_worker, workers - 1) if per_worker else 0].append(i)
    finish = tuple(
        float(sum(unit_costs[i] for i in units)) for units in worker_units
    )
    return Assignment(tuple(tuple(u) for u in worker_units), finish)


def dynamic_schedule(
    unit_costs: Sequence[float],
    workers: int,
    pull_overhead: float = 0.0,
) -> Assignment:
    """Pull-based dynamic balancing (CGD/FGD): the next unit in pool
    order goes to whichever worker frees up first.  ``pull_overhead`` is
    charged per pull — the one-time distribution cost that makes very
    small ``beta`` counterproductive (Figure 12's scheduling overhead).
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    worker_units: List[List[int]] = [[] for _ in range(workers)]
    heap: List[Tuple[float, int]] = [(0.0, w) for w in range(workers)]
    heapq.heapify(heap)
    for i, cost in enumerate(unit_costs):
        busy_until, w = heapq.heappop(heap)
        worker_units[w].append(i)
        heapq.heappush(heap, (busy_until + float(cost) + pull_overhead, w))
    finish = [0.0] * workers
    for busy_until, w in heap:
        finish[w] = busy_until
    return Assignment(tuple(tuple(u) for u in worker_units), tuple(finish))


#: Name -> scheduling function (uniform signature).
POLICIES = {
    "ST": lambda costs, workers: static_schedule(costs, workers),
    "CGD": lambda costs, workers: dynamic_schedule(costs, workers),
    "FGD": lambda costs, workers: dynamic_schedule(costs, workers),
}
