"""Graph substrate: labeled graph store, CSR view, IO, and generators."""

from .builder import GraphBuilder
from .csr import CSRGraph, from_csr, to_csr
from .generators import (
    dense_labeled,
    erdos_renyi,
    inject_labels,
    kronecker,
    power_law,
    relabel_with,
)
from .graph import Graph
from .io import (
    load_csr_binary,
    load_edge_list,
    load_graph_format,
    save_csr_binary,
    save_edge_list,
    save_graph_format,
)
from .query_gen import generate_query, generate_query_set

__all__ = [
    "Graph",
    "GraphBuilder",
    "CSRGraph",
    "to_csr",
    "from_csr",
    "kronecker",
    "power_law",
    "erdos_renyi",
    "dense_labeled",
    "inject_labels",
    "relabel_with",
    "load_edge_list",
    "save_edge_list",
    "load_graph_format",
    "save_graph_format",
    "load_csr_binary",
    "save_csr_binary",
    "generate_query",
    "generate_query_set",
]
