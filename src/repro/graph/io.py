"""Graph serialization.

Three formats are supported:

* **edge list** — one ``src dst`` pair per line, ``#`` comments, the SNAP
  distribution format the paper's datasets ship in;
* **``.graph``** — the labeled format used by the original CECI release and
  the SubgraphMatching study (``t |V| |E|`` header, ``v id label degree``
  vertex rows, ``e src dst`` edge rows);
* **CSR binary** — the compact binary blob of :mod:`repro.graph.csr`, which
  the shared-storage distributed mode reads adjacency lists from.
"""

from __future__ import annotations

import os
from typing import List, Tuple

from .csr import CSRGraph, from_csr, to_csr
from .graph import Graph

__all__ = [
    "load_edge_list",
    "save_edge_list",
    "load_graph_format",
    "save_graph_format",
    "load_csr_binary",
    "save_csr_binary",
]


def load_edge_list(path: str, directed: bool = False, name: str = "") -> Graph:
    """Load a SNAP-style whitespace edge list.  Vertex ids may be sparse;
    they are densified in first-appearance order."""
    ids: dict = {}
    edges: List[Tuple[int, int]] = []

    def intern(token: str) -> int:
        dense = ids.get(token)
        if dense is None:
            dense = len(ids)
            ids[token] = dense
        return dense

    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith(("#", "%")):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"malformed edge line: {line!r}")
            s, d = intern(parts[0]), intern(parts[1])
            if s != d:
                edges.append((s, d))
    return Graph(len(ids), edges, directed=directed, name=name or os.path.basename(path))


def save_edge_list(graph: Graph, path: str) -> None:
    """Write the graph as a SNAP-style edge list."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# {graph.name or 'graph'}: |V|={graph.num_vertices} |E|={graph.num_edges}\n")
        for s, d in graph.edges:
            handle.write(f"{s} {d}\n")


def load_graph_format(path: str, name: str = "") -> Graph:
    """Load the labeled ``.graph`` format (``t``/``v``/``e`` rows)."""
    num_vertices = 0
    labels: List[object] = []
    edges: List[Tuple[int, int]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            parts = line.split()
            if not parts:
                continue
            tag = parts[0]
            if tag == "t":
                num_vertices = int(parts[1])
                labels = [0] * num_vertices
            elif tag == "v":
                vid, label = int(parts[1]), int(parts[2])
                labels[vid] = label
            elif tag == "e":
                edges.append((int(parts[1]), int(parts[2])))
            else:
                raise ValueError(f"unknown row tag {tag!r} in {path}")
    return Graph(num_vertices, edges, labels, name=name or os.path.basename(path))


def save_graph_format(graph: Graph, path: str) -> None:
    """Write the labeled ``.graph`` format.  Multi-labeled vertices write
    their primary label, which is what the study format can express."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"t {graph.num_vertices} {graph.num_edges}\n")
        for v in graph.vertices():
            handle.write(f"v {v} {graph.label_of(v)} {graph.degree(v)}\n")
        for s, d in graph.edges:
            handle.write(f"e {s} {d}\n")


def save_csr_binary(graph: Graph, path: str) -> None:
    """Serialize to the CSR binary blob used by shared-storage mode."""
    with open(path, "wb") as handle:
        handle.write(to_csr(graph).to_bytes())


def load_csr_binary(path: str, directed: bool = False, name: str = "") -> Graph:
    """Load a CSR binary blob back into a :class:`Graph`."""
    with open(path, "rb") as handle:
        csr = CSRGraph.from_bytes(handle.read())
    return from_csr(csr, directed=directed, name=name or os.path.basename(path))
