"""Query graph generation (Section 6.2 protocol).

"We perform Depth-first search (DFS) traversal of data graphs from random
source nodes in order to generate connected query graphs of different size
... Iteratively, a new node is selected and every backward edge from that
node to already selected nodes is added to query graph until the required
node count is achieved.  Thus, at least one isomorphic embedding will be
found for each query."

Labels are copied from the data graph ("the node labels are transferred to
query graph"), taking only the first label when a data vertex is
multi-labeled, which is also what the paper does for HU.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from .graph import Graph

__all__ = ["generate_query", "generate_query_set"]


def generate_query(
    data_graph: Graph,
    num_vertices: int,
    seed: int = 0,
    source: Optional[int] = None,
    keep_all_labels: bool = False,
) -> Graph:
    """Extract one connected query graph of ``num_vertices`` vertices.

    Raises :class:`ValueError` if the DFS component around the chosen
    source is smaller than ``num_vertices`` after a few retries.
    """
    if num_vertices < 1:
        raise ValueError("query needs at least one vertex")
    if num_vertices > data_graph.num_vertices:
        raise ValueError("query larger than the data graph")
    rng = random.Random(seed)
    for _attempt in range(32):
        start = source if source is not None else rng.randrange(data_graph.num_vertices)
        selected: List[int] = []
        selected_set: set = set()
        stack = [start]
        while stack and len(selected) < num_vertices:
            v = stack.pop()
            if v in selected_set:
                continue
            selected.append(v)
            selected_set.add(v)
            neighbors = list(data_graph.neighbors(v))
            rng.shuffle(neighbors)
            stack.extend(w for w in neighbors if w not in selected_set)
        if len(selected) == num_vertices:
            index = {v: i for i, v in enumerate(selected)}
            edges: List[Tuple[int, int]] = []
            # "every backward edge from that node to already selected nodes"
            for i, v in enumerate(selected):
                for w in data_graph.neighbors(v):
                    j = index.get(w)
                    if j is not None and j < i:
                        edges.append((j, i))
            if keep_all_labels:
                labels = [data_graph.labels_of(v) for v in selected]
            else:
                labels = [data_graph.label_of(v) for v in selected]
            query = Graph(num_vertices, edges, labels, name=f"q{num_vertices}")
            if query.is_connected():
                return query
        if source is not None:
            break
    raise ValueError(
        f"could not extract a connected {num_vertices}-vertex query "
        f"from {data_graph!r}"
    )


def generate_query_set(
    data_graph: Graph,
    num_vertices: int,
    count: int,
    seed: int = 0,
    keep_all_labels: bool = False,
) -> List[Graph]:
    """Generate ``count`` queries of the same size with distinct seeds —
    the paper generates 100 per size."""
    queries: List[Graph] = []
    attempt = 0
    while len(queries) < count:
        try:
            queries.append(
                generate_query(
                    data_graph,
                    num_vertices,
                    seed=seed + attempt,
                    keep_all_labels=keep_all_labels,
                )
            )
        except ValueError:
            pass
        attempt += 1
        if attempt > count * 64:
            raise ValueError("data graph too fragmented to generate query set")
    return queries
