"""Labeled graph store used by every matcher in the repository.

The paper (Section 2.1) represents a graph as ``G = (V, E, L)`` where ``L``
assigns *one or more* labels to each vertex.  Query graphs are connected and
undirected; data graphs may be directed or undirected.  Following the paper's
isomorphism definition, a data vertex ``v`` can host a query vertex ``u``
when ``L_q(u) ⊆ L(v)`` — i.e. the query vertex's labels are a subset of the
data vertex's labels.

For matching purposes the paper treats edges as adjacency (its example
graphs and all the query graphs are undirected patterns), so :class:`Graph`
keeps a symmetric adjacency structure.  Directed inputs simply record the
direction flag and symmetrize adjacency, which is also what the original
C++ implementation does when building candidate sets.

Vertices are dense integers ``0..n-1``.  Per-vertex adjacency is stored both
as a *sorted tuple* (for ordered merge intersection, the heart of CECI's
enumeration) and as a *frozenset* (for O(1) edge verification, which the
edge-verification baselines need).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

__all__ = ["Graph"]

Edge = Tuple[int, int]


class Graph:
    """An immutable labeled graph.

    Parameters
    ----------
    num_vertices:
        Number of vertices; vertex ids are ``0..num_vertices-1``.
    edges:
        Iterable of ``(src, dst)`` pairs.  Self loops are rejected and
        duplicate / reverse duplicates are collapsed (simple graph).
    labels:
        Either ``None`` (every vertex gets label ``0``), a sequence with one
        entry per vertex where each entry is a label or an iterable of
        labels, or a mapping ``vertex -> label(s)``.
    directed:
        Whether the *source* data was directed.  Matching always uses the
        symmetrized adjacency, mirroring the reference implementation.
    name:
        Optional human-readable name (dataset abbreviation etc.).
    """

    __slots__ = (
        "name",
        "directed",
        "_n",
        "_edges",
        "_adj_sorted",
        "_adj_set",
        "_labels",
        "_label_index",
        "_nlc",
        "_degrees",
        "_twin_classes",
        "_fingerprint",
    )

    def __init__(
        self,
        num_vertices: int,
        edges: Iterable[Edge],
        labels: Optional[object] = None,
        directed: bool = False,
        name: str = "",
    ) -> None:
        if num_vertices < 0:
            raise ValueError("num_vertices must be non-negative")
        self.name = name
        self.directed = directed
        self._n = num_vertices

        adj: List[set] = [set() for _ in range(num_vertices)]
        edge_set: set = set()
        for s, d in edges:
            if not (0 <= s < num_vertices and 0 <= d < num_vertices):
                raise ValueError(f"edge ({s}, {d}) references unknown vertex")
            if s == d:
                raise ValueError(f"self loop on vertex {s} is not allowed")
            key = (s, d) if s < d else (d, s)
            if key in edge_set:
                continue
            edge_set.add(key)
            adj[s].add(d)
            adj[d].add(s)

        self._edges: Tuple[Edge, ...] = tuple(sorted(edge_set))
        self._adj_sorted: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(sorted(neighbors)) for neighbors in adj
        )
        self._adj_set: Tuple[FrozenSet[int], ...] = tuple(
            frozenset(neighbors) for neighbors in adj
        )
        self._labels: Tuple[FrozenSet[object], ...] = self._normalize_labels(labels)

        label_index: Dict[object, List[int]] = {}
        for v, vlabels in enumerate(self._labels):
            for label in vlabels:
                label_index.setdefault(label, []).append(v)
        self._label_index: Dict[object, Tuple[int, ...]] = {
            label: tuple(vs) for label, vs in label_index.items()
        }
        self._nlc: Optional[Tuple[Mapping[object, int], ...]] = None
        # lazily cached by repro.baselines.turboiso.data_vertex_classes
        self._twin_classes = None
        # lazily cached by fingerprint()
        self._fingerprint: Optional[str] = None
        self._degrees: Tuple[int, ...] = tuple(
            len(neighbors) for neighbors in self._adj_sorted
        )

    def _normalize_labels(self, labels: Optional[object]) -> Tuple[FrozenSet[object], ...]:
        n = self._n
        if labels is None:
            return tuple(frozenset((0,)) for _ in range(n))
        if isinstance(labels, Mapping):
            seq: List[object] = [labels.get(v, 0) for v in range(n)]
        else:
            seq = list(labels)  # type: ignore[arg-type]
            if len(seq) != n:
                raise ValueError(
                    f"labels has {len(seq)} entries but graph has {n} vertices"
                )
        out: List[FrozenSet[object]] = []
        for entry in seq:
            if isinstance(entry, (set, frozenset, list, tuple)):
                labelset = frozenset(entry)
                if not labelset:
                    raise ValueError("every vertex needs at least one label")
            else:
                labelset = frozenset((entry,))
            out.append(labelset)
        return tuple(out)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of undirected edges after de-duplication."""
        return len(self._edges)

    @property
    def edges(self) -> Tuple[Edge, ...]:
        """All edges as sorted ``(min, max)`` pairs."""
        return self._edges

    def vertices(self) -> range:
        """Iterate vertex ids."""
        return range(self._n)

    def neighbors(self, v: int) -> Tuple[int, ...]:
        """Sorted neighbors of ``v``."""
        return self._adj_sorted[v]

    def neighbor_set(self, v: int) -> FrozenSet[int]:
        """Neighbors of ``v`` as a frozenset (O(1) membership)."""
        return self._adj_set[v]

    def degree(self, v: int) -> int:
        """Degree of ``v`` in the symmetrized graph."""
        return self._degrees[v]

    @property
    def adjacency(self) -> Tuple[Tuple[int, ...], ...]:
        """The full sorted-adjacency table (per-vertex tuples) — lets
        hot loops index directly instead of calling :meth:`neighbors`
        per vertex."""
        return self._adj_sorted

    @property
    def degrees(self) -> Tuple[int, ...]:
        """All vertex degrees, indexable by vertex id."""
        return self._degrees

    @property
    def label_table(self) -> Tuple[FrozenSet[object], ...]:
        """Per-vertex label sets, indexable by vertex id."""
        return self._labels

    def has_edge(self, u: int, v: int) -> bool:
        """Whether an edge connects ``u`` and ``v``."""
        return v in self._adj_set[u]

    def labels_of(self, v: int) -> FrozenSet[object]:
        """Label set of vertex ``v``."""
        return self._labels[v]

    def label_of(self, v: int) -> object:
        """Primary (smallest) label of ``v`` — convenience for
        single-labeled graphs."""
        return min(self._labels[v], key=repr)

    def vertices_with_label(self, label: object) -> Tuple[int, ...]:
        """All vertices carrying ``label`` (inverted label index)."""
        return self._label_index.get(label, ())

    def distinct_labels(self) -> Tuple[object, ...]:
        """All labels present in the graph."""
        return tuple(self._label_index)

    def uniform_label(self) -> Optional[object]:
        """The single label when every vertex carries exactly the same
        one label (the paper's unlabeled-graph regime), else ``None``.
        Filters collapse in this regime: LF is vacuous and NLCF reduces
        to the degree filter."""
        if len(self._label_index) != 1:
            return None
        label = next(iter(self._label_index))
        if all(len(ls) == 1 for ls in self._labels):
            return label
        return None

    def label_matches(self, query_labels: FrozenSet[object], v: int) -> bool:
        """Paper's label rule: ``L_q(u) ⊆ L(v)``."""
        return query_labels <= self._labels[v]

    # ------------------------------------------------------------------
    # Neighborhood label counts (NLC) — used by the NLCF filter
    # ------------------------------------------------------------------
    def neighbor_label_counts(self, v: int) -> Mapping[object, int]:
        """Count of each label among ``v``'s neighbors.

        A neighbor with multiple labels contributes to each of its labels,
        matching the multi-label semantics of the HU dataset experiments.
        Computed lazily for the whole graph on first use and cached.
        """
        if self._nlc is None:
            uniform = self.uniform_label()
            if uniform is not None:
                # Single-label regime: every neighbor contributes the
                # same label, so the count table is just the degree.
                self._nlc = tuple(
                    {uniform: degree} for degree in self._degrees
                )
            else:
                nlc: List[Mapping[object, int]] = []
                for u in range(self._n):
                    counter: Counter = Counter()
                    for w in self._adj_sorted[u]:
                        for label in self._labels[w]:
                            counter[label] += 1
                    nlc.append(dict(counter))
                self._nlc = tuple(nlc)
        return self._nlc[v]

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def subgraph(self, vertices: Sequence[int]) -> "Graph":
        """Vertex-induced subgraph, relabeled to ``0..k-1`` preserving the
        order of ``vertices``."""
        index = {v: i for i, v in enumerate(vertices)}
        if len(index) != len(vertices):
            raise ValueError("duplicate vertices in subgraph selection")
        edges = [
            (index[s], index[d])
            for s, d in self._edges
            if s in index and d in index
        ]
        labels = [self._labels[v] for v in vertices]
        return Graph(len(vertices), edges, labels, directed=self.directed)

    def is_connected(self) -> bool:
        """Whether the (symmetrized) graph is connected."""
        if self._n == 0:
            return True
        seen = {0}
        stack = [0]
        while stack:
            v = stack.pop()
            for w in self._adj_sorted[v]:
                if w not in seen:
                    seen.add(w)
                    stack.append(w)
        return len(seen) == self._n

    def degree_sequence(self) -> List[int]:
        """Sorted (descending) degree sequence."""
        return sorted((len(a) for a in self._adj_sorted), reverse=True)

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator[int]:
        return iter(range(self._n))

    def __repr__(self) -> str:
        tag = f" {self.name!r}" if self.name else ""
        kind = "directed" if self.directed else "undirected"
        return (
            f"<Graph{tag} |V|={self._n} |E|={self.num_edges} {kind} "
            f"labels={len(self._label_index)}>"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self._n == other._n
            and self._edges == other._edges
            and self._labels == other._labels
        )

    def __hash__(self) -> int:
        return hash((self._n, self._edges, self._labels))

    def fingerprint(self) -> str:
        """Stable content hash of the graph (hex digest, cached).

        Covers exactly what :meth:`__eq__` compares — vertex count,
        de-duplicated edge set and per-vertex label sets — so two equal
        graphs always share a fingerprint across processes and runs
        (unlike :meth:`__hash__`, which is salted per interpreter for
        strings).  This is the data-graph half of the service-layer
        index cache key; the query half is
        :func:`repro.core.automorphism.canonical_form`.
        """
        if self._fingerprint is None:
            import hashlib

            digest = hashlib.sha256()
            digest.update(f"v{self._n};".encode())
            for s, d in self._edges:
                digest.update(f"{s},{d};".encode())
            for vlabels in self._labels:
                digest.update(
                    ("|".join(sorted(map(repr, vlabels))) + ";").encode()
                )
            self._fingerprint = digest.hexdigest()
        return self._fingerprint
