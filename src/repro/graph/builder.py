"""Incremental construction of :class:`~repro.graph.graph.Graph` objects.

:class:`Graph` itself is immutable; the builder collects vertices, labels
and edges and materializes the graph once at :meth:`GraphBuilder.build`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from .graph import Graph

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Mutable accumulator for building labeled graphs.

    Vertices may be added explicitly with :meth:`add_vertex` (assigning
    labels) or implicitly by :meth:`add_edge`; implicit vertices get the
    default label ``0``.  External ids of any hashable type are remapped to
    dense integers in insertion order.
    """

    def __init__(self, directed: bool = False, name: str = "") -> None:
        self.directed = directed
        self.name = name
        self._ids: Dict[object, int] = {}
        self._labels: List[Set[object]] = []
        self._edges: List[Tuple[int, int]] = []

    def _intern(self, external_id: object) -> int:
        dense = self._ids.get(external_id)
        if dense is None:
            dense = len(self._ids)
            self._ids[external_id] = dense
            self._labels.append({0})
        return dense

    def add_vertex(self, external_id: object, labels: Optional[Iterable[object]] = None) -> int:
        """Register a vertex, optionally with labels; returns its dense id."""
        dense = self._intern(external_id)
        if labels is not None:
            labelset = set(labels) if not isinstance(labels, (str, bytes)) else {labels}
            if not labelset:
                raise ValueError("labels iterable may not be empty")
            self._labels[dense] = labelset
        return dense

    def add_label(self, external_id: object, label: object) -> None:
        """Add one more label to an existing or new vertex."""
        dense = self._intern(external_id)
        self._labels[dense].add(label)

    def add_edge(self, src: object, dst: object) -> None:
        """Add an edge, creating endpoints as needed."""
        self._edges.append((self._intern(src), self._intern(dst)))

    def add_edges(self, edges: Iterable[Tuple[object, object]]) -> None:
        """Bulk :meth:`add_edge`."""
        for s, d in edges:
            self.add_edge(s, d)

    @property
    def num_vertices(self) -> int:
        """Vertices registered so far."""
        return len(self._ids)

    @property
    def num_edges(self) -> int:
        """Edges registered so far (before de-duplication)."""
        return len(self._edges)

    def id_map(self) -> Dict[object, int]:
        """Copy of the external-id -> dense-id mapping."""
        return dict(self._ids)

    def build(self) -> Graph:
        """Materialize the immutable :class:`Graph`."""
        labels = [frozenset(ls) for ls in self._labels]
        return Graph(
            len(self._ids),
            self._edges,
            labels,
            directed=self.directed,
            name=self.name,
        )
