"""Compressed Sparse Row (CSR) view of a graph.

Section 5 of the paper stores the shared data graph in CSR format on a
lustre file system, where "each machine uses a beginning_position array to
locate the adjacency list for a given vertex".  This module provides that
representation: a ``beginning_position`` (offsets) array plus a flat
``adjacency`` array, backed by numpy, with binary save/load round-trip so
the simulated shared-storage layer (:mod:`repro.distributed.storage`) can
charge IO per adjacency-list fetch exactly like the paper's setup.
"""

from __future__ import annotations

import io
from typing import Tuple

import numpy as np

from .graph import Graph

__all__ = ["CSRGraph", "to_csr", "from_csr"]

_MAGIC = b"CECICSR1"


class CSRGraph:
    """CSR adjacency: ``beginning_position[v] .. beginning_position[v+1]``
    slices ``adjacency`` to give the sorted neighbor list of ``v``."""

    __slots__ = ("beginning_position", "adjacency", "labels")

    def __init__(
        self,
        beginning_position: np.ndarray,
        adjacency: np.ndarray,
        labels: Tuple[frozenset, ...],
    ) -> None:
        if beginning_position.ndim != 1 or adjacency.ndim != 1:
            raise ValueError("CSR arrays must be one-dimensional")
        if beginning_position[0] != 0 or beginning_position[-1] != len(adjacency):
            raise ValueError("beginning_position does not frame adjacency")
        self.beginning_position = beginning_position
        self.adjacency = adjacency
        self.labels = labels

    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self.beginning_position) - 1

    @property
    def num_directed_edges(self) -> int:
        """Entries in the adjacency array (2x undirected edge count)."""
        return len(self.adjacency)

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbor array of ``v`` (a view, no copy)."""
        start = self.beginning_position[v]
        end = self.beginning_position[v + 1]
        return self.adjacency[start:end]

    def degree(self, v: int) -> int:
        """Degree of ``v``."""
        return int(self.beginning_position[v + 1] - self.beginning_position[v])

    def adjacency_bytes(self, v: int) -> int:
        """Bytes occupied by ``v``'s adjacency list — the unit the shared
        storage layer charges for one on-demand load."""
        return self.degree(v) * self.adjacency.itemsize

    # ------------------------------------------------------------------
    # Binary round trip
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize to a compact binary blob."""
        buf = io.BytesIO()
        buf.write(_MAGIC)
        np.save(buf, self.beginning_position, allow_pickle=False)
        np.save(buf, self.adjacency, allow_pickle=False)
        label_rows = [",".join(repr(l) for l in sorted(ls, key=repr)) for ls in self.labels]
        payload = "\n".join(label_rows).encode("utf-8")
        buf.write(len(payload).to_bytes(8, "little"))
        buf.write(payload)
        return buf.getvalue()

    @classmethod
    def from_bytes(cls, blob: bytes) -> "CSRGraph":
        """Inverse of :meth:`to_bytes`."""
        buf = io.BytesIO(blob)
        magic = buf.read(len(_MAGIC))
        if magic != _MAGIC:
            raise ValueError("not a CECI CSR blob")
        beginning_position = np.load(buf, allow_pickle=False)
        adjacency = np.load(buf, allow_pickle=False)
        size = int.from_bytes(buf.read(8), "little")
        payload = buf.read(size).decode("utf-8")
        labels = tuple(
            frozenset(_parse_label(tok) for tok in row.split(",")) if row else frozenset((0,))
            for row in payload.split("\n")
        )
        return cls(beginning_position, adjacency, labels)


def _parse_label(token: str) -> object:
    try:
        return int(token)
    except ValueError:
        if token.startswith(("'", '"')) and token.endswith(("'", '"')):
            return token[1:-1]
        return token


def to_csr(graph: Graph) -> CSRGraph:
    """Convert a :class:`Graph` to CSR form."""
    n = graph.num_vertices
    degrees = np.fromiter(
        (graph.degree(v) for v in range(n)), dtype=np.int64, count=n
    )
    beginning_position = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=beginning_position[1:])
    adjacency = np.empty(int(beginning_position[-1]), dtype=np.int64)
    for v in range(n):
        start = beginning_position[v]
        adjacency[start : start + degrees[v]] = graph.neighbors(v)
    labels = tuple(graph.labels_of(v) for v in range(n))
    return CSRGraph(beginning_position, adjacency, labels)


def from_csr(csr: CSRGraph, directed: bool = False, name: str = "") -> Graph:
    """Convert CSR back to a :class:`Graph`."""
    edges = []
    for v in range(csr.num_vertices):
        for w in csr.neighbors(v):
            if v < int(w):
                edges.append((v, int(w)))
    return Graph(csr.num_vertices, edges, list(csr.labels), directed=directed, name=name)
