"""Synthetic graph generators.

The paper's synthetic dataset ``rand_500k`` comes from the Graph500
Kronecker generator; its real datasets are SNAP power-law graphs.  This
module implements from scratch:

* :func:`kronecker` — the Graph500 / RMAT-style stochastic Kronecker
  generator (the paper's ``rand_500k`` source),
* :func:`power_law` — preferential-attachment graphs whose degree skew
  mimics the SNAP social networks,
* :func:`erdos_renyi` — the classical G(n, m) model,
* :func:`dense_labeled` — a small dense multi-labeled graph mimicking the
  Human (HU) protein-interaction dataset regime (4.6K vertices, 0.7M edges,
  90 labels, multiple labels per vertex),
* :func:`inject_labels` — the Section 6.2 protocol of randomly assigning
  one of ``k`` labels to each vertex of an unlabeled graph.

All generators take an explicit ``seed`` and are deterministic for a given
seed, which the benchmark harness relies on.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from .graph import Graph

__all__ = [
    "kronecker",
    "power_law",
    "erdos_renyi",
    "dense_labeled",
    "inject_labels",
    "relabel_with",
]


def kronecker(
    scale: int,
    edge_factor: int = 4,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    name: str = "",
) -> Graph:
    """Graph500 Kronecker generator.

    Generates ``2**scale`` vertices and ``edge_factor * 2**scale`` edge
    samples by recursively descending the 2x2 initiator matrix with
    probabilities ``(a, b, c, d=1-a-b-c)`` — the Graph500 reference
    parameters by default.  Self loops and duplicates are dropped by the
    :class:`Graph` constructor, so the realized edge count is slightly
    below the nominal one, exactly as in Graph500.
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    d = 1.0 - a - b - c
    if d < 0:
        raise ValueError("initiator probabilities exceed 1")
    rng = random.Random(seed)
    n = 1 << scale
    num_samples = edge_factor * n
    edges: List[Tuple[int, int]] = []
    for _ in range(num_samples):
        src = 0
        dst = 0
        for _level in range(scale):
            r = rng.random()
            if r < a:
                quadrant = 0
            elif r < a + b:
                quadrant = 1
            elif r < a + b + c:
                quadrant = 2
            else:
                quadrant = 3
            src = (src << 1) | (quadrant >> 1)
            dst = (dst << 1) | (quadrant & 1)
        if src != dst:
            edges.append((src, dst))
    # Graph500 permutes vertex ids to break the locality artifact.
    perm = list(range(n))
    rng.shuffle(perm)
    edges = [(perm[s], perm[t]) for s, t in edges]
    return Graph(n, edges, name=name or f"kron{scale}")


def power_law(
    num_vertices: int,
    edges_per_vertex: int = 4,
    seed: int = 0,
    name: str = "",
    min_edges_per_vertex: Optional[int] = None,
) -> Graph:
    """Preferential-attachment (Barabasi-Albert style) power-law graph.

    Every new vertex attaches to existing vertices chosen proportionally
    to degree, producing the heavy-tailed degree distribution that
    drives CECI's workload-imbalance experiments.

    With the default ``min_edges_per_vertex=None`` every vertex attaches
    exactly ``edges_per_vertex`` times (classic BA, minimum degree = m).
    Passing a smaller minimum draws each vertex's attachment count from
    ``[min, m]`` with probability proportional to ``1/k`` — real SNAP
    graphs are dominated by degree-1/degree-2 vertices, and that
    low-degree tail is exactly what CECI's degree filter and refinement
    prune (Table 2's savings).
    """
    m = edges_per_vertex
    if num_vertices <= m:
        raise ValueError("num_vertices must exceed edges_per_vertex")
    low = m if min_edges_per_vertex is None else min_edges_per_vertex
    if not 1 <= low <= m:
        raise ValueError("min_edges_per_vertex must be in [1, edges_per_vertex]")
    rng = random.Random(seed)
    counts = list(range(low, m + 1))
    weights = [1.0 / k for k in counts]
    edges: List[Tuple[int, int]] = []
    # Repeated-endpoint list implements degree-proportional sampling.
    endpoints: List[int] = []
    # Seed clique over the first m+1 vertices keeps the start connected.
    for i in range(m + 1):
        for j in range(i + 1, m + 1):
            edges.append((i, j))
            endpoints.extend((i, j))
    for v in range(m + 1, num_vertices):
        if low == m:
            count = m
        else:
            count = rng.choices(counts, weights)[0]
        targets: set = set()
        while len(targets) < count:
            targets.add(rng.choice(endpoints))
        for t in targets:
            edges.append((v, t))
            endpoints.extend((v, t))
    return Graph(num_vertices, edges, name=name or f"pl{num_vertices}")


def erdos_renyi(
    num_vertices: int,
    num_edges: int,
    seed: int = 0,
    name: str = "",
) -> Graph:
    """Uniform random simple graph with exactly ``num_edges`` edges."""
    max_edges = num_vertices * (num_vertices - 1) // 2
    if num_edges > max_edges:
        raise ValueError("more edges requested than the simple graph allows")
    rng = random.Random(seed)
    chosen: set = set()
    while len(chosen) < num_edges:
        s = rng.randrange(num_vertices)
        t = rng.randrange(num_vertices)
        if s == t:
            continue
        chosen.add((s, t) if s < t else (t, s))
    return Graph(num_vertices, sorted(chosen), name=name or f"er{num_vertices}")


def dense_labeled(
    num_vertices: int = 460,
    avg_degree: int = 30,
    num_labels: int = 90,
    max_labels_per_vertex: int = 3,
    seed: int = 0,
    name: str = "HU-analog",
) -> Graph:
    """Dense multi-labeled graph in the Human-dataset regime.

    HU has 4.6K vertices, 0.7M edges (average degree ~300) and up to 90
    labels with several labels per vertex.  The default parameters scale
    that down ~10x while keeping density and the multi-label property.
    """
    rng = random.Random(seed)
    num_edges = min(
        num_vertices * avg_degree // 2,
        num_vertices * (num_vertices - 1) // 2,
    )
    base = erdos_renyi(num_vertices, num_edges, seed=seed)
    labels: List[frozenset] = []
    for _v in range(num_vertices):
        count = rng.randint(1, max_labels_per_vertex)
        labels.append(frozenset(rng.randrange(num_labels) for _ in range(count)))
    return Graph(num_vertices, base.edges, labels, name=name)


def inject_labels(graph: Graph, num_labels: int, seed: int = 0) -> Graph:
    """Section 6.2: "randomly inject each node ... with one of the
    ``num_labels`` different labels"."""
    rng = random.Random(seed)
    labels = [rng.randrange(num_labels) for _ in range(graph.num_vertices)]
    return Graph(
        graph.num_vertices,
        graph.edges,
        labels,
        directed=graph.directed,
        name=graph.name,
    )


def relabel_with(graph: Graph, labels: Sequence[object]) -> Graph:
    """Return a copy of ``graph`` with the given per-vertex labels."""
    return Graph(
        graph.num_vertices,
        graph.edges,
        list(labels),
        directed=graph.directed,
        name=graph.name,
    )
