"""Resilience layer: enumeration budgets, deterministic fault injection,
and recovery/retry accounting for the parallel and distributed runtimes.

The three modules map onto the three failure surfaces of a production
matcher:

* :mod:`repro.resilience.budget` — a pathological query must return a
  flagged partial answer, not hang (``Budget`` / ``PartialResult``);
* :mod:`repro.resilience.faults` — machine and worker failures are
  described up front by a seeded ``FaultPlan`` so recovery is testable
  and replayable;
* :mod:`repro.resilience.recovery` — lost work is requeued with bounded
  retries and every incident is logged; results are exact or loudly
  incomplete, never silently short.
"""

from .budget import (
    Budget,
    BudgetExhausted,
    BudgetTracker,
    PartialResult,
    embedding_bytes,
)
from .faults import (
    FaultPlan,
    InjectedBuildError,
    InjectedCrash,
    InjectedUnitError,
)
from .recovery import (
    FailureReport,
    ParallelExecutionError,
    RecoveryEvent,
    RecoveryLog,
    RetryPolicy,
)

__all__ = [
    "Budget",
    "BudgetExhausted",
    "BudgetTracker",
    "FailureReport",
    "FaultPlan",
    "InjectedBuildError",
    "InjectedCrash",
    "InjectedUnitError",
    "ParallelExecutionError",
    "PartialResult",
    "RecoveryEvent",
    "RecoveryLog",
    "RetryPolicy",
    "embedding_bytes",
]
