"""Deterministic fault injection for the parallel and distributed paths.

Testing recovery logic against *real* nondeterministic failures is
hopeless; instead every failure the runtime can experience is described
up front by a :class:`FaultPlan` and injected at deterministic points:

* ``machine_crashes[m] = k`` — simulated machine ``m`` dies when it picks
  up its ``k``-th cluster (0-based), losing its unexplored queue and the
  in-flight cluster (the distributed event loop is single-threaded, so
  per-machine positions are fully deterministic);
* ``worker_crash_picks = {k, ...}`` — the worker thread that starts the
  ``k``-th unit *globally* (0-based, counted across all workers) dies,
  losing the in-flight unit.  Real threads race for the queue, so *which*
  worker dies depends on scheduling, but *that* exactly one worker dies
  per index is deterministic;
* ``worker_error_picks = {k, ...}`` — the globally ``k``-th unit attempt
  raises a unit-level exception (the worker survives and keeps pulling);
* ``message_drop_rate`` — each coordinator->machine pivot message is
  dropped with this probability (decided by the seeded RNG) and must be
  retransmitted at extra communication cost;
* ``slow_machines[m] = f`` — machine ``m``'s enumeration costs are
  multiplied by ``f`` (a straggler), which drives extra work stealing.

Every stochastic decision flows from ``seed`` through
:meth:`FaultPlan.rng`, so a plan replays identically run after run —
the deterministic-seed guarantee DESIGN.md documents.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet

__all__ = ["FaultPlan", "InjectedCrash", "InjectedUnitError"]


class InjectedCrash(RuntimeError):
    """A planned crash of a worker thread or simulated machine."""

    def __init__(self, kind: str, subject: int) -> None:
        super().__init__(f"injected crash of {kind} {subject}")
        self.kind = kind
        self.subject = subject


class InjectedUnitError(RuntimeError):
    """A planned unit-level failure (the worker survives)."""

    def __init__(self, worker: int, unit_index: int) -> None:
        super().__init__(
            f"injected failure of worker {worker}'s unit #{unit_index}"
        )
        self.worker = worker
        self.unit_index = unit_index


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seeded description of the failures to inject."""

    seed: int = 0
    machine_crashes: Dict[int, int] = field(default_factory=dict)
    worker_crash_picks: FrozenSet[int] = field(default_factory=frozenset)
    worker_error_picks: FrozenSet[int] = field(default_factory=frozenset)
    message_drop_rate: float = 0.0
    slow_machines: Dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 <= self.message_drop_rate < 1.0:
            raise ValueError("message_drop_rate must be in [0, 1)")
        for m, factor in self.slow_machines.items():
            if factor < 1.0:
                raise ValueError(
                    f"slow_machines[{m}] must be >= 1.0, got {factor}"
                )

    def rng(self) -> random.Random:
        """A fresh RNG seeded by the plan — identical streams on every
        replay of the same plan."""
        return random.Random(self.seed)

    # ------------------------------------------------------------------
    # Injection predicates (all deterministic)
    # ------------------------------------------------------------------
    def machine_crashes_at(self, machine: int, clusters_started: int) -> bool:
        """Does ``machine`` die when starting its n-th cluster?"""
        return self.machine_crashes.get(machine) == clusters_started

    def worker_crash_at(self, global_pick: int) -> bool:
        """Does the worker starting the globally n-th unit die?"""
        return global_pick in self.worker_crash_picks

    def worker_error_at(self, global_pick: int) -> bool:
        """Does the globally n-th unit attempt raise (worker survives)?"""
        return global_pick in self.worker_error_picks

    def slowdown(self, machine: int) -> float:
        """Cost multiplier for ``machine`` (1.0 = healthy)."""
        return self.slow_machines.get(machine, 1.0)

    @property
    def empty(self) -> bool:
        """True when the plan injects nothing at all."""
        return (
            not self.machine_crashes
            and not self.worker_crash_picks
            and not self.worker_error_picks
            and self.message_drop_rate == 0.0
            and not self.slow_machines
        )

    # ------------------------------------------------------------------
    # Generators
    # ------------------------------------------------------------------
    @classmethod
    def chaos(
        cls,
        seed: int,
        num_machines: int = 0,
        num_workers: int = 0,
        crash_fraction: float = 0.25,
        message_drop_rate: float = 0.0,
        max_crash_position: int = 3,
    ) -> "FaultPlan":
        """A randomized-but-deterministic plan: ``crash_fraction`` of the
        machines crash at a seeded early cluster position, and the same
        fraction of worker-count crash picks are injected at seeded
        early global unit indices.  The same seed always yields the same
        plan."""
        rng = random.Random(seed)
        machine_crashes: Dict[int, int] = {}
        crash_picks: set = set()
        if num_machines > 0:
            count = max(1, int(num_machines * crash_fraction))
            count = min(count, num_machines - 1) if num_machines > 1 else 0
            for m in rng.sample(range(num_machines), count):
                machine_crashes[m] = rng.randrange(max_crash_position + 1)
        if num_workers > 1:
            count = min(
                max(1, int(num_workers * crash_fraction)), num_workers - 1
            )
            span = max(num_workers * (max_crash_position + 1), count)
            crash_picks.update(rng.sample(range(span), count))
        return cls(
            seed=seed,
            machine_crashes=machine_crashes,
            worker_crash_picks=frozenset(crash_picks),
            message_drop_rate=message_drop_rate,
        )
