"""Deterministic fault injection for the parallel and distributed paths.

Testing recovery logic against *real* nondeterministic failures is
hopeless; instead every failure the runtime can experience is described
up front by a :class:`FaultPlan` and injected at deterministic points:

* ``machine_crashes[m] = k`` — simulated machine ``m`` dies when it picks
  up its ``k``-th cluster (0-based), losing its unexplored queue and the
  in-flight cluster (the distributed event loop is single-threaded, so
  per-machine positions are fully deterministic);
* ``worker_crash_picks = {k, ...}`` — the worker thread that starts the
  ``k``-th unit *globally* (0-based, counted across all workers) dies,
  losing the in-flight unit.  Real threads race for the queue, so *which*
  worker dies depends on scheduling, but *that* exactly one worker dies
  per index is deterministic;
* ``worker_error_picks = {k, ...}`` — the globally ``k``-th unit attempt
  raises a unit-level exception (the worker survives and keeps pulling);
* ``message_drop_rate`` — each coordinator->machine pivot message is
  dropped with this probability (decided by the seeded RNG) and must be
  retransmitted at extra communication cost;
* ``slow_machines[m] = f`` — machine ``m``'s enumeration costs are
  multiplied by ``f`` (a straggler), which drives extra work stealing.

The **service-level** fault points drive the resident
:class:`~repro.service.service.MatchService`'s hardening layer (the
watchdog, retry, and spill-integrity paths) through the same seeded
discipline:

* ``service_worker_crash_picks = {k, ...}`` — the service worker that
  pops its ``k``-th task *globally* dies mid-job (the thread exits; the
  watchdog must detect the death, fail or retry the in-flight work, and
  respawn the slot);
* ``build_failure_picks = {k, ...}`` — the ``k``-th index build the
  service pays for raises :class:`InjectedBuildError`;
* ``spill_torn_write_picks = {k, ...}`` — the ``k``-th spill write is
  torn short (the blob is truncated mid-array, simulating a crash
  between ``write`` and ``fsync``);
* ``spill_read_corrupt_picks = {k, ...}`` — the ``k``-th spill read
  observes a single flipped byte (bit rot / torn sector), which the
  CECIIDX3 block checksums must catch;
* ``scheduler_stall_picks`` / ``scheduler_stall_seconds`` — the
  scheduler wedges for a bounded interval before preparing the ``k``-th
  admitted job, which end-to-end request deadlines must absorb.

The **shard-level** fault points drive the multi-process
:class:`~repro.service.shards.ShardedMatchService` (shard processes,
shared-mmap index publishes) through the same seeded discipline:

* ``shard_crash_picks = {(s, k), ...}`` — shard process ``s`` dies
  (``os._exit``) while holding the ``k``-th task *it* received (0-based
  per shard); the parent must observe the pipe EOF, respawn the shard
  and re-dispatch the lost task without ever surfacing a partial
  answer;
* ``shard_stall_picks = {(s, k), ...}`` / ``shard_stall_seconds`` —
  shard ``s`` wedges for a bounded interval before working its ``k``-th
  task (a straggler shard), which request deadlines must absorb while
  every other shard's results stay exact;
* ``publish_torn_picks = {k, ...}`` — the ``k``-th shared-index publish
  writes a torn (truncated) CECIIDX3 file, as if the publisher died
  mid-write; shard processes must detect the broken block checksums,
  refuse to serve from it, and the parent must republish.

Every stochastic decision flows from ``seed`` through
:meth:`FaultPlan.rng`, so a plan replays identically run after run —
the deterministic-seed guarantee DESIGN.md documents.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Tuple

__all__ = [
    "FaultPlan",
    "InjectedBuildError",
    "InjectedCrash",
    "InjectedUnitError",
]


class InjectedCrash(RuntimeError):
    """A planned crash of a worker thread or simulated machine."""

    def __init__(self, kind: str, subject: int) -> None:
        super().__init__(f"injected crash of {kind} {subject}")
        self.kind = kind
        self.subject = subject


class InjectedUnitError(RuntimeError):
    """A planned unit-level failure (the worker survives)."""

    def __init__(self, worker: int, unit_index: int) -> None:
        super().__init__(
            f"injected failure of worker {worker}'s unit #{unit_index}"
        )
        self.worker = worker
        self.unit_index = unit_index


class InjectedBuildError(RuntimeError):
    """A planned failure of one service-paid index build.  Counts as a
    *transient* fault: the service retry policy may transparently rerun
    the request that hit it."""

    def __init__(self, build_index: int) -> None:
        super().__init__(f"injected failure of index build #{build_index}")
        self.build_index = build_index


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seeded description of the failures to inject."""

    seed: int = 0
    machine_crashes: Dict[int, int] = field(default_factory=dict)
    worker_crash_picks: FrozenSet[int] = field(default_factory=frozenset)
    worker_error_picks: FrozenSet[int] = field(default_factory=frozenset)
    message_drop_rate: float = 0.0
    slow_machines: Dict[int, float] = field(default_factory=dict)
    # Service-level fault points (see module docstring).
    service_worker_crash_picks: FrozenSet[int] = field(
        default_factory=frozenset
    )
    build_failure_picks: FrozenSet[int] = field(default_factory=frozenset)
    spill_torn_write_picks: FrozenSet[int] = field(default_factory=frozenset)
    spill_read_corrupt_picks: FrozenSet[int] = field(
        default_factory=frozenset
    )
    scheduler_stall_picks: FrozenSet[int] = field(default_factory=frozenset)
    scheduler_stall_seconds: float = 0.0
    # Shard-level fault points (see module docstring).
    shard_crash_picks: FrozenSet[Tuple[int, int]] = field(
        default_factory=frozenset
    )
    shard_stall_picks: FrozenSet[Tuple[int, int]] = field(
        default_factory=frozenset
    )
    shard_stall_seconds: float = 0.0
    publish_torn_picks: FrozenSet[int] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if not 0.0 <= self.message_drop_rate < 1.0:
            raise ValueError("message_drop_rate must be in [0, 1)")
        for m, factor in self.slow_machines.items():
            if factor < 1.0:
                raise ValueError(
                    f"slow_machines[{m}] must be >= 1.0, got {factor}"
                )
        if self.scheduler_stall_seconds < 0.0:
            raise ValueError("scheduler_stall_seconds must be >= 0")
        if self.scheduler_stall_picks and self.scheduler_stall_seconds == 0.0:
            raise ValueError(
                "scheduler_stall_picks requires scheduler_stall_seconds > 0"
            )
        if self.shard_stall_seconds < 0.0:
            raise ValueError("shard_stall_seconds must be >= 0")
        if self.shard_stall_picks and self.shard_stall_seconds == 0.0:
            raise ValueError(
                "shard_stall_picks requires shard_stall_seconds > 0"
            )

    def rng(self) -> random.Random:
        """A fresh RNG seeded by the plan — identical streams on every
        replay of the same plan."""
        return random.Random(self.seed)

    # ------------------------------------------------------------------
    # Injection predicates (all deterministic)
    # ------------------------------------------------------------------
    def machine_crashes_at(self, machine: int, clusters_started: int) -> bool:
        """Does ``machine`` die when starting its n-th cluster?"""
        return self.machine_crashes.get(machine) == clusters_started

    def worker_crash_at(self, global_pick: int) -> bool:
        """Does the worker starting the globally n-th unit die?"""
        return global_pick in self.worker_crash_picks

    def worker_error_at(self, global_pick: int) -> bool:
        """Does the globally n-th unit attempt raise (worker survives)?"""
        return global_pick in self.worker_error_picks

    def slowdown(self, machine: int) -> float:
        """Cost multiplier for ``machine`` (1.0 = healthy)."""
        return self.slow_machines.get(machine, 1.0)

    def service_worker_crashes_at(self, task_pick: int) -> bool:
        """Does the service worker popping the globally n-th task die?"""
        return task_pick in self.service_worker_crash_picks

    def build_fails_at(self, build_index: int) -> bool:
        """Does the n-th service index build raise?"""
        return build_index in self.build_failure_picks

    def spill_write_torn_at(self, spill_index: int) -> bool:
        """Is the n-th spill write torn short?"""
        return spill_index in self.spill_torn_write_picks

    def spill_read_corrupt_at(self, read_index: int) -> bool:
        """Does the n-th spill read observe a flipped byte?"""
        return read_index in self.spill_read_corrupt_picks

    def scheduler_stalls_at(self, job_index: int) -> bool:
        """Does the scheduler wedge before preparing the n-th job?"""
        return job_index in self.scheduler_stall_picks

    def shard_crashes_at(self, shard: int, task_pick: int) -> bool:
        """Does shard process ``shard`` die holding its n-th task?"""
        return (shard, task_pick) in self.shard_crash_picks

    def shard_stalls_at(self, shard: int, task_pick: int) -> bool:
        """Does shard ``shard`` wedge before working its n-th task?"""
        return (shard, task_pick) in self.shard_stall_picks

    def publish_torn_at(self, publish_index: int) -> bool:
        """Is the n-th shared-index publish written torn?"""
        return publish_index in self.publish_torn_picks

    @property
    def empty(self) -> bool:
        """True when the plan injects nothing at all."""
        return (
            not self.machine_crashes
            and not self.worker_crash_picks
            and not self.worker_error_picks
            and self.message_drop_rate == 0.0
            and not self.slow_machines
            and not self.service_worker_crash_picks
            and not self.build_failure_picks
            and not self.spill_torn_write_picks
            and not self.spill_read_corrupt_picks
            and not self.scheduler_stall_picks
            and not self.shard_crash_picks
            and not self.shard_stall_picks
            and not self.publish_torn_picks
        )

    # ------------------------------------------------------------------
    # Generators
    # ------------------------------------------------------------------
    @classmethod
    def chaos(
        cls,
        seed: int,
        num_machines: int = 0,
        num_workers: int = 0,
        crash_fraction: float = 0.25,
        message_drop_rate: float = 0.0,
        max_crash_position: int = 3,
    ) -> "FaultPlan":
        """A randomized-but-deterministic plan: ``crash_fraction`` of the
        machines crash at a seeded early cluster position, and the same
        fraction of worker-count crash picks are injected at seeded
        early global unit indices.  The same seed always yields the same
        plan."""
        rng = random.Random(seed)
        machine_crashes: Dict[int, int] = {}
        crash_picks: set = set()
        if num_machines > 0:
            count = max(1, int(num_machines * crash_fraction))
            count = min(count, num_machines - 1) if num_machines > 1 else 0
            for m in rng.sample(range(num_machines), count):
                machine_crashes[m] = rng.randrange(max_crash_position + 1)
        if num_workers > 1:
            count = min(
                max(1, int(num_workers * crash_fraction)), num_workers - 1
            )
            span = max(num_workers * (max_crash_position + 1), count)
            crash_picks.update(rng.sample(range(span), count))
        return cls(
            seed=seed,
            machine_crashes=machine_crashes,
            worker_crash_picks=frozenset(crash_picks),
            message_drop_rate=message_drop_rate,
        )

    @classmethod
    def service_chaos(
        cls,
        seed: int,
        requests: int,
        crash_fraction: float = 0.15,
        build_failure_fraction: float = 0.1,
        spill_fault_fraction: float = 0.25,
        stall_fraction: float = 0.0,
        stall_seconds: float = 0.05,
        num_shards: int = 0,
        shard_crash_fraction: float = 0.0,
        shard_stall_fraction: float = 0.0,
        shard_stall_seconds: float = 0.05,
        publish_torn_fraction: float = 0.0,
    ) -> "FaultPlan":
        """A randomized-but-deterministic *service* plan sized to a run
        of ``requests`` requests: a fraction of task picks kill their
        worker, a fraction of index builds fail, a fraction of spill
        writes/reads are torn/corrupted, and (optionally) the scheduler
        stalls before a fraction of jobs.  With ``num_shards > 0`` the
        shard-level points join in: per-shard task picks that kill or
        stall their shard process, and torn shared-index publishes.
        The same seed always yields the same plan, so a chaos run
        replays exactly."""
        if requests < 1:
            raise ValueError("requests must be >= 1")
        rng = random.Random(seed)

        def picks(fraction: float, span: int) -> FrozenSet[int]:
            count = min(int(span * fraction + 0.5), span)
            if fraction > 0.0:
                count = max(count, 1)
            return frozenset(rng.sample(range(span), count))

        def shard_picks(fraction: float) -> FrozenSet[Tuple[int, int]]:
            """(shard, per-shard task pick) pairs drawn over an early
            window of each shard's task stream — a fan-out of one
            request gives every shard roughly one task, so the pick
            span mirrors the request count."""
            if num_shards < 1 or fraction <= 0.0:
                return frozenset()
            span = max(requests // max(num_shards, 1), 4)
            universe = [
                (s, k) for s in range(num_shards) for k in range(span)
            ]
            count = max(min(int(requests * fraction + 0.5), len(universe)), 1)
            return frozenset(rng.sample(universe, count))

        stall_picks = picks(stall_fraction, requests)
        shard_crashes = shard_picks(shard_crash_fraction)
        shard_stalls = shard_picks(shard_stall_fraction)
        return cls(
            seed=seed,
            service_worker_crash_picks=picks(crash_fraction, requests),
            build_failure_picks=picks(build_failure_fraction, requests),
            spill_torn_write_picks=picks(
                spill_fault_fraction, max(requests // 2, 1)
            ),
            spill_read_corrupt_picks=picks(
                spill_fault_fraction, max(requests // 2, 1)
            ),
            scheduler_stall_picks=stall_picks,
            scheduler_stall_seconds=stall_seconds if stall_picks else 0.0,
            shard_crash_picks=shard_crashes,
            shard_stall_picks=shard_stalls,
            shard_stall_seconds=shard_stall_seconds if shard_stalls else 0.0,
            publish_torn_picks=picks(
                publish_torn_fraction, max(requests // 4, 1)
            ),
        )
