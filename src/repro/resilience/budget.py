"""Enumeration budgets — the "partial answer under a deadline" mode.

A production matcher facing adversarial queries (the regime STwig-style
systems on billion-node graphs explicitly guard against) cannot let one
pathological query run unbounded.  A :class:`Budget` caps a single match
run along four axes:

* ``deadline_seconds`` — wall clock, measured from :meth:`BudgetTracker.
  start` (the matcher starts the clock *before* index construction, so
  filtering/refinement time counts against the deadline too);
* ``max_calls`` — recursive extension calls, the paper's own search-space
  proxy (Section 6.6), which makes the cap hardware-independent;
* ``max_embeddings`` — result-set size;
* ``max_memory_bytes`` — an estimate of the memory held by the collected
  embeddings (each is a tuple of ``n`` vertex ids).

Exceeding any axis raises :class:`BudgetExhausted` inside the
enumerator; the public entry points catch it and return what was found
so far with an explicit ``truncated`` flag — a query under budget never
hangs and never pretends its partial answer is complete.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

__all__ = [
    "Budget",
    "BudgetExhausted",
    "BudgetTracker",
    "PartialResult",
    "embedding_bytes",
]

#: How many recursive calls pass between two wall-clock reads.  Reading
#: the clock costs ~100ns; amortizing it over a stride keeps the budget
#: check out of the hot path's profile while bounding deadline overshoot
#: to one stride's worth of work.
DEADLINE_CHECK_STRIDE = 256

#: CPython footprint of one embedding: tuple header (56 bytes on 64-bit
#: builds) plus one 8-byte slot per matched vertex.  Small-int interning
#: makes the vertex ids themselves effectively free.
TUPLE_HEADER_BYTES = 56
BYTES_PER_SLOT = 8


def embedding_bytes(num_vertices: int) -> int:
    """Estimated bytes held by one collected embedding tuple."""
    return TUPLE_HEADER_BYTES + BYTES_PER_SLOT * num_vertices


class BudgetExhausted(Exception):
    """Raised inside the enumeration recursion when a budget axis is
    exceeded.  ``reason`` is one of ``"deadline"``, ``"max_calls"``,
    ``"max_embeddings"``, ``"max_memory"``."""

    def __init__(self, reason: str) -> None:
        super().__init__(f"enumeration budget exhausted: {reason}")
        self.reason = reason


@dataclass(frozen=True)
class Budget:
    """Resource caps for one match run.  ``None`` disables an axis."""

    deadline_seconds: Optional[float] = None
    max_calls: Optional[int] = None
    max_embeddings: Optional[int] = None
    max_memory_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        for name in (
            "deadline_seconds",
            "max_calls",
            "max_embeddings",
            "max_memory_bytes",
        ):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value!r}")

    @property
    def unlimited(self) -> bool:
        """True when no axis is capped."""
        return (
            self.deadline_seconds is None
            and self.max_calls is None
            and self.max_embeddings is None
            and self.max_memory_bytes is None
        )

    def tracker(self) -> "BudgetTracker":
        """A fresh (unstarted) tracker enforcing this budget."""
        return BudgetTracker(self)


class BudgetTracker:
    """Mutable enforcement state for one run of a :class:`Budget`.

    The enumerator calls :meth:`charge_call` once per recursive
    extension and :meth:`charge_embedding` once per emitted embedding;
    either raises :class:`BudgetExhausted` when an axis is exceeded.
    """

    def __init__(self, budget: Budget) -> None:
        self.budget = budget
        self.calls = 0
        self.embeddings = 0
        self.memory_bytes = 0
        self.started_at: Optional[float] = None
        self._deadline_at: Optional[float] = None
        self._stride = DEADLINE_CHECK_STRIDE

    def start(self) -> "BudgetTracker":
        """Start the wall clock (idempotent); returns self."""
        if self.started_at is None:
            self.started_at = time.perf_counter()
            if self.budget.deadline_seconds is not None:
                self._deadline_at = (
                    self.started_at + self.budget.deadline_seconds
                )
        return self

    def elapsed(self) -> float:
        """Seconds since :meth:`start` (0.0 if never started)."""
        if self.started_at is None:
            return 0.0
        return time.perf_counter() - self.started_at

    def deadline_passed(self) -> bool:
        """True when the wall-clock deadline is already behind us."""
        return (
            self._deadline_at is not None
            and time.perf_counter() >= self._deadline_at
        )

    def check_deadline(self) -> None:
        """Unconditional deadline check (used between pipeline phases)."""
        if self.deadline_passed():
            raise BudgetExhausted("deadline")

    def charge_call(self) -> None:
        """Account one recursive extension call."""
        self.calls += 1
        limit = self.budget.max_calls
        if limit is not None and self.calls > limit:
            raise BudgetExhausted("max_calls")
        if self._deadline_at is not None and self.calls % self._stride == 0:
            if time.perf_counter() >= self._deadline_at:
                raise BudgetExhausted("deadline")

    # ------------------------------------------------------------------
    # Bulk accounting — the batch engine's interface.  One frontier
    # block is charged with a single call instead of one per row; the
    # capacity queries let the engine truncate a leaf block *exactly* at
    # the budget boundary before committing it.
    # ------------------------------------------------------------------
    def charge_calls(self, n: int) -> None:
        """Account ``n`` extension calls at once (one frontier block).

        On overflow the counter is clamped to ``max_calls + 1`` —
        exactly where the per-call path stops — so ``calls`` never
        overstates the work bound by more than the recursive engine's
        own failing call."""
        limit = self.budget.max_calls
        if limit is not None and self.calls + n > limit:
            self.calls = limit + 1
            raise BudgetExhausted("max_calls")
        self.calls += n
        if self._deadline_at is not None:
            if time.perf_counter() >= self._deadline_at:
                raise BudgetExhausted("deadline")

    def calls_capacity(self) -> Optional[int]:
        """Extension calls left before ``max_calls`` trips (``None``
        when the axis is uncapped)."""
        limit = self.budget.max_calls
        if limit is None:
            return None
        return max(limit - self.calls, 0)

    def embedding_capacity(
        self, num_vertices: int
    ) -> Tuple[Optional[int], Optional[str]]:
        """How many more embeddings fit, and which axis bounds them.

        Returns ``(capacity, reason)`` where ``reason`` is
        ``"max_embeddings"`` or ``"max_memory"``; ``(None, None)`` when
        neither axis is capped.  Ties keep ``"max_embeddings"`` — the
        axis :meth:`charge_embedding` checks first."""
        cap: Optional[int] = None
        reason: Optional[str] = None
        limit = self.budget.max_embeddings
        if limit is not None:
            cap = max(limit - self.embeddings, 0)
            reason = "max_embeddings"
        mem = self.budget.max_memory_bytes
        if mem is not None:
            left = max(mem - self.memory_bytes, 0) // embedding_bytes(
                num_vertices
            )
            if cap is None or left < cap:
                cap, reason = int(left), "max_memory"
        return cap, reason

    def commit_calls(self, n: int) -> None:
        """Record ``n`` calls already validated against capacity
        (no limit check, no raise)."""
        self.calls += n

    def commit_embeddings(self, count: int, num_vertices: int) -> None:
        """Record ``count`` emitted embeddings already validated against
        :meth:`embedding_capacity` (no limit check, no raise)."""
        self.embeddings += count
        if self.budget.max_memory_bytes is not None:
            self.memory_bytes += count * embedding_bytes(num_vertices)

    def charge_embedding(self, num_vertices: int) -> None:
        """Account one emitted embedding of ``num_vertices`` vertices."""
        self.embeddings += 1
        limit = self.budget.max_embeddings
        if limit is not None and self.embeddings > limit:
            raise BudgetExhausted("max_embeddings")
        cap = self.budget.max_memory_bytes
        if cap is not None:
            self.memory_bytes += embedding_bytes(num_vertices)
            if self.memory_bytes > cap:
                raise BudgetExhausted("max_memory")


@dataclass
class PartialResult:
    """Outcome of a budgeted match run.

    ``truncated`` is True when a budget axis stopped the search early
    (``stop_reason`` names the axis); ``exhausted`` is True only when
    the full search space was explored — a ``limit`` cut is neither
    truncation nor exhaustion, so both flags are explicit rather than
    complements of each other.
    """

    embeddings: List[Tuple[int, ...]]
    truncated: bool = False
    exhausted: bool = True
    stop_reason: Optional[str] = None
    #: The run's MatchStats (typed loosely to avoid a core<->resilience
    #: import cycle; always a repro.core.stats.MatchStats in practice).
    stats: Optional[Any] = None

    def __len__(self) -> int:
        return len(self.embeddings)

    def __iter__(self):
        return iter(self.embeddings)

    def __bool__(self) -> bool:
        return bool(self.embeddings)
