"""Retry accounting and failure reporting shared by the parallel-thread
and simulated-distributed runtimes.

Both runtimes follow the same recovery contract:

1. a failed piece of work (a thread's :class:`~repro.core.clusters.
   WorkUnit`, a machine's embedding cluster) is requeued to the
   surviving executors with its attempt counter bumped;
2. a piece whose attempts exceed ``RetryPolicy.max_retries`` is reported
   *failed* instead of being retried forever;
3. every crash / retry / reassignment is appended to a
   :class:`RecoveryLog`, and the final result either provably covers the
   full embedding set or carries (or raises with) a complete
   :class:`FailureReport` — work is never silently dropped.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "FailureReport",
    "ParallelExecutionError",
    "RecoveryEvent",
    "RecoveryLog",
    "RetryPolicy",
]


@dataclass(frozen=True)
class RetryPolicy:
    """How many times one piece of work may be retried after a failure
    before it is declared failed (0 = fail on first loss), and how long
    to back off between attempts.

    Backoff is the classic exponential-with-jitter schedule: retry
    ``k`` (1-based) waits ``backoff_base_seconds * backoff_factor**(k-1)``
    seconds, capped at ``backoff_max_seconds``, multiplied by a seeded
    jitter factor drawn uniformly from ``1 ± jitter_fraction`` so a
    burst of simultaneous failures does not retry in lockstep.  The
    defaults (``backoff_base_seconds=0``) retry immediately, which keeps
    the parallel/distributed runtimes' historical behaviour.
    """

    max_retries: int = 2
    backoff_base_seconds: float = 0.0
    backoff_factor: float = 2.0
    backoff_max_seconds: float = 1.0
    jitter_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base_seconds < 0.0:
            raise ValueError("backoff_base_seconds must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.backoff_max_seconds < self.backoff_base_seconds:
            raise ValueError(
                "backoff_max_seconds must be >= backoff_base_seconds"
            )
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ValueError("jitter_fraction must be in [0, 1]")

    def allows(self, attempts_so_far: int) -> bool:
        """May a piece that already ran ``attempts_so_far`` times be
        tried again?"""
        return attempts_so_far <= self.max_retries

    def delay(
        self, attempt: int, rng: Optional[random.Random] = None
    ) -> float:
        """Seconds to wait before retry ``attempt`` (1-based).  Pass a
        seeded ``rng`` for deterministic jitter; with ``rng=None`` the
        un-jittered schedule is returned."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        if self.backoff_base_seconds <= 0.0:
            return 0.0
        delay = min(
            self.backoff_base_seconds * self.backoff_factor ** (attempt - 1),
            self.backoff_max_seconds,
        )
        if rng is not None and self.jitter_fraction > 0.0:
            delay *= 1.0 + self.jitter_fraction * (2.0 * rng.random() - 1.0)
        return max(delay, 0.0)


@dataclass(frozen=True)
class RecoveryEvent:
    """One recovery-relevant incident.

    ``kind`` is one of ``"worker_crash"``, ``"machine_crash"``,
    ``"unit_error"``, ``"requeue"``, ``"reassign"``, ``"message_drop"``,
    ``"give_up"``; ``subject`` is the worker/machine id involved and
    ``work`` identifies the unit prefix or cluster pivot (None for
    events without an associated piece of work).
    """

    kind: str
    subject: int
    work: Optional[Tuple[int, ...]] = None
    attempt: int = 0
    detail: str = ""


class RecoveryLog:
    """Ordered record of every recovery event in one run."""

    def __init__(self) -> None:
        self.events: List[RecoveryEvent] = []

    def record(
        self,
        kind: str,
        subject: int,
        work: Optional[Tuple[int, ...]] = None,
        attempt: int = 0,
        detail: str = "",
    ) -> RecoveryEvent:
        event = RecoveryEvent(kind, subject, work, attempt, detail)
        self.events.append(event)
        return event

    def count(self, kind: str) -> int:
        """Number of events of one kind."""
        return sum(1 for e in self.events if e.kind == kind)

    def summary(self) -> Dict[str, int]:
        """Event counts keyed by kind."""
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)


@dataclass
class FailureReport:
    """Everything that went permanently wrong in one run."""

    #: Work pieces that exceeded the retry policy: (identifier, reason).
    failed_work: List[Tuple[Tuple[int, ...], str]] = field(
        default_factory=list
    )
    #: Executor ids (workers or machines) that crashed.
    crashed: List[int] = field(default_factory=list)
    #: The full event log of the run.
    log: RecoveryLog = field(default_factory=RecoveryLog)

    @property
    def ok(self) -> bool:
        """True when no work was permanently lost (crashes that were
        fully recovered from still leave ``ok`` True)."""
        return not self.failed_work

    def describe(self) -> str:
        lines = []
        if self.crashed:
            lines.append(
                f"crashed executors: {sorted(self.crashed)}"
            )
        for work, reason in self.failed_work:
            lines.append(f"failed work {work}: {reason}")
        if not lines:
            lines.append("no permanent failures")
        return "; ".join(lines)


class ParallelExecutionError(RuntimeError):
    """Raised when a parallel run cannot guarantee the full embedding
    set — some work exceeded its retries or no workers survived.  Never
    raised for failures that were fully recovered."""

    def __init__(self, report: FailureReport, reports: Any = None) -> None:
        super().__init__(
            f"parallel execution lost work: {report.describe()}"
        )
        self.report = report
        #: The per-worker WorkerReport list (when available).
        self.worker_reports = reports
