#!/usr/bin/env python3
"""Motif search in a synthetic protein-interaction-style network.

The paper's introduction motivates subgraph listing with the analysis of
protein-protein interaction networks [44]: counting small *motifs*
(triangles, cliques, houses) characterizes local interaction structure.
This example generates a power-law PPI-like network, counts the five
Figure 6 motifs with automorphism breaking (each physical motif counted
exactly once), and shows how embedding clusters distribute the work.

Run:  python examples/protein_motifs.py
"""

from repro import CECIMatcher
from repro.bench import QUERY_GRAPHS
from repro.graph import power_law

# A PPI-style network: heavy-tailed degree distribution, one component.
network = power_law(num_vertices=1500, edges_per_vertex=4, seed=2026,
                    name="synthetic-PPI")
print(f"network: {network.num_vertices} proteins, "
      f"{network.num_edges} interactions, "
      f"max degree {network.degree_sequence()[0]}")

print(f"\n{'motif':6} {'count':>10} {'|Aut|':>6} {'clusters':>9} "
      f"{'recursive calls':>16}")
for name, motif in QUERY_GRAPHS.items():
    matcher = CECIMatcher(motif, network)
    count = matcher.count()
    clusters = len(matcher.build().pivots)
    print(
        f"{name:6} {count:>10} {matcher.symmetry.automorphism_count():>6} "
        f"{clusters:>9} {matcher.stats.recursive_calls:>16}"
    )

# ----------------------------------------------------------------------
# Motif participation: which proteins sit in the most triangles?  The
# embedding clusters answer this directly — the cluster of pivot v holds
# exactly the motifs led by v under the matching order.
# ----------------------------------------------------------------------
triangle = QUERY_GRAPHS["QG1"]
matcher = CECIMatcher(triangle, network)
participation: dict = {}
for embedding in matcher.embeddings():
    for protein in embedding:
        participation[protein] = participation.get(protein, 0) + 1

top = sorted(participation.items(), key=lambda kv: -kv[1])[:5]
print("\nproteins in the most triangles:")
for protein, triangles in top:
    print(f"  protein {protein:>5}: {triangles} triangles "
          f"(degree {network.degree(protein)})")
