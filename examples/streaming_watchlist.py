#!/usr/bin/env python3
"""Continuous pattern detection on an evolving graph.

A fraud-detection-flavored scenario: transactions stream into an
interaction graph, and a watchlist pattern (a diamond of accounts — two
disjoint paths between the same pair) must be flagged the moment it
completes.  ``ContinuousQuery`` reports the exact embedding delta per
edge update, without re-running matching over the whole graph.

Run:  python examples/streaming_watchlist.py
"""

import random

from repro import Graph
from repro.streaming import ContinuousQuery, DynamicGraph

rng = random.Random(404)

# Accounts: 60 nodes, transactions stream in.
network = DynamicGraph(60)
diamond = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)], name="watch")

watch = ContinuousQuery(diamond, network)
print(f"watching for {diamond.name!r} "
      f"({diamond.num_vertices} accounts, {diamond.num_edges} links)\n")

alerts = 0
for step in range(400):
    a, b = rng.randrange(60), rng.randrange(60)
    if a == b:
        continue
    if network.has_edge(a, b) and rng.random() < 0.25:
        delta = watch.delete_edge(a, b)
        if delta.destroyed:
            print(f"step {step:3}: link {a}-{b} removed, "
                  f"{len(delta.destroyed)} pattern(s) dissolved "
                  f"({len(watch.current_matches)} active)")
    else:
        delta = watch.insert_edge(a, b)
        if delta.created:
            alerts += len(delta.created)
            first = delta.created[0]
            print(f"step {step:3}: link {a}-{b} completed "
                  f"{len(delta.created)} pattern(s), e.g. accounts "
                  f"{tuple(first)} ({len(watch.current_matches)} active)")

print(f"\n{alerts} pattern completions flagged across the stream; "
      f"{len(watch.current_matches)} instances live at the end")

# The maintained set is exact: compare against a full re-match.
from repro import match  # noqa: E402

full = set(match(diamond, network.snapshot()))
print(f"exactness check vs full re-enumeration: "
      f"{watch.current_matches == full}")
