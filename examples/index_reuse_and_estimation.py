#!/usr/bin/env python3
"""Index persistence, containment screening, and approximate counting.

Three production-flavored workflows on top of the core matcher:

1. build a CECI once, persist it (the paper's Section 6.4 plans exactly
   this for indexes that outgrow memory), reload and re-enumerate;
2. screen a database of graphs for a pattern (containment search,
   Section 7), seeing how the feature filter avoids most verifications;
3. estimate an embedding count by cardinality-guided importance
   sampling instead of full enumeration.

Run:  python examples/index_reuse_and_estimation.py
"""

import os
import tempfile
import time

from repro import CECIMatcher, Graph
from repro.core import (
    Enumerator,
    GraphDatabase,
    cardinality_bound,
    estimate_embeddings,
    load_ceci,
    save_ceci,
)
from repro.graph import power_law

data = power_law(2500, 6, seed=13, min_edges_per_vertex=1, name="web")
diamond = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])

# ----------------------------------------------------------------------
# 1. Build once, persist, reload, enumerate again.
# ----------------------------------------------------------------------
matcher = CECIMatcher(diamond, data)
started = time.perf_counter()
ceci = matcher.build()
build_time = time.perf_counter() - started

with tempfile.TemporaryDirectory() as tmp:
    path = os.path.join(tmp, "diamond.ceci")
    save_ceci(ceci, path)
    size_kb = os.path.getsize(path) / 1024

    started = time.perf_counter()
    reloaded = load_ceci(path, data)
    load_time = time.perf_counter() - started

count = len(Enumerator(reloaded, symmetry=matcher.symmetry).collect())
print(f"index built in {build_time * 1000:.1f} ms, "
      f"persisted at {size_kb:.1f} KB, reloaded in {load_time * 1000:.1f} ms")
print(f"{count} diamond embeddings from the reloaded index\n")

# ----------------------------------------------------------------------
# 2. Containment screening over a database of small graphs.
# ----------------------------------------------------------------------
from repro.graph import erdos_renyi

database = GraphDatabase(
    erdos_renyi(30, 18 + seed % 45, seed=seed) for seed in range(200)
)
clique4 = Graph(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
result = database.contains(clique4)
print(f"database screening: {len(result.matches)}/{len(database)} graphs "
      f"contain a 4-clique")
print(f"  feature filter skipped {result.filtered_out} graphs outright, "
      f"{result.false_candidates} survived filtering but failed "
      f"verification\n")

# ----------------------------------------------------------------------
# 3. Approximate counting vs exact enumeration.
# ----------------------------------------------------------------------
exact_matcher = CECIMatcher(diamond, data, break_automorphisms=False)
started = time.perf_counter()
exact = exact_matcher.count()
exact_time = time.perf_counter() - started

sample_matcher = CECIMatcher(diamond, data, break_automorphisms=False)
started = time.perf_counter()
estimate = estimate_embeddings(sample_matcher, samples=2000, seed=7)
estimate_time = time.perf_counter() - started

print(f"exact count     : {exact} ({exact_time * 1000:.0f} ms)")
print(f"sampled estimate: {estimate.estimate:.0f} "
      f"({estimate_time * 1000:.0f} ms, {estimate.samples} walks, "
      f"{estimate.hits} complete)")
print(f"cardinality bound (free with the index): "
      f"{cardinality_bound(sample_matcher)}")
