#!/usr/bin/env python3
"""Quickstart: build a labeled graph, match a query, inspect the index.

Run:  python examples/quickstart.py
"""

from repro import CECIMatcher, Graph, match

# ----------------------------------------------------------------------
# 1. A small labeled data graph: two "communities" around hubs.
# ----------------------------------------------------------------------
data = Graph(
    num_vertices=9,
    edges=[
        (0, 1), (0, 2), (1, 2),          # triangle of A-B-C
        (2, 3), (3, 4), (2, 4),          # triangle of C-B-A
        (4, 5), (5, 6), (4, 6),          # triangle of A-B-C
        (6, 7), (7, 8),                  # a tail
    ],
    labels=["A", "B", "C", "B", "A", "B", "C", "B", "A"],
    name="quickstart-data",
)

# ----------------------------------------------------------------------
# 2. The query: an A-B-C triangle.
# ----------------------------------------------------------------------
query = Graph(3, [(0, 1), (1, 2), (0, 2)], labels=["A", "B", "C"])

# One-liner API ---------------------------------------------------------
embeddings = match(query, data)
print(f"{len(embeddings)} embeddings of the A-B-C triangle:")
for embedding in embeddings:
    mapping = ", ".join(
        f"u{u}->v{v}" for u, v in enumerate(embedding)
    )
    print(f"  {mapping}")

# ----------------------------------------------------------------------
# 3. The full matcher object exposes the pipeline and its statistics.
# ----------------------------------------------------------------------
matcher = CECIMatcher(query, data)
ceci = matcher.build()
print("\nCECI index:")
print(f"  root query vertex : u{matcher.tree.root}")
print(f"  matching order    : {[f'u{u}' for u in matcher.tree.order]}")
print(f"  embedding clusters: {len(ceci.pivots)} (pivots {ceci.pivots})")
print(f"  TE candidate edges: {ceci.te_edge_count()}")
print(f"  NTE candidate edges: {ceci.nte_edge_count()}")

found = matcher.match()
stats = matcher.stats
print("\nEnumeration statistics:")
print(f"  embeddings found  : {stats.embeddings_found}")
print(f"  recursive calls   : {stats.recursive_calls}")
print(f"  set intersections : {stats.intersections}")
print(f"  index size        : {stats.index_bytes} bytes "
      f"(theoretical bound {stats.theoretical_bytes(query.num_edges, data.num_edges)})")
