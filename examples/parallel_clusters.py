#!/usr/bin/env python3
"""Embedding clusters, ExtremeClusters, and workload balancing.

Reproduces Section 4's story on a skewed graph: the power-law hub owns a
cluster that dwarfs the rest, static distribution stalls on it, dynamic
pulling helps, and cardinality-guided ExtremeCluster decomposition (FGD)
splits the monster ahead of time.

Run:  python examples/parallel_clusters.py
"""

from repro import CECIMatcher
from repro.bench import QG3
from repro.graph import power_law
from repro.parallel import parallel_match, simulate_policy

data = power_law(num_vertices=1200, edges_per_vertex=5, seed=77, name="skewed")
matcher = CECIMatcher(QG3, data)

# ----------------------------------------------------------------------
# 1. Cluster skew: cardinality per cluster, biggest first.
# ----------------------------------------------------------------------
units = matcher.work_units(beta=None)
total = sum(u.workload for u in units)
print(f"{len(units)} embedding clusters, total cardinality {total:.0f}")
print("largest clusters (pivot: share of total):")
for unit in units[:5]:
    print(f"  v{unit.pivot:>5}: {100 * unit.workload / total:5.1f}%")

# ----------------------------------------------------------------------
# 2. ExtremeCluster decomposition: beta controls the split threshold.
# ----------------------------------------------------------------------
workers = 8
for beta in (1.0, 0.2, 0.1):
    decomposed = matcher.work_units(worker_count=workers, beta=beta)
    fragments = sum(1 for u in decomposed if u.depth > 1)
    print(f"beta={beta:<4}: {len(decomposed):>5} work units "
          f"({fragments} are sub-clusters)")

# ----------------------------------------------------------------------
# 3. Simulated makespan of the three policies (Figure 11's comparison).
# ----------------------------------------------------------------------
print(f"\nsimulated speedup on {workers} workers:")
for policy in ("ST", "CGD", "FGD"):
    result = simulate_policy(matcher, workers=workers, policy=policy, beta=0.2)
    print(f"  {policy}: speedup {result.speedup:5.2f}x "
          f"(makespan {result.makespan:.0f} ops, skew {result.assignment.skew:.2f})")

# ----------------------------------------------------------------------
# 4. Real threads: the pull-based pool produces the exact sequential
#    embedding set, partitioned across workers.
# ----------------------------------------------------------------------
sequential = set(CECIMatcher(QG3, data).match())
fresh = CECIMatcher(QG3, data)
parallel, reports = parallel_match(fresh, workers=4, policy="FGD", beta=0.2)
print(f"\nthread pool: {len(parallel)} embeddings "
      f"(sequential found {len(sequential)}; equal: {set(parallel) == sequential})")
for report in reports:
    print(f"  worker {report.worker_id}: {len(report.embeddings)} embeddings, "
          f"{report.units_processed} units")
