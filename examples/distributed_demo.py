#!/usr/bin/env python3
"""Distributed CECI on a simulated 16-machine cluster (Section 5).

Shows both storage designs — replicated in-memory graph vs a shared
lustre-like CSR store — with lightweight pivot partitioning, Jaccard
co-location, and MPI_Get-style work stealing.  Machine counts sweep
1..16 like Figures 16/17.

Run:  python examples/distributed_demo.py
"""

from repro import CECIMatcher
from repro.bench import QG1
from repro.distributed import DistributedCECI
from repro.graph import power_law

data = power_law(num_vertices=2000, edges_per_vertex=6, seed=88, name="FS-ish")
sequential = CECIMatcher(QG1, data).count()
print(f"data graph: {data.num_vertices} vertices, {data.num_edges} edges; "
      f"{sequential} triangle embeddings\n")

for mode, label in (("memory", "replicated in-memory graph"),
                    ("shared", "shared CSR storage (lustre-like)")):
    print(f"--- {label} ---")
    base_time = None
    print(f"{'machines':>9} {'total':>10} {'constr':>10} {'enum':>9} "
          f"{'steals':>7} {'speedup':>8}")
    for machines in (1, 2, 4, 8, 16):
        result = DistributedCECI(
            QG1, data, num_machines=machines, mode=mode
        ).run()
        assert len(result.embeddings) == sequential
        if base_time is None:
            base_time = result.total_time
        steals = sum(r.steals for r in result.reports)
        print(f"{machines:>9} {result.total_time:>10.0f} "
              f"{result.construction_makespan:>10.0f} "
              f"{result.enumeration_makespan:>9.0f} {steals:>7} "
              f"{base_time / result.total_time:>7.2f}x")
    breakdown = result.construction_breakdown()
    print(f"construction breakdown at 16 machines: "
          f"io={breakdown['io']:.0f} comm={breakdown['comm']:.0f} "
          f"compute={breakdown['compute']:.0f}\n")

print("Both modes enumerate the identical embedding set; the shared mode "
      "trades per-machine memory for IO during CECI construction.")
