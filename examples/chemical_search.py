#!/usr/bin/env python3
"""Sub-compound search over a set of synthetic molecule-like graphs.

Chem-informatics sub-compound search [54] asks: which compounds in a
database contain a given functional-group pattern?  Vertices are atoms
(labels = element symbols), edges are bonds.  This example builds a
small database of random molecule-like labeled graphs, then screens it
for two patterns using :func:`repro.find_embedding` (containment) and
:func:`repro.match` (all occurrences).

Run:  python examples/chemical_search.py
"""

import random

from repro import Graph, find_embedding, match
from repro.graph import GraphBuilder

ELEMENTS = ["C", "C", "C", "C", "O", "N", "S"]  # carbon-rich universe


def random_molecule(seed: int, atoms: int = 14) -> Graph:
    """A connected random 'molecule': tree skeleton + a few ring bonds."""
    rng = random.Random(seed)
    builder = GraphBuilder(name=f"mol{seed}")
    for a in range(atoms):
        builder.add_vertex(a, labels=[rng.choice(ELEMENTS)])
        if a > 0:
            builder.add_edge(rng.randrange(a), a)  # tree bond
    for _ in range(rng.randint(1, 3)):             # ring-closing bonds
        x, y = rng.randrange(atoms), rng.randrange(atoms)
        if x != y:
            builder.add_edge(x, y)
    return builder.build()


database = [random_molecule(seed) for seed in range(60)]

# Pattern 1: a C-O-C ether-like linkage.
ether = Graph(3, [(0, 1), (1, 2)], labels=["C", "O", "C"])

# Pattern 2: a carbon ring of size 3 with an attached N (aziridine-ish).
ring_with_n = Graph(
    4, [(0, 1), (1, 2), (0, 2), (2, 3)], labels=["C", "C", "C", "N"]
)

for pattern, name in ((ether, "C-O-C linkage"), (ring_with_n, "C3 ring + N")):
    hits = [
        molecule for molecule in database if find_embedding(pattern, molecule)
    ]
    print(f"pattern {name!r}: contained in {len(hits)}/{len(database)} molecules")
    # occurrence counts for the first few hits
    for molecule in hits[:3]:
        occurrences = match(pattern, molecule)
        print(f"  {molecule.name}: {len(occurrences)} occurrence(s); "
              f"first at atoms {occurrences[0]}")
    print()

# ----------------------------------------------------------------------
# Containment screening is the limit=1 case of subgraph listing — the
# paper's Section 7 draws exactly this line between the two problems.
# ----------------------------------------------------------------------
total_occurrences = sum(len(match(ether, m)) for m in database)
print(f"total C-O-C occurrences across the database: {total_occurrences}")
