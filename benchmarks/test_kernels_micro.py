"""Intersection-kernel micro-benchmarks (DESIGN.md §7).

Sweeps the two axes the adaptive dispatcher decides on:

* **size ratio** — a short list against a 1x/10x/100x/1000x longer one
  drawn from a shared universe.  Galloping must beat linear merge by a
  widening margin as the skew grows (the acceptance bar is >= 2x at
  1:1000; measured is typically far higher).
* **density** — lists covering a growing fraction of a small shared
  span.  The bitset kernel's word-parallel AND should overtake merge
  once the shortest list is dense in the span.

Results land in ``benchmarks/results/BENCH_kernels.json``.  Timing is
plain ``perf_counter`` best-of-N (no pytest-benchmark dependency), so a
bare ``pytest benchmarks/test_kernels_micro.py`` works in CI.
"""

from __future__ import annotations

import json
import os
import random
import time
from typing import Dict, List, Sequence

from repro.kernels import (
    choose_kernel,
    intersect_bitset,
    intersect_gallop,
    intersect_merge,
)

KERNELS = {
    "merge": intersect_merge,
    "gallop": intersect_gallop,
    "bitset": intersect_bitset,
}

#: Acceptance bar: gallop over merge at the most skewed ratio.
MIN_GALLOP_SPEEDUP_AT_1000 = 2.0

SHORT = 50
RATIOS = (1, 10, 100, 1000)
DENSITY_SPAN = 4096
DENSITIES = (1 / 32, 1 / 8, 1 / 4, 1 / 2)


def _best_of(fn, *, repeats: int = 5, inner: int = 10) -> float:
    """Best mean-over-inner-loop wall time in microseconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            fn()
        elapsed = (time.perf_counter() - start) / inner
        best = min(best, elapsed)
    return best * 1e6


def _ratio_case(rng: random.Random, ratio: int) -> List[List[int]]:
    universe = SHORT * ratio * 3
    a = sorted(rng.sample(range(universe), SHORT))
    b = sorted(rng.sample(range(universe), SHORT * ratio))
    return [a, b]


def _density_case(rng: random.Random, density: float) -> List[List[int]]:
    size = int(DENSITY_SPAN * density)
    a = sorted(rng.sample(range(DENSITY_SPAN), size))
    b = sorted(rng.sample(range(DENSITY_SPAN), size))
    return [a, b]


def _measure(lists: Sequence[Sequence[int]]) -> Dict[str, float]:
    return {
        name: _best_of(lambda kernel=kernel: kernel(lists))
        for name, kernel in KERNELS.items()
    }


def test_kernels_micro(results_dir):
    rng = random.Random(20190624)  # CECI's SIGMOD publication date
    report = {
        "generated_by": "benchmarks/test_kernels_micro.py",
        "short_list_size": SHORT,
        "size_ratio_sweep": [],
        "density_sweep": [],
    }

    for ratio in RATIOS:
        lists = _ratio_case(rng, ratio)
        expected = KERNELS["merge"](lists)
        for name, kernel in KERNELS.items():
            assert kernel(lists) == expected, (ratio, name)
        timing = _measure(lists)
        report["size_ratio_sweep"].append({
            "ratio": ratio,
            "sizes": [len(values) for values in lists],
            "result_size": len(expected),
            "auto_kernel": choose_kernel(lists),
            "us": timing,
            "gallop_speedup_vs_merge": timing["merge"] / timing["gallop"],
        })

    for density in DENSITIES:
        lists = _density_case(rng, density)
        expected = KERNELS["merge"](lists)
        for name, kernel in KERNELS.items():
            assert kernel(lists) == expected, (density, name)
        timing = _measure(lists)
        report["density_sweep"].append({
            "density": density,
            "span": DENSITY_SPAN,
            "sizes": [len(values) for values in lists],
            "result_size": len(expected),
            "auto_kernel": choose_kernel(lists),
            "us": timing,
            "bitset_speedup_vs_merge": timing["merge"] / timing["bitset"],
        })

    extreme = report["size_ratio_sweep"][-1]
    assert extreme["ratio"] == 1000
    report["acceptance"] = {
        "min_gallop_speedup_at_1000": MIN_GALLOP_SPEEDUP_AT_1000,
        "measured_gallop_speedup_at_1000": extreme["gallop_speedup_vs_merge"],
    }

    path = os.path.join(results_dir, "BENCH_kernels.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    # The dispatcher must route the extremes to the right kernels...
    assert extreme["auto_kernel"] == "gallop"
    assert report["size_ratio_sweep"][0]["auto_kernel"] in ("merge", "bitset")
    assert report["density_sweep"][-1]["auto_kernel"] == "bitset"
    # ...and the headline claim must hold with margin.
    assert extreme["gallop_speedup_vs_merge"] >= MIN_GALLOP_SPEEDUP_AT_1000, (
        f"gallop only {extreme['gallop_speedup_vs_merge']:.2f}x over merge "
        f"at 1:1000 (need >= {MIN_GALLOP_SPEEDUP_AT_1000}x); see {path}"
    )
