"""Figure 18 — reduction of recursive calls by CECI over PsgL for
QG1..QG5 (the paper's proxy for total search space).

Paper result: up to 44% reduction, growing with query complexity —
CECI's filtering and refinement prune false search paths that PsgL must
explore and kill one by one.  Both systems count the paper's metric:
one recursive call per intermediate match materialized.  The WT analog
(star-heavy, like the real wiki-talk) is where index-free expansion
wastes the most work; CECI runs the edge-ranked order (Section 2.2).
"""

from conftest import run_once
from repro import CECIMatcher
from repro.baselines import PsgLMatcher
from repro.bench import ResultTable, load_dataset, query_graph

QUERIES = ["QG1", "QG2", "QG3", "QG4", "QG5"]


def test_fig18_recursive_calls(benchmark, publish):
    def experiment():
        data = load_dataset("WT")
        table = ResultTable(
            "Figure 18: % reduction of recursive calls vs PsgL (WT)",
            ["Query", "CECI calls", "PsgL calls", "reduction %"],
        )
        reductions = {}
        for qname in QUERIES:
            query = query_graph(qname)
            ceci = CECIMatcher(query, data, order_strategy="edge_ranked")
            ceci_found = len(ceci.match())
            psgl = PsgLMatcher(query, data)
            psgl_found = len(psgl.match())
            assert ceci_found == psgl_found
            reduction = 100.0 * (
                1.0 - ceci.stats.recursive_calls / psgl.stats.recursive_calls
            )
            reductions[qname] = reduction
            table.add(Query=qname,
                      **{"CECI calls": ceci.stats.recursive_calls,
                         "PsgL calls": psgl.stats.recursive_calls,
                         "reduction %": reduction})
        table.note("paper: up to 44% reduction, larger on complex queries")
        return table, reductions

    table, reductions = run_once(benchmark, experiment)
    publish("fig18_recursive_calls", table)
    # Shape: CECI always explores no more than PsgL, with a material
    # reduction on at least the complex queries.
    assert all(r >= 0.0 for r in reductions.values())
    assert max(reductions.values()) > 20.0
