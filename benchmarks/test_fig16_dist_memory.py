"""Figure 16 — distributed speedup with the data graph replicated in
each machine's memory, QG1 and QG4, 1..16 machines.

Paper result: up to 13.72x (QG1) / 14.92x (QG4) at 16 machines on FS;
smaller graphs flatten earlier for lack of workload.
"""

from conftest import run_once
from repro.bench import ResultTable, load_dataset, query_graph
from repro.distributed import DistributedCECI

MACHINES = [1, 2, 4, 8, 16]


def test_fig16_dist_memory(benchmark, publish):
    def experiment():
        table = ResultTable(
            "Figure 16: distributed speedup, in-memory replicated graph",
            ["Query", "Dataset"] + [f"M={m}" for m in MACHINES],
        )
        curves = {}
        for qname in ("QG1", "QG4"):
            query = query_graph(qname)
            for abbr in ("FS", "OK"):
                data = load_dataset(abbr)
                base = None
                speedups = {}
                for machines in MACHINES:
                    result = DistributedCECI(
                        query, data, num_machines=machines, mode="memory"
                    ).run()
                    if base is None:
                        base = result.total_time
                    speedups[machines] = base / result.total_time
                curves[(qname, abbr)] = speedups
                table.add(Query=qname, Dataset=abbr,
                          **{f"M={m}": speedups[m] for m in MACHINES})
        table.note("paper: 13.72x (QG1) / 14.92x (QG4) at 16 machines on FS")
        return table, curves

    table, curves = run_once(benchmark, experiment)
    publish("fig16_dist_memory", table)
    for key, speedups in curves.items():
        assert speedups[16] > speedups[4] > speedups[1] * 1.5, key
