"""Service benchmark: warm-vs-cold index reuse, latency, throughput.

Runs the same deterministic three-phase workload as ``repro
bench-service`` (identical defaults: 10k-vertex power-law data graph,
24 labels, 6 query classes, 30 mixed open-loop requests) and archives
the report as ``benchmarks/results/BENCH_service.json`` — the file the
CI service job validates.

The acceptance bar is the PR's headline claim: a warm request (index
served from the cross-query cache) must complete at least
``MIN_WARM_SPEEDUP``x faster than its cold build, and every warm-phase
request must actually ride the cache's hit path.
"""

from __future__ import annotations

import json
import os

from repro.graph import inject_labels
from repro.graph.generators import power_law
from repro.service import MatchService, run_benchmark

#: Warm requests must run at least this many times faster than cold.
MIN_WARM_SPEEDUP = 3.0


def test_service_bench(results_dir):
    data = inject_labels(power_law(10000, 3, seed=7), 24, seed=7)
    with MatchService(data, workers=2) as service:
        report = run_benchmark(
            service,
            num_queries=6,
            mixed_requests=30,
            seed=0,
            min_vertices=6,
            max_vertices=8,
            max_embeddings=200,
        )

    assert report["schema"] == 1
    assert report["warm_speedup"] >= MIN_WARM_SPEEDUP, (
        f"warm path only {report['warm_speedup']:.2f}x faster than cold "
        f"(bar: {MIN_WARM_SPEEDUP}x) — index reuse has regressed"
    )
    assert all(tag == "hit" for tag in report["warm_cache_tags"]), (
        report["warm_cache_tags"]
    )
    statuses = report["statuses"]
    assert statuses["ok"] == 2 * 6 + 30
    assert statuses["rejected"] == statuses["failed"] == 0
    assert report["index_cache"]["misses"] == 6
    assert report["throughput_rps"] > 0

    path = os.path.join(results_dir, "BENCH_service.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
