"""Figure 8 — CECI vs DualSim vs PsgL on QG2, QG3 and QG5 over the WG,
WT and LJ analogs (all embeddings).

Paper result: average speedups of 19.7x / 49.3x / 86.7x over PsgL and
2.5x / 1.7x / 19.8x over DualSim for QG2 / QG3 / QG5 — CECI wins
everywhere with real work, and the margin grows with query complexity
(QG5's five levels leave the most room for pruning).
"""

import time

from conftest import run_once
from repro import CECIMatcher
from repro.baselines import DualSimMatcher, PsgLMatcher
from repro.bench import ResultTable, geometric_mean, load_dataset, query_graph

DATASETS = ["WG", "WT", "LJ"]
QUERIES = ["QG2", "QG3", "QG5"]
AT_SCALE_ENUM_SHARE = 0.5  # paper regime: enumeration >95% of runtime


def test_fig08_more_queries(benchmark, publish):
    def experiment():
        table = ResultTable(
            "Figure 8: runtime in seconds, all embeddings",
            ["Query", "Dataset", "embeddings", "CECI", "DualSim", "PsgL",
             "vs DualSim", "vs PsgL", "at scale"],
        )
        at_scale_psgl = []
        for qname in QUERIES:
            query = query_graph(qname)
            for abbr in DATASETS:
                data = load_dataset(abbr)
                started = time.perf_counter()
                ceci = CECIMatcher(query, data)
                count = ceci.count()
                ceci_t = time.perf_counter() - started
                phases = ceci.stats.phase_seconds
                share = phases.get("enumerate", 0.0) / (sum(phases.values()) or 1.0)

                started = time.perf_counter()
                dual_count = len(DualSimMatcher(query, data).match())
                dual_t = time.perf_counter() - started

                started = time.perf_counter()
                psgl_count = len(PsgLMatcher(query, data).match())
                psgl_t = time.perf_counter() - started

                assert count == dual_count == psgl_count
                at_scale = share >= AT_SCALE_ENUM_SHARE
                psgl_ratio = psgl_t / ceci_t if ceci_t > 0 else 1.0
                if at_scale:
                    at_scale_psgl.append(psgl_ratio)
                table.add(Query=qname, Dataset=abbr, embeddings=count,
                          CECI=ceci_t, DualSim=dual_t, PsgL=psgl_t,
                          **{"vs DualSim": dual_t / ceci_t if ceci_t else 1.0,
                             "vs PsgL": psgl_ratio,
                             "at scale": "Y" if at_scale else "-"})
        table.note(
            f"at-scale geomean speedup vs PsgL "
            f"{geometric_mean(at_scale_psgl):.2f}x "
            "(paper averages 19.7x-86.7x on graphs 1000x larger)"
        )
        return table, at_scale_psgl

    table, at_scale_psgl = run_once(benchmark, experiment)
    publish("fig08_more_queries", table)
    assert geometric_mean(at_scale_psgl) > 1.0
