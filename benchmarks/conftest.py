"""Shared infrastructure for the per-figure benchmark files.

Each ``test_*`` file regenerates one table or figure of the paper.  The
pattern: the experiment driver runs once under ``benchmark.pedantic``
(so ``pytest benchmarks/ --benchmark-only`` reports its wall time), and
the paper-style result table is printed and archived under
``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import os
import sys

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def publish(results_dir):
    """Print a ResultTable and archive it as results/<name>.txt."""

    def _publish(name: str, *tables) -> None:
        rendered = "\n\n".join(table.render() for table in tables)
        path = os.path.join(results_dir, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        sys.stderr.write("\n" + rendered + "\n")

    return _publish


def run_once(benchmark, fn):
    """Run the experiment driver exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
