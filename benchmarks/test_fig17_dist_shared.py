"""Figure 17 — distributed speedup with the graph on shared (lustre-
like) storage, QG1 and QG4, 1..16 machines.

Paper result: still 12.6x (QG1) / 13.57x (QG4) at 16 machines, slightly
below the in-memory design; construction pays heavy IO but each node's
memory drops by up to |E|.
"""

from conftest import run_once
from repro.bench import ResultTable, load_dataset, query_graph
from repro.distributed import DistributedCECI, InMemoryStorage, SharedStorage

MACHINES = [1, 2, 4, 8, 16]


def test_fig17_dist_shared(benchmark, publish):
    def experiment():
        table = ResultTable(
            "Figure 17: distributed speedup, shared CSR storage",
            ["Query", "Dataset"] + [f"M={m}" for m in MACHINES]
            + ["constr IO share"],
        )
        curves = {}
        memory_saving = None
        for qname in ("QG1", "QG4"):
            query = query_graph(qname)
            for abbr in ("FS",):
                data = load_dataset(abbr)
                base = None
                speedups = {}
                for machines in MACHINES:
                    result = DistributedCECI(
                        query, data, num_machines=machines, mode="shared"
                    ).run()
                    if base is None:
                        base = result.total_time
                    speedups[machines] = base / result.total_time
                breakdown = result.construction_breakdown()
                io_share = breakdown["io"] / (
                    sum(breakdown.values()) or 1.0
                )
                curves[(qname, abbr)] = speedups
                table.add(Query=qname, Dataset=abbr,
                          **{f"M={m}": speedups[m] for m in MACHINES},
                          **{"constr IO share": io_share})
                if memory_saving is None:
                    replicated = InMemoryStorage(data)
                    shared = SharedStorage(data)
                    memory_saving = (
                        replicated.memory_bytes_per_machine(16)
                        / shared.memory_bytes_per_machine(16)
                    )
        table.note(f"per-machine graph memory shrinks {memory_saving:.1f}x "
                   "under shared storage (paper: 'reduced by up to |E|')")
        table.note("paper: 12.6x (QG1) / 13.57x (QG4) at 16 machines")
        return table, curves

    table, curves = run_once(benchmark, experiment)
    publish("fig17_dist_shared", table)
    for key, speedups in curves.items():
        assert speedups[16] > speedups[4] > speedups[1] * 1.5, key
