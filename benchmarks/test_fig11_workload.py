"""Figure 11 — speedup of CGD and FGD over static (ST) workload
distribution, for QG1 / QG3 / QG5 (workload imbalance at backtracking
depths 3 / 4 / 5), beta = 0.2.

Paper result: FGD and CGD clearly beat ST; FGD beats CGD except where no
ExtremeCluster exists (their WT-on-QG3 case), where the extra
decomposition overhead makes FGD marginally slower.
"""

from conftest import run_once
from repro import CECIMatcher
from repro.bench import ResultTable, geometric_mean, load_dataset, query_graph
from repro.parallel import simulate_policy

DATASETS = ["FS", "OK", "LJ"]
QUERIES = ["QG1", "QG3", "QG5"]
WORKERS = 16
BETA = 0.2


def test_fig11_workload(benchmark, publish):
    def experiment():
        table = ResultTable(
            f"Figure 11: speedup over ST ({WORKERS} workers, beta={BETA})",
            ["Query", "Dataset", "ST", "CGD", "FGD",
             "CGD/ST", "FGD/ST"],
        )
        cgd_gains, fgd_gains = [], []
        for qname in QUERIES:
            query = query_graph(qname)
            for abbr in DATASETS:
                if qname == "QG5" and abbr in ("FS", "OK"):
                    continue  # QG5 on the dense analogs is enumeration-bound
                data = load_dataset(abbr)
                matcher = CECIMatcher(query, data)
                st = simulate_policy(matcher, WORKERS, "ST")
                cgd = simulate_policy(matcher, WORKERS, "CGD")
                fgd = simulate_policy(matcher, WORKERS, "FGD", beta=BETA)
                cgd_gain = st.makespan / cgd.makespan if cgd.makespan else 1.0
                fgd_gain = st.makespan / (fgd.makespan + fgd.setup_cost) \
                    if fgd.makespan else 1.0
                cgd_gains.append(cgd_gain)
                fgd_gains.append(fgd_gain)
                table.add(Query=qname, Dataset=abbr,
                          ST=st.speedup, CGD=cgd.speedup, FGD=fgd.speedup,
                          **{"CGD/ST": cgd_gain, "FGD/ST": fgd_gain})
        table.note(
            f"geomean CGD/ST {geometric_mean(cgd_gains):.2f}x, "
            f"FGD/ST {geometric_mean(fgd_gains):.2f}x "
            "(paper: CGD 10.7x over ST; FGD 16.8x over CGD on their "
            "billion-edge graphs)"
        )
        return table, cgd_gains, fgd_gains

    table, cgd_gains, fgd_gains = run_once(benchmark, experiment)
    publish("fig11_workload", table)
    # Shape: dynamic beats static on average; FGD at least matches CGD.
    assert geometric_mean(cgd_gains) > 1.0
    assert geometric_mean(fgd_gains) > 1.0
