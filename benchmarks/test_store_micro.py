"""Compact-store micro-benchmark (DESIGN.md §8).

Builds the same CECI twice — once kept as the mutable dict builder,
once frozen into the flat-array :class:`~repro.core.store.CompactCECI`
— over several synthetic instances, and reports:

* **footprint** — ``memory_bytes`` per store; the acceptance bar is the
  compact store at or below half the dict store on every instance (the
  PR's headline claim);
* **enumeration throughput** — embeddings/second from each store (same
  embedding sets, asserted), gated: the compact store must enumerate at
  least :data:`MIN_THROUGHPUT_RATIO` times as fast as the dict store on
  every instance.  The set-at-a-time batch engine (DESIGN.md §12) is
  what clears the bar — before it, the compact store was 1.4–2.2x
  *slower* through the per-embedding recursion.

Results land in ``benchmarks/results/BENCH_store.json``; the CI
store-bench job re-runs this and fails the build on a footprint *or
throughput* regression.  Timing is plain ``perf_counter`` best-of-N, so
a bare ``pytest benchmarks/test_store_micro.py`` works without
pytest-benchmark.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List

from repro import CECIMatcher, Graph
from repro.graph import generate_query, inject_labels, power_law

#: Acceptance bar: dict-store bytes / compact-store bytes per instance.
MIN_MEMORY_RATIO = 2.0

#: Acceptance bar: dict-store seconds / compact-store seconds per
#: instance — the compact store may never be slower to enumerate than
#: the representation it replaced.
MIN_THROUGHPUT_RATIO = 1.0

INSTANCES = (
    {"name": "pl300-q4", "vertices": 300, "labels": 3, "qsize": 4, "seed": 11},
    {"name": "pl500-q5", "vertices": 500, "labels": 3, "qsize": 5, "seed": 23},
    {"name": "pl800-q4", "vertices": 800, "labels": 4, "qsize": 4, "seed": 47},
)


def _make_instance(spec) -> tuple:
    data = inject_labels(
        power_law(spec["vertices"], 5, seed=spec["seed"],
                  min_edges_per_vertex=1),
        spec["labels"],
        seed=spec["seed"],
    )
    query = generate_query(data, spec["qsize"], seed=spec["seed"] * 13 + 1)
    return query, data


def _best_enumeration_seconds(
    query: Graph, data: Graph, store: str, repeats: int = 3
) -> tuple:
    """(best seconds for a full enumeration from a pre-built index,
    embedding list, built matcher)."""
    matcher = CECIMatcher(query, data, store=store, use_intersection=True)
    matcher.build()  # index construction excluded from the timing
    best = float("inf")
    embeddings: List = []
    for _ in range(repeats):
        start = time.perf_counter()
        embeddings = matcher.match()
        best = min(best, time.perf_counter() - start)
    return best, embeddings, matcher


def test_store_micro(results_dir):
    report: Dict = {
        "generated_by": "benchmarks/test_store_micro.py",
        "acceptance": {
            "min_memory_ratio": MIN_MEMORY_RATIO,
            "min_throughput_ratio": MIN_THROUGHPUT_RATIO,
        },
        "instances": [],
    }

    worst_ratio = float("inf")
    worst_throughput = float("inf")
    for spec in INSTANCES:
        query, data = _make_instance(spec)
        d_secs, d_embeddings, d_matcher = _best_enumeration_seconds(
            query, data, "dict"
        )
        c_secs, c_embeddings, c_matcher = _best_enumeration_seconds(
            query, data, "compact"
        )
        assert sorted(d_embeddings) == sorted(c_embeddings), spec["name"]

        d_bytes = d_matcher.stats.memory_bytes
        c_bytes = c_matcher.stats.memory_bytes
        assert c_bytes > 0, spec["name"]
        ratio = d_bytes / c_bytes
        worst_ratio = min(worst_ratio, ratio)
        throughput_ratio = d_secs / c_secs if c_secs else float("inf")
        worst_throughput = min(worst_throughput, throughput_ratio)
        count = len(c_embeddings)
        report["instances"].append({
            "name": spec["name"],
            "data_vertices": data.num_vertices,
            "data_edges": data.num_edges,
            "query_vertices": query.num_vertices,
            "embeddings": count,
            "dict_memory_bytes": d_bytes,
            "compact_memory_bytes": c_bytes,
            "memory_ratio": ratio,
            "dict_enumeration_seconds": d_secs,
            "compact_enumeration_seconds": c_secs,
            "dict_embeddings_per_second": count / d_secs if d_secs else 0.0,
            "compact_embeddings_per_second": count / c_secs if c_secs else 0.0,
            "throughput_delta": (
                (d_secs - c_secs) / d_secs if d_secs else 0.0
            ),
            "throughput_ratio": throughput_ratio,
            "freeze_seconds": c_matcher.stats.phase_seconds.get("freeze", 0.0),
            "kernel_array_calls": c_matcher.stats.kernel_array_calls,
            "batch_blocks": c_matcher.stats.batch_blocks,
            "batch_rows": c_matcher.stats.batch_rows,
        })

    report["acceptance"]["measured_worst_memory_ratio"] = worst_ratio
    report["acceptance"]["measured_worst_throughput_ratio"] = worst_throughput

    path = os.path.join(results_dir, "BENCH_store.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    assert worst_ratio >= MIN_MEMORY_RATIO, (
        f"compact store only {worst_ratio:.2f}x smaller than the dict "
        f"store (need >= {MIN_MEMORY_RATIO}x); see {path}"
    )
    assert worst_throughput >= MIN_THROUGHPUT_RATIO, (
        f"compact store enumerates at only {worst_throughput:.2f}x the "
        f"dict store's throughput (need >= {MIN_THROUGHPUT_RATIO}x); "
        f"see {path}"
    )
