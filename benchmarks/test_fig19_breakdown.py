"""Figure 19 — breakdown of CECI's speedup over the bare-graph listing
baseline into its constituent techniques.

The paper stacks the gain from: embedding clusters (parallelizable
pivots), BFS filtering, reverse-BFS refinement, and intersection-based
enumeration — summing to as much as two orders of magnitude over
listing straight off the graph.  Here each technique is toggled
cumulatively and the recursive-call count (the machine-independent cost
measure) plus wall time are reported.
"""

import time

from conftest import run_once
from repro import CECIMatcher
from repro.baselines import BareMatcher
from repro.bench import ResultTable, load_dataset, query_graph

CONFIGS = [
    ("bare graph", None),
    ("+ filtering (LF/DF)", dict(use_nlc_filter=False, use_refinement=False,
                                 use_intersection=False)),
    ("+ NLC filter", dict(use_refinement=False, use_intersection=False)),
    ("+ refinement", dict(use_intersection=False)),
    ("+ intersection (full CECI)", dict()),
]


def test_fig19_breakdown(benchmark, publish):
    def experiment():
        data = load_dataset("OK")
        query = query_graph("QG4")
        table = ResultTable(
            "Figure 19: cumulative technique breakdown (QG4 on OK)",
            ["configuration", "recursive calls", "edge checks", "seconds",
             "speedup vs bare"],
        )
        started = time.perf_counter()
        bare = BareMatcher(query, data)
        bare_count = len(bare.match())
        bare_time = time.perf_counter() - started
        bare_calls = bare.stats.recursive_calls
        table.add(configuration="bare graph",
                  **{"recursive calls": bare_calls,
                     "edge checks": bare.stats.edge_verifications,
                     "seconds": bare_time, "speedup vs bare": 1.0})
        timings = {"bare graph": bare_time}
        calls = {"bare graph": bare_calls}
        for label, options in CONFIGS[1:]:
            started = time.perf_counter()
            matcher = CECIMatcher(query, data, **options)
            count = len(matcher.match())
            elapsed = time.perf_counter() - started
            assert count == bare_count
            timings[label] = elapsed
            calls[label] = matcher.stats.recursive_calls
            table.add(configuration=label,
                      **{"recursive calls": matcher.stats.recursive_calls,
                         "edge checks": matcher.stats.edge_verifications,
                         "seconds": elapsed,
                         "speedup vs bare": bare_time / elapsed})
        table.note("paper: CECI-based listing up to 2 orders of magnitude "
                   "faster than bare-graph listing, construction included")
        return table, timings, calls

    table, timings, calls = run_once(benchmark, experiment)
    publish("fig19_breakdown", table)
    full = "+ intersection (full CECI)"
    assert timings[full] < timings["bare graph"]
    assert calls[full] <= calls["bare graph"]
    # the full pipeline does no edge verification at all
    assert table.rows[-1]["edge checks"] == 0
