"""Sharded-tier horizontal-scaling benchmark (DESIGN.md §14).

Runs the same deterministic workload through a
:class:`~repro.service.shards.ShardedMatchService` at 1, 2 and 4 shard
processes and archives the sweep as
``benchmarks/results/BENCH_shard.json`` — the file the CI shards job
validates.

The acceptance bar is the PR's headline claim: partitioning pivots
across 4 shards must cut the *critical path* — the longest per-shard
CPU-busy chain, what wall clock would be with a core per shard — to at
least ``MIN_SHARD_SPEEDUP``x below the single-shard baseline.  (CI
runners and this container typically expose one CPU, so wall clock
cannot show the win; ``time.process_time`` in the shard workers
measures it free of time-slice noise, the same simulated-speedup
substitution DESIGN.md §2 uses for the intersection pool.  The sweep
records ``wall_speedup`` alongside for machines with real
parallelism.)
"""

from __future__ import annotations

import json
import os

from repro.graph import inject_labels
from repro.graph.generators import power_law
from repro.service import run_shard_benchmark

#: The 4-shard critical path must be at least this many times shorter
#: than the 1-shard one.
MIN_SHARD_SPEEDUP = 1.5

SHARD_COUNTS = (1, 2, 4)


def test_shard_bench(results_dir):
    data = inject_labels(power_law(4000, 3, seed=7), 12, seed=7)
    report = run_shard_benchmark(
        data,
        shard_counts=SHARD_COUNTS,
        num_queries=6,
        requests=30,
        seed=0,
        min_vertices=4,
        max_vertices=6,
        max_embeddings=2000,
    )

    assert report["schema"] == 1
    assert report["kind"] == "shard_scaling"
    points = report["points"]
    assert [point["shards"] for point in points] == list(SHARD_COUNTS)
    for point in points:
        assert len(point["shard_busy_seconds"]) == point["shards"]
        assert point["critical_path_seconds"] > 0
        assert point["throughput_rps"] > 0
        assert 0.0 < point["balance"] <= 1.0
    assert points[0]["shard_speedup"] == 1.0
    # Monotone-ish scaling with a hard bar at 4 shards.
    final = points[-1]
    assert final["shard_speedup"] >= MIN_SHARD_SPEEDUP, (
        f"4-shard critical path only {final['shard_speedup']:.2f}x "
        f"shorter than 1 shard (bar: {MIN_SHARD_SPEEDUP}x) — pivot "
        f"partitioning has regressed"
    )

    path = os.path.join(results_dir, "BENCH_shard.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
