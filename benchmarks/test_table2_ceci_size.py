"""Table 2 — CECI index size vs the theoretical ``|Eq| x |Eg| x 8``
bound for QG1..QG5 across six data graphs.

Paper result: BFS filtering plus reverse-BFS refinement cut the stored
index to roughly half the theoretical bound (31%-88% saved depending on
the pair) — e.g. QG5 on YH: 290 GB stored vs 624 GB theoretical.
"""

from conftest import run_once
from repro import CECIMatcher
from repro.bench import ResultTable, load_dataset, query_graph

DATASETS = ["FS", "LJ", "OK", "WT", "YH", "YT"]
QUERIES = ["QG1", "QG2", "QG3", "QG4", "QG5"]


def test_table2_ceci_size(benchmark, publish):
    def experiment():
        table = ResultTable(
            "Table 2: CECI size in KB (theoretical KB) [% saved]",
            ["Query"] + DATASETS,
        )
        savings = []
        for qname in QUERIES:
            query = query_graph(qname)
            row = {"Query": qname}
            for abbr in DATASETS:
                data = load_dataset(abbr)
                matcher = CECIMatcher(query, data)
                matcher.build()
                stats = matcher.stats
                actual_kb = stats.index_bytes / 1024
                theoretical_kb = stats.theoretical_bytes(
                    query.num_edges, data.num_edges
                ) / 1024
                saved = stats.space_saved_percent(
                    query.num_edges, data.num_edges
                )
                savings.append(saved)
                row[abbr] = f"{actual_kb:.1f} ({theoretical_kb:.0f}) [{saved:.0f}%]"
            table.add(**row)
        table.note("paper saves 31%-88% of the theoretical bound; "
                   "e.g. QG5xYH: 290 GB actual vs 624 GB theoretical (2.2x)")
        table.note("the analogs' low-degree tail is thinner than real "
                   "SNAP graphs', so absolute savings are smaller here; "
                   "the *ordering* matches — star-heavy WT saves the most, "
                   "exactly as in the paper's WT column")
        return table, savings

    table, savings = run_once(benchmark, experiment)
    publish("table2_ceci_size", table)
    # Shape: the index always fits strictly under the bound, savings are
    # material on average, and the star-heavy WT analog saves the most
    # (the paper's WT column is also its best: 83%-88%).
    assert all(s > 0.0 for s in savings)
    assert sum(savings) / len(savings) > 5.0
    per_dataset = {}
    for row in table.rows:
        for abbr in DATASETS:
            cell = str(row[abbr])
            saved = float(cell.split("[")[1].rstrip("%]"))
            per_dataset.setdefault(abbr, []).append(saved)
    averages = {a: sum(v) / len(v) for a, v in per_dataset.items()}
    assert max(averages, key=averages.get) == "WT"
