"""Figures 13 & 14 — thread scalability of CECI vs PsgL for QG1 (Fig 13)
and QG4 (Fig 14) on the FS and OK analogs.

Paper result: CECI scales near-linearly to 16 workers and flattens
beyond (insufficient workload); PsgL scales worse throughout because of
its per-embedding work distribution.  Both trends are replayed on the
simulated-time executor (DESIGN.md substitution: the GIL hides real
thread speedup in pure Python).
"""

from conftest import run_once
from repro import CECIMatcher
from repro.baselines import PsgLMatcher
from repro.bench import ResultTable, load_dataset, query_graph
from repro.parallel import speedup_curve

WORKER_COUNTS = [1, 2, 4, 8, 16, 32]


def test_fig13_14_scalability(benchmark, publish):
    def experiment():
        tables = []
        curves = {}
        for fig, qname in (("13", "QG1"), ("14", "QG4")):
            query = query_graph(qname)
            table = ResultTable(
                f"Figure {fig}: speedup vs worker count ({qname})",
                ["Dataset", "system"] + [str(w) for w in WORKER_COUNTS],
            )
            for abbr in ("FS", "OK"):
                data = load_dataset(abbr)
                matcher = CECIMatcher(query, data)
                ceci_curve = speedup_curve(matcher, WORKER_COUNTS, "FGD")
                table.add(Dataset=abbr, system="CECI",
                          **{str(w): ceci_curve[w] for w in WORKER_COUNTS})

                psgl = PsgLMatcher(query, data)
                psgl.match()
                base = psgl.simulate_parallel(1)
                psgl_curve = {
                    w: base / psgl.simulate_parallel(w) for w in WORKER_COUNTS
                }
                table.add(Dataset=abbr, system="PsgL",
                          **{str(w): psgl_curve[w] for w in WORKER_COUNTS})
                curves[(qname, abbr)] = (ceci_curve, psgl_curve)
            table.note("paper: near-linear CECI speedup to 16 threads, "
                       "flattening beyond; PsgL consistently below")
            tables.append(table)
        return tables, curves

    tables, curves = run_once(benchmark, experiment)
    publish("fig13_14_scalability", *tables)
    for (qname, abbr), (ceci_curve, psgl_curve) in curves.items():
        # CECI speedup grows with workers in the linear region...
        assert ceci_curve[8] > ceci_curve[2] > ceci_curve[1] * 1.2
        # ...and dominates PsgL at every width beyond one worker.
        for w in (4, 8, 16):
            assert ceci_curve[w] > psgl_curve[w], (qname, abbr, w)
