"""Figure 10 — CECI vs TurboIso vs Boosted-TurboIso, first 1,024
embeddings of DFS-generated labeled queries on the HU analog.

Paper result: CECI is on average 2.71x faster than TurboIso and 2.52x
than Boosted-TurboIso; the boost (data-side symmetry) helps TurboIso a
little but CECI's NTE intersection and one-pass filtering keep it ahead.
"""

import time

from conftest import run_once
from repro import CECIMatcher
from repro.baselines import (
    BoostedTurboIsoMatcher,
    TurboIsoMatcher,
    data_vertex_classes,
)
from repro.bench import ResultTable, geometric_mean, load_dataset
from repro.graph import generate_query_set

QUERY_SIZES = [4, 8, 12, 16, 24]
QUERIES_PER_SIZE = 5
LIMIT = 1024


def test_fig10_turboiso(benchmark, publish):
    def experiment():
        data = load_dataset("HU")
        data_vertex_classes(data)  # BoostIso's offline adapted graph
        table = ResultTable(
            "Figure 10: avg runtime (ms) for first 1,024 embeddings on HU",
            ["|Vq|", "CECI(ms)", "TurboIso(ms)", "Boosted(ms)",
             "vs TurboIso", "vs Boosted"],
        )
        turbo_ratios, boosted_ratios = [], []
        for size in QUERY_SIZES:
            queries = generate_query_set(data, size, QUERIES_PER_SIZE,
                                         seed=size * 13)
            ceci_total = turbo_total = boosted_total = 0.0
            for query in queries:
                started = time.perf_counter()
                found = CECIMatcher(
                    query, data, order_strategy="edge_ranked"
                ).match(limit=LIMIT)
                ceci_total += time.perf_counter() - started
                assert found

                started = time.perf_counter()
                TurboIsoMatcher(query, data).match(limit=LIMIT)
                turbo_total += time.perf_counter() - started

                started = time.perf_counter()
                BoostedTurboIsoMatcher(query, data).match(limit=LIMIT)
                boosted_total += time.perf_counter() - started
            turbo_ratios.append(turbo_total / ceci_total)
            boosted_ratios.append(boosted_total / ceci_total)
            table.add(**{
                "|Vq|": size,
                "CECI(ms)": 1000 * ceci_total / QUERIES_PER_SIZE,
                "TurboIso(ms)": 1000 * turbo_total / QUERIES_PER_SIZE,
                "Boosted(ms)": 1000 * boosted_total / QUERIES_PER_SIZE,
                "vs TurboIso": turbo_total / ceci_total,
                "vs Boosted": boosted_total / ceci_total,
            })
        table.note(
            f"geomean speedup vs TurboIso {geometric_mean(turbo_ratios):.2f}x, "
            f"vs Boosted {geometric_mean(boosted_ratios):.2f}x "
            "(paper: 2.71x / 2.52x)"
        )
        return table, turbo_ratios, boosted_ratios

    table, turbo_ratios, boosted_ratios = run_once(benchmark, experiment)
    publish("fig10_turboiso", table)
    assert geometric_mean(turbo_ratios) > 1.0
    assert geometric_mean(boosted_ratios) > 1.0
