"""Observability-overhead micro-benchmark (DESIGN.md §9).

The tracing layer's contract is that the *disabled* path is near-free:
with the default :class:`~repro.observability.tracer.NullTracer` and no
progress reporter, enumeration pays one ``None`` check per recursive
call and two no-op calls per cluster.  This benchmark measures that
price directly:

* **seed control** — a subclass whose ``collect``/``_collect`` replicate
  the pre-observability hot path (no tracer attribute, no progress
  check), i.e. what the code looked like before this layer landed;
* **instrumented** — the shipping :class:`Enumerator` with observability
  left off (its default state).

Both run over the same pre-built index, interleaved best-of-N so drift
hits both sides equally.  The acceptance bar: instrumented-but-disabled
enumeration within ``MAX_DISABLED_OVERHEAD`` of the seed.  For scale the
report also measures the *enabled* cost (tracing to a null sink).

Results land in ``benchmarks/results/BENCH_observability.json``; the CI
observability job re-runs this and fails the build on a regression.
Timing is plain ``perf_counter``, so a bare
``pytest benchmarks/test_observability_micro.py`` works without
pytest-benchmark.
"""

from __future__ import annotations

import gc
import json
import os
import time
from typing import Dict, List

from repro import CECIMatcher
from repro.core.enumeration import Enumerator
from repro.graph import generate_query, inject_labels, power_law
from repro.observability import Tracer

#: Acceptance bar: (instrumented - seed) / seed with observability off.
MAX_DISABLED_OVERHEAD = 0.03

#: Interleaved timing rounds per variant (best-of-N).  The workload runs
#: ~40ms, so the bar is noise-sensitive; enough rounds stabilise the
#: minimum well under the 3% acceptance threshold.
ROUNDS = 20

INSTANCE = {"vertices": 600, "labels": 3, "qsize": 5, "seed": 31}


class _SeedEnumerator(Enumerator):
    """The pre-observability hot path: ``collect``/``_collect`` exactly
    as they were before the tracer/progress hooks, so the delta measured
    against :class:`Enumerator` is the hooks and nothing else."""

    def collect(self, limit=None):
        out: List = []
        sink = out.append
        order = self.tree.order
        root = self.tree.root
        n = self.tree.query.num_vertices
        mapping = [-1] * n
        used: set = set()
        single = len(order) == 1
        tracker = self._tracker
        if tracker is not None:
            tracker.start()
        for pivot in self.ceci.pivots:
            if not self.symmetry.admissible(root, pivot, mapping):
                continue
            if single:
                self.stats.recursive_calls += 1
                self.stats.embeddings_found += 1
                sink((pivot,))
            else:
                mapping[root] = pivot
                used.add(pivot)
                budget = None if limit is None else limit - len(out)
                self._collect(1, mapping, used, sink, budget)
                used.discard(pivot)
                mapping[root] = -1
            if limit is not None and len(out) >= limit:
                break
        return out[:limit] if limit is not None else out

    def _collect(self, depth, mapping, used, sink, budget):
        self.stats.recursive_calls += 1
        tracker = self._tracker
        if tracker is not None:
            tracker.charge_call()
        order = self.tree.order
        u = order[depth]
        symmetry = self.symmetry
        if depth + 1 == len(order):
            emitted = 0
            n = len(mapping)
            try:
                for v in self.matching_nodes(u, mapping):
                    if v in used:
                        continue
                    if not symmetry.admissible(u, v, mapping):
                        continue
                    self.stats.recursive_calls += 1
                    if tracker is not None:
                        tracker.charge_call()
                        tracker.charge_embedding(n)
                    mapping[u] = v
                    sink(tuple(mapping))
                    emitted += 1
                    if budget is not None and emitted >= budget:
                        break
            finally:
                mapping[u] = -1
                self.stats.embeddings_found += emitted
            return None if budget is None else budget - emitted
        for v in self.matching_nodes(u, mapping):
            if v in used:
                continue
            if not symmetry.admissible(u, v, mapping):
                continue
            mapping[u] = v
            used.add(v)
            budget = self._collect(depth + 1, mapping, used, sink, budget)
            used.discard(v)
            mapping[u] = -1
            if budget is not None and budget <= 0:
                return budget
        return budget


class _NullSink:
    """A write sink that discards everything (isolates event-formatting
    cost from disk)."""

    def write(self, text: str) -> None:
        return None

    def flush(self) -> None:
        return None


def _build_matcher():
    data = inject_labels(
        power_law(
            INSTANCE["vertices"], 5, seed=INSTANCE["seed"],
            min_edges_per_vertex=1,
        ),
        INSTANCE["labels"],
        seed=INSTANCE["seed"],
    )
    query = generate_query(data, INSTANCE["qsize"], seed=INSTANCE["seed"])
    matcher = CECIMatcher(query, data)
    matcher.build()
    return matcher


def _enumerator(matcher, cls, tracer=None):
    # The seed control replicates the *recursive* pre-observability
    # loop, so the instrumented side must run the same engine — `auto`
    # would pick the batch engine here and measure engines, not hooks.
    return cls(
        matcher.build(),
        symmetry=matcher.symmetry,
        stats=type(matcher.stats)(),
        kernel=matcher.kernel,
        tracer=tracer,
        engine="recursive",
    )


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def test_observability_micro(results_dir):
    matcher = _build_matcher()

    def run(cls, tracer=None):
        """Seconds for one full enumeration; the output dies in here so
        no run pays allocator pressure from a predecessor's result."""
        enumerator = _enumerator(matcher, cls, tracer=tracer)
        # A collection landing inside one timed run would skew a
        # single-digit-percent comparison; the host process (pytest)
        # carries a large heap, making that skew systematic.
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            out = enumerator.collect()
            seconds = time.perf_counter() - start
            return seconds, len(out)
        finally:
            gc.enable()

    # Correctness gate (outside the timed rounds): the seed control must
    # produce the instrumented enumerator's exact embedding set.
    seed_set = sorted(_enumerator(matcher, _SeedEnumerator).collect())
    inst_set = sorted(_enumerator(matcher, Enumerator).collect())
    assert seed_set == inst_set, (
        "seed control diverged from the instrumented enumerator"
    )
    count = len(inst_set)
    assert count > 0, "workload produced no embeddings"
    del seed_set, inst_set

    # Paired rounds: seed and instrumented run back to back, so bursty
    # machine noise (shared CI boxes) hits both sides of a ratio alike;
    # the median ratio across rounds is the overhead estimator.
    best: Dict[str, float] = {"seed": float("inf"), "disabled": float("inf"),
                              "enabled": float("inf")}
    ratios: Dict[str, List[float]] = {"disabled": [], "enabled": []}
    null_tracer_sink = _NullSink()
    run(_SeedEnumerator)  # warm-up: page in the index and the code paths
    run(Enumerator)
    for _ in range(ROUNDS):
        seed_seconds, _ = run(_SeedEnumerator)
        best["seed"] = min(best["seed"], seed_seconds)
        seconds, _ = run(Enumerator)
        best["disabled"] = min(best["disabled"], seconds)
        ratios["disabled"].append(seconds / seed_seconds)
        tracer = Tracer(null_tracer_sink)
        seconds, _ = run(Enumerator, tracer=tracer)
        tracer.close()
        best["enabled"] = min(best["enabled"], seconds)
        ratios["enabled"].append(seconds / seed_seconds)

    disabled_overhead = _median(ratios["disabled"]) - 1.0
    enabled_overhead = _median(ratios["enabled"]) - 1.0

    report = {
        "generated_by": "benchmarks/test_observability_micro.py",
        "instance": dict(INSTANCE),
        "embeddings": count,
        "rounds": ROUNDS,
        "seed_seconds": best["seed"],
        "disabled_seconds": best["disabled"],
        "enabled_null_sink_seconds": best["enabled"],
        "disabled_overhead": disabled_overhead,
        "enabled_overhead": enabled_overhead,
        "acceptance": {
            "max_disabled_overhead": MAX_DISABLED_OVERHEAD,
            "measured_disabled_overhead": disabled_overhead,
        },
    }
    path = os.path.join(results_dir, "BENCH_observability.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    assert disabled_overhead < MAX_DISABLED_OVERHEAD, (
        f"disabled-observability enumeration {disabled_overhead:.1%} "
        f"slower than the seed hot path "
        f"(bar: {MAX_DISABLED_OVERHEAD:.0%}); see {path}"
    )


# ---------------------------------------------------------------------------
# Service-path overhead (DESIGN.md §13)
# ---------------------------------------------------------------------------
#: Warm match() calls timed per round; the per-request telemetry cost is
#: a fixed few-microsecond term, so warm cache hits (no index build, a
#: tiny enumeration) are where it would show up.
SERVICE_REQUESTS_PER_ROUND = 40
SERVICE_ROUNDS = 25


def _seed_service_class():
    """A MatchService whose ``submit``/``_finalize`` are the pre-telemetry
    bodies — the per-request path exactly as it was before the flight
    recorder / history / slow-log / fold hooks landed.  The remaining
    telemetry touchpoints are attribute None-checks of the same class
    the enumeration bar already prices, so the submit/finalize pair is
    the measurable delta."""
    import time as _time

    from repro.service.request import MatchResponse, Status as _Status
    from repro.service.service import MatchService, PendingMatch, _Job

    class _SeedService(MatchService):
        def submit(self, request):
            pending = PendingMatch(request)
            now = _time.perf_counter()
            with self._state_lock:
                if self._closed:
                    raise RuntimeError("service is closed")
                if self._inflight >= self.max_pending:
                    self.metrics.inc(
                        "service_requests_total", label=_Status.REJECTED
                    )
                    pending._resolve(MatchResponse(
                        request_id=request.request_id,
                        status=_Status.REJECTED,
                        error=(
                            f"queue depth {self._inflight} at limit "
                            f"{self.max_pending}"
                        ),
                    ))
                    return pending
                self._inflight += 1
                if self._inflight > self._peak:
                    self._peak = self._inflight
                    self.metrics.set_gauge(
                        "service_queue_depth_peak", self._peak
                    )
                job = _Job(request, pending, now)
                deadline = request.deadline_seconds
                if deadline is None:
                    deadline = self.deadline_seconds
                if deadline is not None:
                    job.deadline_at = now + deadline
                pending._job = job
                self._jobs.add(job)
            with self._inbox_ready:
                self._inbox.append(job)
                self._inbox_ready.notify()
            return pending

        def _finalize(self, job, embeddings, status,
                      stop_reason=None, error=None):
            with job.lock:
                if job.done:
                    return
                job.done = True
            now = _time.perf_counter()
            latency = now - job.submitted_at
            service_seconds = now - job.prepared_at
            self.metrics.inc("service_requests_total", label=status)
            self.metrics.observe("service_request_seconds", latency)
            self.metrics.observe("service_time_seconds", service_seconds)
            job.pending._resolve(MatchResponse(
                request_id=job.request.request_id,
                status=status,
                embeddings=embeddings,
                truncated=status == _Status.TRUNCATED,
                stop_reason=stop_reason,
                cache=job.cache_tag,
                stats=job.stats,
                latency_seconds=latency,
                service_seconds=service_seconds,
                retries=job.retries,
                error=error,
            ))
            with self._idle:
                self._jobs.discard(job)
                self._inflight -= 1
                if self._inflight == 0:
                    self._idle.notify_all()

    return _SeedService


def test_service_telemetry_disabled_overhead(results_dir):
    """Default service config (every §13 surface off) vs the pre-PR
    per-request path, paired-ratio over warm requests."""
    from repro.graph import Graph
    from repro.service import MatchRequest, MatchService

    data = inject_labels(
        power_law(300, 4, seed=11, min_edges_per_vertex=1), 2, seed=11
    )
    query = generate_query(data, 4, seed=11)

    def request():
        return MatchRequest(query=query, limit=8)

    def timed_round(service):
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            for _ in range(SERVICE_REQUESTS_PER_ROUND):
                response = service.match(request())
                assert response.status == "ok"
            return time.perf_counter() - start
        finally:
            gc.enable()

    seed_cls = _seed_service_class()
    kwargs = dict(workers=2, max_pending=64)
    with seed_cls(data, **kwargs) as seed_service, \
            MatchService(data, **kwargs) as shipping:
        # Warm both index caches so every timed request is a pure hit.
        assert seed_service.match(request()).status == "ok"
        assert shipping.match(request()).status == "ok"
        timed_round(seed_service)
        timed_round(shipping)
        ratios: List[float] = []
        best = {"seed": float("inf"), "disabled": float("inf")}
        for _ in range(SERVICE_ROUNDS):
            seed_seconds = timed_round(seed_service)
            disabled_seconds = timed_round(shipping)
            best["seed"] = min(best["seed"], seed_seconds)
            best["disabled"] = min(best["disabled"], disabled_seconds)
            ratios.append(disabled_seconds / seed_seconds)

    overhead = _median(ratios) - 1.0
    requests = SERVICE_REQUESTS_PER_ROUND

    path = os.path.join(results_dir, "BENCH_observability.json")
    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, ValueError):
        report = {"generated_by": "benchmarks/test_observability_micro.py"}
    report["service"] = {
        "requests_per_round": requests,
        "rounds": SERVICE_ROUNDS,
        "seed_seconds_per_request": best["seed"] / requests,
        "disabled_seconds_per_request": best["disabled"] / requests,
        "disabled_overhead": overhead,
        "acceptance": {
            "max_disabled_overhead": MAX_DISABLED_OVERHEAD,
            "measured_disabled_overhead": overhead,
        },
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    assert overhead < MAX_DISABLED_OVERHEAD, (
        f"telemetry-disabled service path {overhead:.1%} slower than the "
        f"pre-telemetry submit/finalize path "
        f"(bar: {MAX_DISABLED_OVERHEAD:.0%}); see {path}"
    )
