"""Figure 20 — breakdown of distributed CECI construction cost into IO,
communication and computation on the FS analog, 1..16 machines.

Paper result: under shared (lustre) storage, on-demand adjacency loads
dominate construction (up to ~100x the in-memory construction cost);
communication stays negligible; per-machine compute shrinks with the
machine count.
"""

from conftest import run_once
from repro.bench import ResultTable, load_dataset, query_graph
from repro.distributed import DistributedCECI

MACHINES = [1, 4, 16]


def test_fig20_construction(benchmark, publish):
    def experiment():
        data = load_dataset("FS")
        query = query_graph("QG1")
        table = ResultTable(
            "Figure 20: CECI construction breakdown (QG1 on FS, shared storage)",
            ["machines", "io", "comm", "compute", "io share %"],
        )
        shares = {}
        compute = {}
        for machines in MACHINES:
            result = DistributedCECI(
                query, data, num_machines=machines, mode="shared"
            ).run()
            breakdown = result.construction_breakdown()
            total = sum(breakdown.values()) or 1.0
            shares[machines] = breakdown["io"] / total
            compute[machines] = breakdown["compute"]
            table.add(machines=machines, io=breakdown["io"],
                      comm=breakdown["comm"], compute=breakdown["compute"],
                      **{"io share %": 100 * breakdown["io"] / total})
        table.note("paper: IO dominates shared-storage construction; "
                   "communication is negligible")
        return table, shares, compute

    table, shares, compute = run_once(benchmark, experiment)
    publish("fig20_construction", table)
    # Shape: IO is a material share at every machine count, and the
    # per-machine compute shrinks as machines are added.
    assert all(share > 0.1 for share in shares.values())
    assert compute[16] < compute[1]
