"""Figure 12 — effect of beta on per-worker finishing times.

Paper result (QG3 on FS, their 1.8B-edge testbed): smaller beta raises
the fastest worker's finish time but flattens the tail skew
dramatically; the scheduling overhead grows as beta shrinks (14.76 /
16.53 / 23.96 seconds for beta = 1 / 0.2 / 0.1).

At analog scale the FS/QG3 instance has thousands of fine-grained
clusters per worker, which hides the coarse-granularity skew the figure
is about; the skew regime appears on the QG5-on-YT analog (few big
clusters relative to 16 workers), so that instance is measured instead
— the same phenomenon at the scale where it is visible.
"""

from conftest import run_once
from repro import CECIMatcher
from repro.bench import ResultTable, load_dataset, query_graph
from repro.parallel import simulate_policy

WORKERS = 16
BETAS = [1.0, 0.2, 0.1]


def test_fig12_beta(benchmark, publish):
    def experiment():
        data = load_dataset("YT")
        matcher = CECIMatcher(query_graph("QG5"), data)
        table = ResultTable(
            f"Figure 12: per-worker finish times, QG5 on YT, {WORKERS} workers",
            ["beta", "units", "min finish", "max finish", "skew",
             "sched overhead"],
        )
        skews = {}
        overheads = {}
        for beta in BETAS:
            result = simulate_policy(matcher, WORKERS, "FGD", beta=beta)
            finishes = result.worker_finish_times
            busy = [f for f in finishes if f > 0] or [0.0]
            skew = result.assignment.skew
            skews[beta] = skew
            overheads[beta] = result.setup_cost
            table.add(beta=beta, units=len(result.assignment.worker_units[0])
                      and sum(len(u) for u in result.assignment.worker_units),
                      **{"min finish": min(busy), "max finish": max(busy),
                         "skew": skew, "sched overhead": result.setup_cost})
        table.note("smaller beta flattens the finish-time skew at the cost "
                   "of scheduling overhead (paper: 14.76 / 16.53 / 23.96 s)")
        return table, skews, overheads

    table, skews, overheads = run_once(benchmark, experiment)
    publish("fig12_beta", table)
    # Shape: finer decomposition -> flatter makespans, higher overhead.
    assert skews[0.1] < skews[1.0]
    assert overheads[0.1] > overheads[1.0]
