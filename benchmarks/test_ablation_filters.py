"""Ablation — what each filtering stage buys (DESIGN.md ablation index).

Toggles LF-only / +DF / +NLCF / +refinement on a labeled workload and
reports candidate-set inflation and enumeration cost.  The paper's
claims being checked: every stage keeps completeness (Section 3.5)
while monotonically shrinking the index and the search.
"""

from conftest import run_once
from repro import CECIMatcher
from repro.bench import ResultTable, load_dataset
from repro.graph import generate_query_set, inject_labels

CONFIGS = [
    ("LF only", dict(use_degree_filter=False, use_nlc_filter=False,
                     use_cascade=False, use_refinement=False)),
    ("LF+DF", dict(use_nlc_filter=False, use_cascade=False,
                   use_refinement=False)),
    ("LF+DF+NLCF", dict(use_cascade=False, use_refinement=False)),
    ("+cascade", dict(use_refinement=False)),
    ("+refinement (full)", dict()),
]


def test_ablation_filters(benchmark, publish):
    def experiment():
        from repro.bench.datasets import warm

        data = warm(inject_labels(load_dataset("LJ"), 4, seed=3))
        queries = generate_query_set(data, 6, 5, seed=21)
        table = ResultTable(
            "Ablation: filtering stages (labeled LJ, 6-vertex queries)",
            ["configuration", "index edges", "refinement removals",
             "recursive calls"],
        )
        index_sizes = {}
        call_counts = {}
        reference = None
        for label, options in CONFIGS:
            total_edges = total_calls = total_removed = 0
            results = []
            for query in queries:
                matcher = CECIMatcher(query, data, **options)
                results.append(sorted(matcher.match()))
                stats = matcher.stats
                total_edges += (
                    stats.te_candidate_edges + stats.nte_candidate_edges
                )
                total_calls += stats.recursive_calls
                total_removed += stats.removed_by_refinement
            if reference is None:
                reference = results
            assert results == reference, f"{label} changed the output"
            index_sizes[label] = total_edges
            call_counts[label] = total_calls
            table.add(configuration=label,
                      **{"index edges": total_edges,
                         "refinement removals": total_removed,
                         "recursive calls": total_calls})
        table.note("every stage preserves the embedding set (completeness) "
                   "while shrinking index and search")
        return table, index_sizes, call_counts

    table, index_sizes, call_counts = run_once(benchmark, experiment)
    publish("ablation_filters", table)
    labels = [label for label, _ in CONFIGS]
    for weaker, stronger in zip(labels, labels[1:]):
        assert index_sizes[stronger] <= index_sizes[weaker]
        assert call_counts[stronger] <= call_counts[weaker]
