"""Figure 9 — CECI vs CFLMatch, first 1,024 embeddings of DFS-generated
labeled queries of growing size, on the RD and HU analogs.

Paper protocol (Section 6.2): RD gets random labels injected (100 on
their 0.5M-vertex graph; scaled here to 8 so candidates-per-label stays
in the paper's regime); HU is natively multi-labeled (CECI uses all
labels, CFLMatch only the first); queries of growing size are
DFS-extracted so each has at least one embedding; both systems run
single-threaded and stop at 1,024 embeddings.

Paper result: CECI wins by ~3.5x on RD and ~1.9x on HU.  NOTE: this
reimplementation of CFLMatch deliberately shares CECI's optimized
filtering and enumeration substrate (differing only in its TE-only CPI,
edge verification, and core-forest-leaf order), which makes it a far
stronger baseline than the original C++ binary.  On small queries the
two run at parity; on the largest low-selectivity queries CFLMatch's
missing NTE refinement explodes — at size 24 on RD we measured ~30x
(and at 8 labels, ~2500x — capped out of the default run for time),
which is the very effect the paper credits CECI's NTE candidates for.
The mechanism is additionally isolated by
``test_ablation_intersection.py``.
"""

import time

from conftest import run_once
from repro import CECIMatcher
from repro.baselines import CFLMatcher
from repro.bench import ResultTable, geometric_mean, load_dataset
from repro.bench.datasets import warm
from repro.graph import generate_query_set, inject_labels, relabel_with

QUERY_SIZES = [4, 8, 12, 16, 24]
QUERIES_PER_SIZE = 5
LIMIT = 1024
RD_LABELS = 16  # paper's 100 labels on 0.5M vertices, selectivity-scaled


def test_fig09_cflmatch(benchmark, publish):
    def experiment():
        table = ResultTable(
            "Figure 9: avg runtime (ms) for first 1,024 embeddings",
            ["Dataset", "|Vq|", "CECI(ms)", "CFLMatch(ms)", "speedup"],
        )
        ratios = []
        for abbr in ("RD", "HU"):
            data = load_dataset(abbr)
            keep_all = abbr == "HU"  # CECI exploits HU's multi-labels
            if abbr == "RD":
                data = warm(inject_labels(data, RD_LABELS, seed=9))
            for size in QUERY_SIZES:
                queries = generate_query_set(
                    data, size, QUERIES_PER_SIZE, seed=size * 11,
                    keep_all_labels=keep_all,
                )
                ceci_total = cfl_total = 0.0
                for query in queries:
                    started = time.perf_counter()
                    found = CECIMatcher(
                        query, data, order_strategy="edge_ranked"
                    ).match(limit=LIMIT)
                    ceci_total += time.perf_counter() - started
                    assert found, "DFS queries must embed at least once"

                    # CFLMatch only sees the primary label per vertex.
                    cfl_query = query if not keep_all else relabel_with(
                        query, [query.label_of(u) for u in query.vertices()]
                    )
                    started = time.perf_counter()
                    CFLMatcher(cfl_query, data).match(limit=LIMIT)
                    cfl_total += time.perf_counter() - started
                ratio = cfl_total / ceci_total if ceci_total > 0 else 1.0
                ratios.append(ratio)
                table.add(Dataset=abbr, **{
                    "|Vq|": size,
                    "CECI(ms)": 1000 * ceci_total / QUERIES_PER_SIZE,
                    "CFLMatch(ms)": 1000 * cfl_total / QUERIES_PER_SIZE,
                    "speedup": ratio,
                })
        table.note(
            f"geomean speedup {geometric_mean(ratios):.2f}x "
            "(paper: 3.5x on RD, 1.9x on HU vs the original C++ CFLMatch; "
            "this CFLMatch shares CECI's substrate — see module docstring)"
        )
        return table, ratios

    table, ratios = run_once(benchmark, experiment)
    publish("fig09_cflmatch", table)
    # Shape: CECI stays at or above parity overall with a CFLMatch that
    # borrows its whole substrate, and wins clearly on the largest
    # low-selectivity queries (where NTE refinement pays off).
    assert geometric_mean(ratios) > 0.8
    assert max(ratios) > 2.0
