"""Ablation — intersection-based enumeration vs per-edge verification
(Section 4.1: "average improvement of 13% to 170% on run-time ...
higher for query graphs with larger number of non-tree edges").
"""

import time

from conftest import run_once
from repro import CECIMatcher
from repro.bench import ResultTable, load_dataset, query_graph

#: QG5 is omitted from the default run: its verification-mode runtime
#: on the analogs exceeds ten minutes (the gap the paper's Lemma 2 is
#: about, taken to the extreme); QG4 already exercises three NTEs.
QUERIES = ["QG1", "QG3", "QG4"]


def test_ablation_intersection(benchmark, publish):
    def experiment():
        data = load_dataset("LJ")
        table = ResultTable(
            "Ablation: intersection vs edge verification (LJ)",
            ["Query", "NTEs", "intersect s", "verify s", "gain %",
             "edge checks avoided"],
        )
        gains = {}
        for qname in QUERIES:
            query = query_graph(qname)
            started = time.perf_counter()
            fast = CECIMatcher(query, data)
            fast_count = len(fast.match())
            fast_time = time.perf_counter() - started

            started = time.perf_counter()
            slow = CECIMatcher(query, data, use_intersection=False)
            slow_count = len(slow.match())
            slow_time = time.perf_counter() - started

            assert fast_count == slow_count
            ntes = len(fast.tree.non_tree_edges)
            gain = 100.0 * (slow_time - fast_time) / fast_time
            gains[qname] = (ntes, gain)
            table.add(Query=qname, NTEs=ntes,
                      **{"intersect s": fast_time, "verify s": slow_time,
                         "gain %": gain,
                         "edge checks avoided": slow.stats.edge_verifications})
        table.note("paper: 13%-170% improvement, growing with NTE count")
        return table, gains

    table, gains = run_once(benchmark, experiment)
    publish("ablation_intersection", table)
    # Shape: intersection wins materially on every query with non-tree
    # edges (the paper's 13%-170% band; per-instance ordering by NTE
    # count is workload-dependent at analog scale).
    assert all(gain > 10.0 for _, gain in gains.values())
