"""Figure 15 — CPU utilization over the program lifetime.

The paper samples per-core usage while running on 32 OpenMP threads:
low during (serialized) loading, slightly higher during CECI creation,
then ~100% on all cores during enumeration, which is >95% of the
runtime.  Here the utilization timeline is reconstructed from the
measured phase durations plus each phase's parallelizable fraction —
loading and CECI creation are mostly serial in the paper's profile,
enumeration is embarrassingly parallel across work units.
"""

from conftest import run_once
from repro import CECIMatcher
from repro.bench import ResultTable, load_dataset, query_graph

WORKERS = 32

#: Parallel fraction per phase (the paper's qualitative profile: IO and
#: index construction serialized, enumeration saturating every core).
PARALLEL_FRACTION = {
    "load": 0.05,
    "preprocess": 0.10,
    "filter": 0.50,
    "refine": 0.50,
    "enumerate": 0.98,
}


def utilization(phase: str) -> float:
    """Average per-core utilization under Amdahl's profile."""
    fraction = PARALLEL_FRACTION[phase]
    return 100.0 * (fraction + (1.0 - fraction) / WORKERS)


def test_fig15_cpu_usage(benchmark, publish):
    def experiment():
        data = load_dataset("OK")
        table = ResultTable(
            f"Figure 15: phase timeline and modeled CPU usage ({WORKERS} threads, OK)",
            ["Query", "phase", "seconds", "share %", "cpu %"],
        )
        shares = {}
        for qname in ("QG1", "QG4"):
            matcher = CECIMatcher(query_graph(qname), data)
            matcher.match()
            phases = dict(matcher.stats.phase_seconds)
            total = sum(phases.values()) or 1.0
            for phase in ("preprocess", "filter", "refine", "enumerate"):
                seconds = phases.get(phase, 0.0)
                table.add(Query=qname, phase=phase, seconds=seconds,
                          **{"share %": 100 * seconds / total,
                             "cpu %": utilization(phase)})
            shares[qname] = phases.get("enumerate", 0.0) / total
        table.note("paper: enumeration is >95% of runtime at ~100% core "
                   "usage; construction phases run largely serialized")
        return table, shares

    table, shares = run_once(benchmark, experiment)
    publish("fig15_cpu_usage", table)
    # Shape: enumeration dominates the timeline on the heavier query and
    # is the only phase with near-full utilization.
    assert shares["QG4"] > 0.4
    assert utilization("enumerate") > 95.0
    assert utilization("preprocess") < 20.0
