"""Ablation — matching-order strategies (Section 2.2: "adopting
edge-ranked visit order or path-ranked order provided up to 34.5%
speedup over using naive BFS matching order.  The improvement is more
significant on larger query graphs").
"""

import time

from conftest import run_once
from repro import CECIMatcher
from repro.bench import ResultTable, load_dataset
from repro.graph import generate_query_set

STRATEGIES = ["bfs", "edge_ranked", "path_ranked"]
SIZES = [6, 10, 16]


def test_ablation_matching_order(benchmark, publish):
    def experiment():
        data = load_dataset("HU")
        table = ResultTable(
            "Ablation: matching orders, first 1,024 embeddings (HU)",
            ["|Vq|"] + [f"{s} (s)" for s in STRATEGIES]
            + ["best gain % over bfs"],
        )
        best_gains = {}
        for size in SIZES:
            queries = generate_query_set(data, size, 6, seed=size * 17)
            totals = {s: 0.0 for s in STRATEGIES}
            counts = {}
            for query in queries:
                for strategy in STRATEGIES:
                    started = time.perf_counter()
                    found = CECIMatcher(
                        query, data, order_strategy=strategy
                    ).match(limit=1024)
                    totals[strategy] += time.perf_counter() - started
                    counts.setdefault(id(query), set()).add(len(found))
            # all orders agree on the result size for every query
            assert all(len(sizes) == 1 for sizes in counts.values())
            best = min(totals["edge_ranked"], totals["path_ranked"])
            gain = 100.0 * (totals["bfs"] - best) / totals["bfs"]
            best_gains[size] = gain
            table.add(**{"|Vq|": size},
                      **{f"{s} (s)": totals[s] for s in STRATEGIES},
                      **{"best gain % over bfs": gain})
        table.note("paper: ranked orders give up to 34.5% over naive BFS, "
                   "more on larger queries")
        return table, best_gains

    table, best_gains = run_once(benchmark, experiment)
    publish("ablation_matching_order", table)
    # Shape: a ranked order helps on the largest query size.
    assert best_gains[max(SIZES)] > 0.0
