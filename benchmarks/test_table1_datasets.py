"""Table 1 — the dataset inventory and its scaled analogs."""

from conftest import run_once
from repro.bench import ResultTable, table1_rows


def test_table1_datasets(benchmark, publish):
    def experiment():
        table = ResultTable(
            "Table 1: datasets (paper size -> analog size)",
            ["Abbr", "Dataset", "paper |V|", "paper |E|", "Directed",
             "analog |V|", "analog |E|"],
        )
        for abbr, full, pv, pe, directed, av, ae in table1_rows():
            table.add(**{
                "Abbr": abbr, "Dataset": full, "paper |V|": pv,
                "paper |E|": pe, "Directed": directed,
                "analog |V|": av, "analog |E|": ae,
            })
        table.note("analogs keep generator family, density class, "
                   "directedness and label regime at ~1/1000 scale")
        return table

    table = run_once(benchmark, experiment)
    publish("table1_datasets", table)
    assert len(table.rows) == 10
