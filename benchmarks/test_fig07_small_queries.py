"""Figure 7 — CECI vs DualSim vs PsgL, all embeddings of QG1 and QG4
on the eight real-graph analogs.

Paper result: CECI outperforms DualSim and PsgL on average by 1.86x /
4.08x (QG1) and 4.54x / 14.31x (QG4) — the gap widens on the denser
query.  The shape check below asserts CECI wins on (geometric) average
and that QG4's margin over PsgL exceeds QG1's.
"""

import time

from conftest import run_once
from repro import CECIMatcher
from repro.baselines import DualSimMatcher, PsgLMatcher
from repro.bench import ResultTable, geometric_mean, load_dataset, query_graph

DATASETS = ["CP", "FS", "LJ", "OK", "WG", "WT", "YH", "YT"]


def _run(query, data):
    started = time.perf_counter()
    ceci = CECIMatcher(query, data)
    ceci_count = ceci.count()
    ceci_time = time.perf_counter() - started
    phases = ceci.stats.phase_seconds
    enum_share = phases.get("enumerate", 0.0) / (sum(phases.values()) or 1.0)

    started = time.perf_counter()
    dualsim = DualSimMatcher(query, data)
    dual_count = len(dualsim.match())
    # Measured wall clock: the page store's buffer management is part of
    # DualSim's design, so its bookkeeping rightfully counts.  A real
    # disk would additionally stall each of the page loads (reported by
    # dualsim.modeled_runtime); see DESIGN.md substitutions.
    dual_time = time.perf_counter() - started

    started = time.perf_counter()
    psgl_count = len(PsgLMatcher(query, data).match())
    psgl_time = time.perf_counter() - started

    assert ceci_count == dual_count == psgl_count
    return ceci_count, ceci_time, dual_time, psgl_time, enum_share


#: An instance is "at the paper's scale" when enumeration dominates the
#: runtime — the paper reports enumeration at >95% of CECI's total
#: (Section 6.1).  At 1/1000 analog scale some instances finish in tens
#: of milliseconds where Python's per-edge index-construction constants
#: dominate any algorithm; rows below this enumeration share are
#: reported but excluded from the headline geomean.
AT_SCALE_ENUM_SHARE = 0.5


def test_fig07_small_queries(benchmark, publish):
    def experiment():
        tables = []
        speedups = {}
        for qname in ("QG1", "QG4"):
            query = query_graph(qname)
            table = ResultTable(
                f"Figure 7 ({qname}): runtime in seconds, all embeddings",
                ["Dataset", "embeddings", "CECI", "DualSim", "PsgL",
                 "vs DualSim", "vs PsgL", "at scale"],
            )
            dual_ratios, psgl_ratios = [], []
            for abbr in DATASETS:
                data = load_dataset(abbr)
                count, ceci_t, dual_t, psgl_t, share = _run(query, data)
                dual_ratio = dual_t / ceci_t if ceci_t > 0 else 1.0
                psgl_ratio = psgl_t / ceci_t if ceci_t > 0 else 1.0
                at_scale = share >= AT_SCALE_ENUM_SHARE
                if at_scale:
                    dual_ratios.append(dual_ratio)
                    psgl_ratios.append(psgl_ratio)
                table.add(Dataset=abbr, embeddings=count, CECI=ceci_t,
                          DualSim=dual_t, PsgL=psgl_t,
                          **{"vs DualSim": dual_ratio, "vs PsgL": psgl_ratio,
                             "at scale": "Y" if at_scale else "-"})
            table.note(
                f"at-scale geomean speedup vs DualSim "
                f"{geometric_mean(dual_ratios):.2f}x, vs PsgL "
                f"{geometric_mean(psgl_ratios):.2f}x "
                f"(paper: {'1.86x / 4.08x' if qname == 'QG1' else '4.54x / 14.31x'})"
            )
            table.note(
                "rows where enumeration is under half the runtime (the "
                "paper's regime is >95%) are excluded from the geomean "
                "(see EXPERIMENTS.md)"
            )
            speedups[qname] = (
                geometric_mean(dual_ratios), geometric_mean(psgl_ratios)
            )
            tables.append(table)
        return tables, speedups

    (tables, speedups) = run_once(benchmark, experiment)
    publish("fig07_small_queries", *tables)
    # Shape: CECI wins on (geometric) average against both systems on
    # both queries at scale.  (The paper's *extra* widening on QG4 comes
    # from PsgL's cross-machine communication blowup, which the shared-
    # memory substrate here deliberately minimizes — see EXPERIMENTS.md.)
    for qname in ("QG1", "QG4"):
        dual, psgl = speedups[qname]
        assert dual > 1.0, f"DualSim should lose on {qname}"
        assert psgl > 1.0, f"PsgL should lose on {qname}"
