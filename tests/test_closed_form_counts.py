"""Closed-form validation: on structured graphs the embedding counts
have exact combinatorial formulas, giving an oracle independent of any
matcher implementation.

With automorphism breaking ON, the count equals the number of *distinct
image subgraphs*; with it OFF, that times |Aut(query)|.
"""

from math import comb, factorial

import pytest

from repro import Graph, count_embeddings
from repro.bench import QG1, QG2, QG3, QG4, QG5


def clique(n: int) -> Graph:
    return Graph(n, [(i, j) for i in range(n) for j in range(i + 1, n)])


def cycle(n: int) -> Graph:
    return Graph(n, [(i, (i + 1) % n) for i in range(n)])


def star(tips: int) -> Graph:
    return Graph(tips + 1, [(0, i) for i in range(1, tips + 1)])


def path(n: int) -> Graph:
    return Graph(n, [(i, i + 1) for i in range(n - 1)])


def bipartite(a: int, b: int) -> Graph:
    return Graph(a + b, [(i, a + j) for i in range(a) for j in range(b)])


class TestTrianglesQG1:
    @pytest.mark.parametrize("n", [3, 4, 5, 6, 7])
    def test_triangles_in_clique(self, n):
        # K_n contains C(n,3) triangles
        assert count_embeddings(QG1, clique(n)) == comb(n, 3)

    def test_triangles_in_cycle(self):
        assert count_embeddings(QG1, cycle(6)) == 0

    def test_all_automorphisms_factor(self):
        n = 6
        broken = count_embeddings(QG1, clique(n))
        unbroken = count_embeddings(QG1, clique(n), break_automorphisms=False)
        assert unbroken == broken * 6


class TestSquaresQG2:
    @pytest.mark.parametrize("n", [4, 5, 6])
    def test_squares_in_clique(self, n):
        # choose 4 vertices, 3 distinct 4-cycles on each set
        assert count_embeddings(QG2, clique(n)) == 3 * comb(n, 4)

    def test_squares_in_bipartite(self):
        # K_{a,b}: C(a,2)*C(b,2) squares
        a, b = 3, 4
        assert count_embeddings(QG2, bipartite(a, b)) == comb(a, 2) * comb(b, 2)

    def test_square_in_cycle(self):
        assert count_embeddings(QG2, cycle(4)) == 1
        assert count_embeddings(QG2, cycle(5)) == 0


class TestDiamondsQG3:
    @pytest.mark.parametrize("n", [4, 5, 6])
    def test_diamonds_in_clique(self, n):
        # choose 4 vertices; the diamond's image is K4 minus one edge:
        # 6 ways to pick the missing edge
        assert count_embeddings(QG3, clique(n)) == 6 * comb(n, 4)

    def test_no_diamond_in_bipartite(self):
        # diamonds contain triangles; bipartite graphs have none
        assert count_embeddings(QG3, bipartite(3, 3)) == 0


class TestCliquesQG4:
    @pytest.mark.parametrize("n", [4, 5, 6, 7])
    def test_k4_in_clique(self, n):
        assert count_embeddings(QG4, clique(n)) == comb(n, 4)

    def test_unbroken_factor_24(self):
        n = 5
        assert count_embeddings(
            QG4, clique(n), break_automorphisms=False
        ) == comb(n, 4) * 24


class TestHousesQG5:
    @pytest.mark.parametrize("n", [5, 6])
    def test_houses_in_clique(self, n):
        # ordered embeddings: n!/(n-5)! choices; |Aut(house)| = 2
        ordered = factorial(n) // factorial(n - 5)
        assert count_embeddings(QG5, clique(n)) == ordered // 2

    def test_house_in_its_own_shape(self):
        house = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (1, 4)])
        assert count_embeddings(QG5, house) == 1


class TestPathsAndStars:
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_star_in_star(self, k):
        # S_k in S_m: center->center, tips are m-choose-k ordered /
        # broken by symmetry -> C(m,k)
        m = 6
        assert count_embeddings(star(k), star(m)) == comb(m, k)

    def test_path3_in_clique(self):
        # P3 images in K_n: C(n,3) vertex sets x 3 middle choices
        n = 5
        assert count_embeddings(path(3), clique(n)) == 3 * comb(n, 3)

    def test_path_in_cycle(self):
        # P_k wraps around C_n in n positions (per direction; breaking
        # the end-swap symmetry keeps one direction)
        assert count_embeddings(path(4), cycle(7)) == 7

    def test_edge_in_clique(self):
        n = 6
        assert count_embeddings(path(2), clique(n)) == comb(n, 2)

    def test_single_vertex(self):
        assert count_embeddings(Graph(1, []), clique(5)) == 5


class TestLabeledClosedForms:
    def test_labeled_star_counts(self):
        # center A with 3 B tips and 2 C tips; query: A with 2 B tips
        labels = ["A"] + ["B"] * 3 + ["C"] * 2
        data = Graph(6, [(0, i) for i in range(1, 6)], labels=labels)
        query = Graph(3, [(0, 1), (0, 2)], labels=["A", "B", "B"])
        assert count_embeddings(query, data) == comb(3, 2)

    def test_labeled_triangle_direction(self):
        # A-B-C triangle in K3 labeled A,B,C: exactly one embedding
        data = Graph(3, [(0, 1), (1, 2), (0, 2)], labels=["A", "B", "C"])
        query = Graph(3, [(0, 1), (1, 2), (0, 2)], labels=["A", "B", "C"])
        assert count_embeddings(query, data) == 1

    def test_bipartite_labeled(self):
        # K_{2,3} with sides labeled L/R; one L-R edge query
        data = bipartite(2, 3)
        data = Graph(5, data.edges, labels=["L", "L", "R", "R", "R"])
        query = Graph(2, [(0, 1)], labels=["L", "R"])
        assert count_embeddings(query, data) == 6
