"""Tests for GraphBuilder, the IO formats, and the CSR view."""

import numpy as np
import pytest

from repro.graph import (
    CSRGraph,
    Graph,
    GraphBuilder,
    from_csr,
    load_csr_binary,
    load_edge_list,
    load_graph_format,
    save_csr_binary,
    save_edge_list,
    save_graph_format,
    to_csr,
)


class TestGraphBuilder:
    def test_implicit_vertices(self):
        b = GraphBuilder()
        b.add_edge("x", "y")
        g = b.build()
        assert g.num_vertices == 2
        assert g.num_edges == 1

    def test_labels_via_add_vertex(self):
        b = GraphBuilder()
        b.add_vertex("a", labels=["L1"])
        b.add_vertex("b")
        b.add_edge("a", "b")
        g = b.build()
        assert g.label_of(0) == "L1"
        assert g.label_of(1) == 0

    def test_add_label_accumulates(self):
        b = GraphBuilder()
        b.add_vertex("a", labels=["L1"])
        b.add_label("a", "L2")
        g = b.build()
        assert g.labels_of(0) == frozenset({"L1", "L2"})

    def test_string_label_not_split(self):
        b = GraphBuilder()
        b.add_vertex("a", labels="protein")
        assert b.build().labels_of(0) == frozenset({"protein"})

    def test_empty_labels_rejected(self):
        b = GraphBuilder()
        with pytest.raises(ValueError):
            b.add_vertex("a", labels=[])

    def test_id_map_and_counts(self):
        b = GraphBuilder(directed=True, name="d")
        b.add_edges([("p", "q"), ("q", "r")])
        assert b.num_vertices == 3
        assert b.num_edges == 2
        assert b.id_map() == {"p": 0, "q": 1, "r": 2}
        g = b.build()
        assert g.directed
        assert g.name == "d"


class TestEdgeListIO:
    def test_round_trip(self, tmp_path):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)], name="rt")
        path = str(tmp_path / "g.txt")
        save_edge_list(g, path)
        loaded = load_edge_list(path)
        assert loaded.num_vertices == 4
        assert loaded.num_edges == 3

    def test_comments_and_sparse_ids(self, tmp_path):
        path = tmp_path / "snap.txt"
        path.write_text("# SNAP header\n10 20\n20 30\n% percent comment\n30 10\n")
        g = load_edge_list(str(path))
        assert g.num_vertices == 3
        assert g.num_edges == 3

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("42\n")
        with pytest.raises(ValueError):
            load_edge_list(str(path))


class TestGraphFormatIO:
    def test_round_trip_with_labels(self, tmp_path):
        g = Graph(3, [(0, 1), (1, 2)], labels=[7, 8, 7])
        path = str(tmp_path / "g.graph")
        save_graph_format(g, path)
        loaded = load_graph_format(path)
        assert loaded == g

    def test_unknown_tag_rejected(self, tmp_path):
        path = tmp_path / "bad.graph"
        path.write_text("t 1 0\nz nonsense\n")
        with pytest.raises(ValueError):
            load_graph_format(str(path))


class TestCSR:
    def test_structure(self):
        g = Graph(3, [(0, 1), (0, 2)])
        csr = to_csr(g)
        assert csr.num_vertices == 3
        assert csr.num_directed_edges == 4
        assert list(csr.neighbors(0)) == [1, 2]
        assert csr.degree(0) == 2
        assert csr.degree(1) == 1

    def test_adjacency_bytes(self):
        g = Graph(3, [(0, 1), (0, 2)])
        csr = to_csr(g)
        assert csr.adjacency_bytes(0) == 2 * csr.adjacency.itemsize

    def test_round_trip_through_graph(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3), (0, 3)], labels=["A", "B", "A", "B"])
        back = from_csr(to_csr(g))
        assert back == g

    def test_binary_round_trip(self, tmp_path):
        g = Graph(4, [(0, 1), (1, 3)], labels=[1, 2, 3, 4])
        path = str(tmp_path / "g.csr")
        save_csr_binary(g, path)
        loaded = load_csr_binary(path)
        assert loaded == g

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph.from_bytes(b"NOTACSR0" + b"\x00" * 32)

    def test_inconsistent_frame_rejected(self):
        bp = np.array([0, 1], dtype=np.int64)
        adj = np.array([0, 0], dtype=np.int64)  # length 2, bp[-1] == 1
        with pytest.raises(ValueError):
            CSRGraph(bp, adj, (frozenset((0,)),))
