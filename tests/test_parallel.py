"""Tests for scheduling policies, the thread executor and the
simulated-time executor."""

import pytest

from repro import CECIMatcher, Graph
from repro.graph import power_law
from repro.parallel import (
    dynamic_schedule,
    measure_unit_costs,
    parallel_match,
    simulate_policy,
    speedup_curve,
    static_schedule,
)


@pytest.fixture
def matcher(triangle):
    return CECIMatcher(triangle, power_law(300, 4, seed=67))


class TestStaticSchedule:
    def test_all_units_assigned_once(self):
        assignment = static_schedule([1.0] * 10, 3)
        seen = [i for units in assignment.worker_units for i in units]
        assert sorted(seen) == list(range(10))

    def test_equal_count_blocks(self):
        assignment = static_schedule([1.0] * 9, 3)
        assert [len(u) for u in assignment.worker_units] == [3, 3, 3]

    def test_makespan_is_max_block_sum(self):
        assignment = static_schedule([5.0, 1.0, 1.0, 1.0], 2)
        assert assignment.makespan == 6.0  # first block gets 5+1

    def test_empty_units(self):
        assignment = static_schedule([], 4)
        assert assignment.makespan == 0.0

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            static_schedule([1.0], 0)


class TestDynamicSchedule:
    def test_all_units_assigned_once(self):
        assignment = dynamic_schedule([1.0, 2.0, 3.0, 4.0], 2)
        seen = [i for units in assignment.worker_units for i in units]
        assert sorted(seen) == [0, 1, 2, 3]

    def test_balances_skew_better_than_static(self):
        costs = [100.0] + [1.0] * 99
        static = static_schedule(costs, 4)
        dynamic = dynamic_schedule(costs, 4)
        assert dynamic.makespan <= static.makespan

    def test_pull_overhead_charged(self):
        cheap = dynamic_schedule([1.0] * 8, 2, pull_overhead=0.0)
        pricey = dynamic_schedule([1.0] * 8, 2, pull_overhead=1.0)
        assert pricey.makespan > cheap.makespan

    def test_skew_metric(self):
        balanced = dynamic_schedule([1.0] * 8, 2)
        assert balanced.skew == pytest.approx(1.0)


class TestThreadExecutor:
    def test_matches_sequential_for_all_policies(self, matcher, triangle):
        data = matcher.data
        sequential = set(CECIMatcher(triangle, data).match())
        for policy in ("ST", "CGD", "FGD"):
            fresh = CECIMatcher(triangle, data)
            found, reports = parallel_match(fresh, workers=4, policy=policy)
            assert set(found) == sequential
            assert len(found) == len(sequential)  # no duplicates either
            assert len(reports) == 4

    def test_limit_respected(self, matcher):
        found, _ = parallel_match(matcher, workers=4, policy="CGD", limit=7)
        assert len(found) == 7

    def test_single_worker(self, triangle):
        data = power_law(100, 3, seed=71)
        sequential = set(CECIMatcher(triangle, data).match())
        fresh = CECIMatcher(triangle, data)
        found, _ = parallel_match(fresh, workers=1, policy="FGD")
        assert set(found) == sequential

    def test_unknown_policy_rejected(self, matcher):
        with pytest.raises(ValueError):
            parallel_match(matcher, workers=2, policy="MAGIC")

    def test_invalid_worker_count_rejected(self, matcher):
        with pytest.raises(ValueError):
            parallel_match(matcher, workers=0)


class TestSimulator:
    def test_unit_costs_sum_close_to_sequential(self, matcher, triangle):
        units = matcher.work_units(beta=None)
        costs = measure_unit_costs(matcher, units)
        fresh = CECIMatcher(triangle, matcher.data)
        fresh.match()
        # per-unit re-enumeration counts the same recursive calls
        assert sum(costs) == pytest.approx(fresh.stats.recursive_calls, rel=0.05)

    def test_policy_ordering_on_skewed_workload(self, matcher):
        st = simulate_policy(matcher, workers=8, policy="ST")
        cgd = simulate_policy(matcher, workers=8, policy="CGD")
        assert cgd.makespan <= st.makespan

    def test_fgd_bounds_largest_unit(self, matcher):
        fgd = simulate_policy(matcher, workers=8, policy="FGD", beta=0.5)
        total = fgd.sequential_cost
        # no worker is stuck with a monolithic extreme cluster
        assert fgd.makespan <= total  # sanity
        assert max(fgd.assignment.finish_times) > 0

    def test_speedup_curve_monotone_early(self, matcher):
        curve = speedup_curve(matcher, [1, 2, 4], policy="CGD")
        assert curve[2] > curve[1] * 1.2
        assert curve[4] > curve[2] * 1.2

    def test_unknown_policy_rejected(self, matcher):
        with pytest.raises(ValueError):
            simulate_policy(matcher, workers=2, policy="XYZ")

    def test_worker_finish_times_exposed(self, matcher):
        result = simulate_policy(matcher, workers=4, policy="CGD")
        assert len(result.worker_finish_times) == 4
