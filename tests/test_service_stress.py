"""Concurrency stress for the resident match service.

N client threads hammer one service with a mixed seeded workload and
every response is checked against precomputed sequential counts.  What
must hold under contention:

* **no cross-request bleed** — each response's ``stats`` describe that
  request alone (``embeddings_found == count``), even though all
  requests share one intersection pool and one metrics registry;
* **no torn index reuse** — every repeat of a query, from any thread
  and any cache tier, reports the same embedding count;
* **rejected requests touch nothing** — a request shed at admission
  resolves immediately and leaves every shared counter and cache slot
  exactly as it found them.

The module-level tests are the fast tier-1 subset; the
``@pytest.mark.slow`` test scales the same invariants up (more
threads, more queries, budgets and limits mixed in, admission shedding
allowed) and is excluded from the CI tier-1 job via ``-m "not slow"``
but run by the dedicated service job under a hard timeout.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Dict, List, Optional, Tuple

import pytest

from repro.core.matcher import CECIMatcher
from repro.graph import Graph, inject_labels
from repro.graph.generators import power_law
from repro.resilience.budget import Budget
from repro.service import (
    MatchRequest,
    MatchService,
    Status,
    generate_workload,
)


def _workload(
    vertices: int, labels: int, queries: int, seed: int, cap: int = 500
) -> Tuple[Graph, List[Graph], List[int]]:
    """(data, queries, sequential counts) — counts are the ground truth
    every concurrent response is checked against."""
    data = inject_labels(power_law(vertices, 3, seed=seed), labels, seed=seed)
    pool = generate_workload(
        data, queries, seed=seed, min_vertices=3, max_vertices=5,
        max_embeddings=cap,
    )
    counts = [
        CECIMatcher(q, data, break_automorphisms=False).count() for q in pool
    ]
    return data, pool, counts


def _hammer(
    service: MatchService,
    queries: List[Graph],
    counts: List[int],
    threads: int,
    rounds: int,
    seed: int,
    budgets: bool = False,
) -> Dict[str, int]:
    """Drive the service from ``threads`` clients; raise on the first
    broken invariant.  Returns the observed status tally."""
    errors: List[str] = []
    statuses: Dict[str, int] = {status: 0 for status in Status.ALL}
    tally_lock = threading.Lock()
    barrier = threading.Barrier(threads)

    def check(index: int, response, limit: Optional[int]) -> None:
        with tally_lock:
            statuses[response.status] += 1
        if response.status == Status.REJECTED:
            return  # legal under shedding; checked separately
        if response.status == Status.FAILED:
            raise AssertionError(f"query {index} failed: {response.error}")
        expected = counts[index]
        if limit is not None:
            expected = min(limit, expected)
        if response.count != expected:
            raise AssertionError(
                f"query {index} returned {response.count} embeddings, "
                f"expected {expected} (cache {response.cache}, "
                f"status {response.status})"
            )
        if response.stats.embeddings_found != response.count:
            raise AssertionError(
                f"query {index}: stats bleed — embeddings_found="
                f"{response.stats.embeddings_found} but count="
                f"{response.count}"
            )

    def client(tid: int) -> None:
        rng = random.Random(seed * 1000 + tid)
        barrier.wait()
        try:
            for _ in range(rounds):
                index = rng.randrange(len(queries))
                limit: Optional[int] = None
                kwargs = {}
                if budgets and rng.random() < 0.3:
                    limit = rng.randint(1, max(counts[index], 1))
                    kwargs["limit"] = limit
                elif budgets and rng.random() < 0.3:
                    cap = rng.randint(1, max(counts[index], 1))
                    kwargs["budget"] = Budget(max_embeddings=cap)
                    limit = cap  # truncation cap behaves like a limit
                response = service.match(MatchRequest(
                    queries[index], break_automorphisms=False, **kwargs
                ))
                check(index, response, limit)
        except AssertionError as exc:
            errors.append(f"thread {tid}: {exc}")

    workers = [
        threading.Thread(target=client, args=(tid,)) for tid in range(threads)
    ]
    for thread in workers:
        thread.start()
    for thread in workers:
        thread.join()
    assert not errors, "\n".join(errors)
    return statuses


def test_concurrent_mixed_queries_stay_exact():
    data, queries, counts = _workload(150, 3, queries=4, seed=5)
    with MatchService(data, workers=3, max_pending=256) as service:
        statuses = _hammer(
            service, queries, counts, threads=4, rounds=6, seed=5
        )
    assert statuses[Status.OK] == 4 * 6
    assert statuses[Status.REJECTED] == 0
    # The cache served most repeats: at most one build per query class.
    assert service.index_cache.misses <= len(queries)


def test_same_query_from_all_threads_no_torn_store():
    """Every thread slams the same cold query simultaneously: one build
    (or a private duplicate, never a torn one) and identical answers."""
    data, queries, counts = _workload(150, 3, queries=1, seed=9)
    query, expected = queries[0], counts[0]
    results: List[int] = []
    lock = threading.Lock()
    barrier = threading.Barrier(6)

    with MatchService(data, workers=3, max_pending=64) as service:
        def client() -> None:
            barrier.wait()
            for _ in range(3):
                response = service.match(
                    MatchRequest(query, break_automorphisms=False)
                )
                assert response.ok, response.error
                with lock:
                    results.append(response.count)

        threads = [threading.Thread(target=client) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    assert results == [expected] * 18
    # All 18 requests resolved through one cache slot.
    assert len(service.index_cache) == 1
    assert service.index_cache.misses == 1


def test_rejected_requests_never_mutate_shared_state():
    """Deterministic shedding: the scheduler is gated inside the first
    request's index resolution, so the single pending slot stays busy
    while further submissions arrive — they must bounce instantly and
    leave the caches and metrics untouched."""
    data, queries, _ = _workload(150, 3, queries=2, seed=11)
    gate = threading.Event()
    entered = threading.Event()

    with MatchService(data, workers=1, max_pending=1) as service:
        original = service.index_cache.get_or_build

        def gated(query, build):
            entered.set()
            assert gate.wait(timeout=30)
            return original(query, build)

        service.index_cache.get_or_build = gated
        try:
            first = service.submit(
                MatchRequest(queries[0], break_automorphisms=False)
            )
            assert entered.wait(timeout=30)
            index_before = service.index_cache.snapshot()
            assert service.intersection_pool is not None
            pool_before = service.intersection_pool.snapshot()
            shed = [
                service.submit(
                    MatchRequest(queries[1], break_automorphisms=False)
                )
                for _ in range(5)
            ]
            # Shedding is synchronous: resolved before submit returned.
            assert all(handle.done() for handle in shed)
            for handle in shed:
                response = handle.result()
                assert response.status == Status.REJECTED
                assert response.embeddings == [] and response.cache is None
                assert "queue depth" in (response.error or "")
            assert service.index_cache.snapshot() == index_before
            assert service.intersection_pool.snapshot() == pool_before
            assert service.metrics.get(
                "service_requests_total", label=Status.REJECTED
            ) == 5
        finally:
            service.index_cache.get_or_build = original
            gate.set()
        assert first.result(timeout=60).ok
        # The slot freed: the service accepts and serves again.
        assert service.match(
            MatchRequest(queries[1], break_automorphisms=False)
        ).ok


# ----------------------------------------------------------------------
# Drain / close / cancel paths
# ----------------------------------------------------------------------

def _gated_service(data, queries, **kwargs):
    """A service whose first index resolution blocks on ``gate`` —
    the deterministic way to hold one request in flight."""
    service = MatchService(data, **kwargs)
    gate = threading.Event()
    entered = threading.Event()
    original = service.index_cache.get_or_build

    def gated(query, build):
        entered.set()
        assert gate.wait(timeout=60)
        return original(query, build)

    service.index_cache.get_or_build = gated
    return service, gate, entered, original


def test_drain_timeout_with_inflight_work():
    data, queries, counts = _workload(150, 3, queries=1, seed=13)
    service, gate, entered, original = _gated_service(
        data, queries, workers=1, max_pending=4
    )
    try:
        handle = service.submit(
            MatchRequest(queries[0], break_automorphisms=False)
        )
        assert entered.wait(timeout=30)
        # In-flight work pins drain until its timeout expires...
        assert service.drain(timeout=0.05) is False
        # ...and releasing the gate lets it drain fully.
        service.index_cache.get_or_build = original
        gate.set()
        assert service.drain(timeout=30) is True
        response = handle.result(timeout=1)
        assert response.ok and response.count == counts[0]
    finally:
        gate.set()
        assert service.close(timeout=30)


def test_close_timeout_with_wedged_request_is_bounded():
    """A worker wedged inside enumeration: ``close(timeout=...)`` must
    return within the bound, resolve the stuck request TIMEOUT, and —
    once the wedge clears — leak no threads."""
    data, queries, _ = _workload(150, 3, queries=1, seed=13)
    gate = threading.Event()
    entered = threading.Event()
    before = threading.active_count()

    class _Wedged:
        truncated = False
        stop_reason = None

        def collect(self, limit=None):
            entered.set()
            gate.wait(timeout=60)
            return []

        def collect_from_unit(self, prefix):
            entered.set()
            gate.wait(timeout=60)
            return []

    service = MatchService(data, workers=2, max_pending=4)
    service._enumerator = lambda job, stats: _Wedged()
    handle = service.submit(MatchRequest(
        queries[0], break_automorphisms=False, limit=10,
    ))
    assert entered.wait(timeout=30)
    started = time.monotonic()
    closed = service.close(timeout=1.0)
    elapsed = time.monotonic() - started
    assert closed is False  # honest: a thread is still wedged
    assert elapsed < 10.0  # but the call itself was bounded
    response = handle.result(timeout=5)
    assert response.status == Status.TIMEOUT
    assert "close" in (response.error or "")
    # Un-wedge: every service thread must now exit — no leaks.
    gate.set()
    deadline = time.monotonic() + 30
    while threading.active_count() > before and time.monotonic() < deadline:
        time.sleep(0.02)
    assert threading.active_count() <= before


def test_concurrent_close_is_idempotent():
    """Several threads race ``close()`` while requests are in flight:
    every call returns True, every request resolved, and the service
    refuses new work afterwards."""
    data, queries, counts = _workload(150, 3, queries=2, seed=7)
    service = MatchService(data, workers=2, max_pending=64)
    handles = [
        service.submit(
            MatchRequest(queries[i % 2], break_automorphisms=False)
        )
        for i in range(6)
    ]
    results: List[bool] = []
    lock = threading.Lock()

    def closer() -> None:
        ok = service.close(timeout=60)
        with lock:
            results.append(ok)

    closers = [threading.Thread(target=closer) for _ in range(4)]
    for thread in closers:
        thread.start()
    for thread in closers:
        thread.join()
    assert results == [True] * 4
    for i, handle in enumerate(handles):
        response = handle.result(timeout=1)
        assert response.ok and response.count == counts[i % 2]
    with pytest.raises(RuntimeError):
        service.submit(MatchRequest(queries[0], break_automorphisms=False))
    # A fourth close after the fact is still a cheap no-op.
    assert service.close(timeout=1)


def test_cancel_resolves_cancelled():
    data, queries, _ = _workload(150, 3, queries=1, seed=13)
    service, gate, entered, original = _gated_service(
        data, queries, workers=1, max_pending=4
    )
    try:
        handle = service.submit(
            MatchRequest(queries[0], break_automorphisms=False)
        )
        assert entered.wait(timeout=30)
        assert handle.cancel() is True
        service.index_cache.get_or_build = original
        gate.set()
        response = handle.result(timeout=30)
        assert response.status == Status.CANCELLED
        assert response.embeddings == []
        # Cancelling a finished request reports False.
        assert handle.cancel() is False
    finally:
        gate.set()
        assert service.close(timeout=30)


def test_cancel_on_rejected_request_is_false():
    data, queries, _ = _workload(150, 3, queries=1, seed=13)
    service, gate, entered, original = _gated_service(
        data, queries, workers=1, max_pending=1
    )
    try:
        service.submit(MatchRequest(queries[0], break_automorphisms=False))
        assert entered.wait(timeout=30)
        shed = service.submit(
            MatchRequest(queries[0], break_automorphisms=False)
        )
        assert shed.result(timeout=1).status == Status.REJECTED
        assert shed.cancel() is False
    finally:
        service.index_cache.get_or_build = original
        gate.set()
        assert service.close(timeout=30)


@pytest.mark.slow
def test_stress_heavy_mixed_workload():
    """The scaled-up version: 8 threads, 6 query classes, limits and
    budgets mixed in, tight admission so shedding actually happens —
    every non-shed answer must still be exact and the service must end
    the run drained and consistent."""
    data, queries, counts = _workload(400, 5, queries=6, seed=21, cap=800)
    with MatchService(
        data, workers=4, max_pending=16, index_capacity=4
    ) as service:
        statuses = _hammer(
            service, queries, counts, threads=8, rounds=12, seed=21,
            budgets=True,
        )
        assert service.drain(timeout=60)
    total = sum(statuses.values())
    assert total == 8 * 12
    assert statuses[Status.FAILED] == 0
    assert statuses[Status.OK] + statuses[Status.TRUNCATED] >= total - \
        statuses[Status.REJECTED]
    snapshot = service.index_cache.snapshot()
    # With capacity 4 < 6 classes the LRU must have churned, and the
    # counters must balance: every resolution is exactly one tier.
    assert snapshot["entries"] <= 4
    resolutions = (
        service.index_cache.hits
        + service.index_cache.warm_hits
        + service.index_cache.coalesced
        + service.index_cache.misses
    )
    assert resolutions == total - statuses[Status.REJECTED]
