"""Service telemetry tests (DESIGN.md §13).

Four subsystems, one acceptance bar:

* the **flight recorder** — bounded ring of per-request lifecycle
  records; every response the service hands back must have a terminal
  flight record that *agrees* with it (status, cache tier, retries),
  including under injected chaos;
* the **query-history store** — append-only, size-rotated JSONL of
  per-query features + observed phase costs that must round-trip its
  own schema validation;
* the **slow-query log** — flight-shaped JSONL records for requests
  past the ``slow_ms`` threshold, renderable by ``repro explain``;
* the **metrics exporter** — a stdlib HTTP endpoint serving the live
  registry as Prometheus text while requests are in flight.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.matcher import CECIMatcher
from repro.graph import Graph, inject_labels
from repro.graph.generators import power_law
from repro.observability import (
    FLIGHT_SCHEMA,
    FlightError,
    FlightRecorder,
    HISTORY_SCHEMA,
    HistoryError,
    MetricsExporter,
    MetricsRegistry,
    QueryHistory,
    load_flight_records,
    read_history,
    render_explain,
    render_flight,
    validate_flight_record,
    validate_history_record,
)
from repro.resilience.faults import FaultPlan
from repro.resilience.recovery import RetryPolicy
from repro.service import MatchRequest, MatchService, Status, generate_workload

DATA = Graph(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)])
TRIANGLE = Graph(3, [(0, 1), (1, 2), (0, 2)])


# ---------------------------------------------------------------------------
# FlightRecorder unit behaviour
# ---------------------------------------------------------------------------
class TestFlightRecorder:
    def test_ring_evicts_oldest(self):
        recorder = FlightRecorder(capacity=3)
        for request_id in range(1, 6):
            recorder.begin(request_id).finish(status="ok")
        assert len(recorder) == 3
        assert recorder.evicted == 2
        kept = [r["request_id"] for r in recorder.records()]
        assert kept == [3, 4, 5]  # oldest-first, 1 and 2 evicted
        assert recorder.find(1) is None
        assert recorder.find(5)["status"] == "ok"

    def test_limit_keeps_most_recent(self):
        recorder = FlightRecorder(capacity=8)
        for request_id in range(1, 6):
            recorder.begin(request_id)
        kept = [r["request_id"] for r in recorder.records(limit=2)]
        assert kept == [4, 5]

    def test_request_id_filter(self):
        recorder = FlightRecorder(capacity=8)
        recorder.begin(1)
        recorder.begin(2)
        recorder.begin(1)  # a retry-style duplicate id
        assert len(recorder.records(request_id=1)) == 2
        assert recorder.records(request_id=99) == []

    def test_finish_is_first_call_wins(self):
        record = FlightRecorder(capacity=2).begin(7)
        record.finish(status="ok", retries=1)
        record.finish(status="crashed", retries=9)
        out = record.as_dict()
        assert out["status"] == "ok" and out["retries"] == 1
        assert out["finished"] is True

    def test_events_carry_relative_timestamps(self):
        record = FlightRecorder(capacity=2).begin(1)
        record.event("admit", outcome="admitted")
        record.event("final", status="ok")
        events = record.as_dict()["events"]
        assert [e["ev"] for e in events] == ["admit", "final"]
        assert all(e["t"] >= 0 for e in events)
        assert events[0]["t"] <= events[1]["t"]
        assert events[0]["outcome"] == "admitted"

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestFlightValidation:
    def _minimal(self):
        record = FlightRecorder(capacity=1).begin(3)
        record.event("admit")
        record.finish(status="ok")
        return record.as_dict()

    def test_minimal_record_validates(self):
        validate_flight_record(self._minimal())

    @pytest.mark.parametrize("mutate, message", [
        (lambda r: r.update(schema=99), "schema"),
        (lambda r: r.update(request_id="3"), "request_id"),
        (lambda r: r.update(status=7), "status"),
        (lambda r: r.update(events={}), "events"),
        (lambda r: r["events"].append({"t": 0.0}), "ev"),
        (lambda r: r["events"].append({"ev": "x", "t": -1.0}), "t must"),
        (lambda r: r.update(phase_seconds={"enumerate": "fast"}), "number"),
        (lambda r: r.update(counters=[1, 2]), "counters"),
        (lambda r: r.update(plan=[1]), "plan"),
    ])
    def test_rejections(self, mutate, message):
        record = self._minimal()
        mutate(record)
        with pytest.raises(FlightError, match=message):
            validate_flight_record(record)

    def test_not_an_object(self):
        with pytest.raises(FlightError):
            validate_flight_record([1, 2])


class TestFlightFiles:
    def test_loads_dump_lines_and_plain_jsonl(self, tmp_path):
        record = FlightRecorder(capacity=1).begin(1)
        record.finish(status="ok")
        dump = {"op": "flight", "records": [record.as_dict()]}
        path = tmp_path / "mixed.jsonl"
        path.write_text(
            json.dumps(dump) + "\n" + json.dumps(record.as_dict()) + "\n"
        )
        records = load_flight_records(str(path))
        assert len(records) == 2
        assert all(r["request_id"] == 1 for r in records)

    def test_empty_and_malformed_files_rejected(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(FlightError, match="empty"):
            load_flight_records(str(empty))
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{not json\n")
        with pytest.raises(FlightError, match="invalid JSON"):
            load_flight_records(str(bad))

    def test_renderers_smoke(self):
        record = FlightRecorder(capacity=1).begin(12)
        record.event("admit", outcome="admitted")
        record.event("final", status="ok")
        record.finish(
            status="ok", cache="hit", latency_seconds=0.004,
            service_seconds=0.003,
            plan={"root": 0, "root_candidates": 5, "root_score": 2.5,
                  "order": [0, 1], "level_candidates": [[0, 5], [1, 3]],
                  "clusters": 5, "cardinality_bound": 15},
            phase_seconds={"enumerate": 0.003},
            counters={"recursive_calls": 9},
        )
        flight_text = render_flight(record.as_dict())
        assert "request 12" in flight_text
        assert "admit" in flight_text and "root 0" in flight_text
        assert "recursive_calls=9" in flight_text
        explain_text = render_explain(record.as_dict())
        assert "request 12" in explain_text
        assert explain_text.index("plan") < explain_text.index("lifecycle")


# ---------------------------------------------------------------------------
# QueryHistory store
# ---------------------------------------------------------------------------
def _history_record(request_id: int = 1, signature: str = "sig-a") -> dict:
    return {
        "request_id": request_id,
        "signature": signature,
        "status": "ok",
        "cache": "miss",
        "retries": 0,
        "latency_seconds": 0.01,
        "service_seconds": 0.009,
        "features": {
            "query_vertices": 3, "query_edges": 3,
            "query_labels": 1, "max_degree": 2,
        },
        "phase_seconds": {"enumerate": 0.005},
        "counters": {"recursive_calls": 11},
    }


class TestQueryHistory:
    def test_append_stamps_schema_and_round_trips(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        with QueryHistory(path) as history:
            stamped = history.append(_history_record())
            assert stamped["schema"] == HISTORY_SCHEMA
        records = read_history(path)
        assert len(records) == 1
        validate_history_record(records[0])

    def test_rotation_keeps_bounded_segments(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        with QueryHistory(path, max_bytes=400, keep=2) as history:
            for i in range(40):
                history.append(_history_record(request_id=i))
            snap = history.snapshot()
            segments = history.segments()
        assert snap["appended"] == 40
        assert snap["rotations"] >= 2
        assert len(segments) <= 3  # active + keep=2 rotated
        # Rotated-out records are dropped, survivors read oldest-first.
        records = read_history(path)
        ids = [r["request_id"] for r in records]
        assert ids == sorted(ids)
        assert ids[-1] == 39
        for record in records:
            validate_history_record(record)

    def test_append_after_close_raises(self, tmp_path):
        history = QueryHistory(str(tmp_path / "history.jsonl"))
        history.append(_history_record())
        history.close()
        with pytest.raises(HistoryError):
            history.append(_history_record())

    @pytest.mark.parametrize("mutate, message", [
        (lambda r: r.update(schema=0), "schema"),
        (lambda r: r.update(signature=""), "signature"),
        (lambda r: r.pop("signature"), "signature"),
        (lambda r: r.update(request_id=None), "request_id"),
        (lambda r: r.update(status=1), "status"),
        (lambda r: r["features"].pop("max_degree"), "max_degree"),
        (lambda r: r["features"].update(query_edges="many"), "query_edges"),
        (lambda r: r.update(latency_seconds=-1), "latency_seconds"),
        (lambda r: r.update(phase_seconds={"x": None}), "number"),
    ])
    def test_rejections(self, mutate, message):
        record = {"schema": HISTORY_SCHEMA, **_history_record()}
        mutate(record)
        with pytest.raises(HistoryError, match=message):
            validate_history_record(record)

    def test_concurrent_appends_all_land(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        with QueryHistory(path) as history:
            threads = [
                threading.Thread(target=lambda i=i: [
                    history.append(_history_record(request_id=i * 100 + j))
                    for j in range(25)
                ])
                for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        records = read_history(path)
        assert len(records) == 100
        # Interleaved writers must never tear a JSON line.
        assert len({r["request_id"] for r in records}) == 100


# ---------------------------------------------------------------------------
# HTTP exporter
# ---------------------------------------------------------------------------
def _get(url: str) -> tuple:
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.read().decode("utf-8")


class TestMetricsExporter:
    def test_serves_live_registry(self):
        from repro.observability import MetricSpec

        registry = MetricsRegistry([
            MetricSpec(
                "service_requests_total", labeled=True, label_name="status"
            ),
        ])
        registry.inc("service_requests_total", 3, label="ok")
        with MetricsExporter(lambda: registry, port=0) as exporter:
            status, text = _get(exporter.url)
            assert status == 200
            assert 'repro_service_requests_total{status="ok"} 3' in text
            # The provider is consulted per scrape: updates are live.
            registry.inc("service_requests_total", 2, label="ok")
            _, text = _get(exporter.url)
            assert 'repro_service_requests_total{status="ok"} 5' in text
            status, body = _get(exporter.url.replace("/metrics", "/healthz"))
            assert (status, body.strip()) == (200, "ok")
            status, body = _get(exporter.url + ".json")
            assert status == 200
            assert json.loads(body)["schema"] == 1

    def test_unknown_path_404_provider_error_500(self):
        calls = {"n": 0}

        def provider():
            calls["n"] += 1
            raise RuntimeError("registry exploded")

        with MetricsExporter(provider, port=0) as exporter:
            base = exporter.url.rsplit("/", 1)[0]
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(base + "/nope")
            assert excinfo.value.code == 404
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(exporter.url)
            assert excinfo.value.code == 500
        assert calls["n"] == 1


# ---------------------------------------------------------------------------
# Service integration: every response has an agreeing flight record
# ---------------------------------------------------------------------------
def _telemetry_service(tmp_path, **kwargs):
    defaults = dict(
        workers=2,
        flight_records=64,
        history=str(tmp_path / "history.jsonl"),
        slow_ms=0.0,
        slow_log=str(tmp_path / "slow.jsonl"),
        fold_request_stats=True,
    )
    defaults.update(kwargs)
    return MatchService(DATA, **defaults)


class TestServiceTelemetry:
    def test_flight_record_agrees_with_response(self, tmp_path):
        with _telemetry_service(tmp_path) as service:
            cold = service.match(MatchRequest(TRIANGLE))
            warm = service.match(MatchRequest(TRIANGLE, limit=1))
            records = service.flight_records()
        assert len(records) == 2
        by_id = {r["request_id"]: r for r in records}
        for response, expected_cache in ((cold, "miss"), (warm, "hit")):
            record = by_id[response.request_id]
            validate_flight_record(record)
            assert record["finished"] is True
            assert record["status"] == response.status == Status.OK
            assert record["cache"] == response.cache == expected_cache
            assert record["retries"] == response.retries
            assert record["latency_seconds"] == pytest.approx(
                response.latency_seconds
            )
            kinds = [e["ev"] for e in record["events"]]
            assert kinds[0] == "admit" and kinds[-1] == "final"
            assert "index" in kinds and "planned" in kinds

    def test_plan_facts_present_for_miss_and_hit(self, tmp_path):
        with _telemetry_service(tmp_path) as service:
            service.match(MatchRequest(TRIANGLE))
            service.match(MatchRequest(TRIANGLE))
            records = service.flight_records()
        for record in records:
            plan = record["plan"]
            assert plan["root"] in range(3)
            assert plan["order"] and len(plan["order"]) == 3
            assert plan["cardinality_bound"] >= plan["root_candidates"] > 0
            assert len(plan["level_candidates"]) == 3

    def test_rejected_requests_are_recorded(self, tmp_path):
        gate = threading.Event()
        entered = threading.Event()
        with _telemetry_service(
            tmp_path, workers=1, max_pending=1
        ) as service:
            original = service.index_cache.get_or_build

            def gated(query, build):
                entered.set()
                assert gate.wait(timeout=30)
                return original(query, build)

            service.index_cache.get_or_build = gated
            try:
                first = service.submit(MatchRequest(TRIANGLE))
                assert entered.wait(timeout=30)
                shed = service.submit(MatchRequest(TRIANGLE))
                response = shed.result(timeout=5)
                record = service.flight_records(
                    request_id=response.request_id
                )[0]
            finally:
                service.index_cache.get_or_build = original
                gate.set()
            assert first.result(timeout=30).ok
        assert response.status == Status.REJECTED
        assert record["status"] == Status.REJECTED
        assert [e["ev"] for e in record["events"]] == ["admit", "final"]
        assert record["events"][0]["outcome"] == "rejected"

    def test_history_and_slow_log_round_trip(self, tmp_path):
        with _telemetry_service(tmp_path) as service:
            responses = [
                service.match(MatchRequest(TRIANGLE)),
                service.match(MatchRequest(TRIANGLE, limit=1)),
            ]
        history = read_history(str(tmp_path / "history.jsonl"))
        assert [r["request_id"] for r in history] == [
            response.request_id for response in responses
        ]
        signatures = {r["signature"] for r in history}
        assert len(signatures) == 1  # same query -> same canonical key
        for record in history:
            assert record["features"]["query_vertices"] == 3
            assert record["phase_seconds"].get("enumerate", 0) >= 0
        # slow_ms=0 -> every request is "slow"; the log lines are
        # flight-shaped records stamped with the tripped threshold.
        slow = load_flight_records(str(tmp_path / "slow.jsonl"))
        assert len(slow) == 2
        assert all(line["slow_ms"] == 0.0 for line in slow)

    def test_slow_threshold_filters(self, tmp_path):
        with _telemetry_service(tmp_path, slow_ms=60_000.0) as service:
            service.match(MatchRequest(TRIANGLE))
        assert not (tmp_path / "slow.jsonl").exists()

    def test_fold_and_snapshot_surface_telemetry(self, tmp_path):
        with _telemetry_service(tmp_path) as service:
            service.match(MatchRequest(TRIANGLE))
            snapshot = service.snapshot()
            live = service.metrics_snapshot()
        assert snapshot["flight_records"] == 1
        assert snapshot["history"]["appended"] == 1
        assert snapshot["scheduler"]["popped"] >= 1
        # fold_request_stats merged the request's own counters in.
        assert snapshot["metrics"]["metrics"]["recursive_calls"] > 0
        assert live.get("service_healthy_workers") == 2

    def test_telemetry_disabled_is_inert(self):
        with MatchService(DATA, workers=2) as service:
            response = service.match(MatchRequest(TRIANGLE))
            assert service.flight is None
            assert service.flight_records() == []
            snapshot = service.snapshot()
        assert response.ok
        assert "flight_records" not in snapshot
        assert "history" not in snapshot


# ---------------------------------------------------------------------------
# Chaos agreement: telemetry stays truthful under injected faults
# ---------------------------------------------------------------------------
class TestChaosAgreement:
    def _chaos_run(self, tmp_path, seed: int):
        data = inject_labels(power_law(150, 3, seed=5), 3, seed=5)
        queries = generate_workload(
            data, 3, seed=5, min_vertices=3, max_vertices=5,
            max_embeddings=500,
        )
        plan = FaultPlan.service_chaos(seed, requests=12)
        responses = []
        with MatchService(
            data, workers=2, fault_plan=plan,
            retry_policy=RetryPolicy(max_retries=2),
            flight_records=128,
            history=str(tmp_path / "history.jsonl"),
            fold_request_stats=True,
        ) as service:
            for i in range(12):
                responses.append(
                    service.match(
                        MatchRequest(
                            queries[i % len(queries)],
                            break_automorphisms=False,
                        )
                    )
                )
            records = service.flight_records()
        return responses, records

    @pytest.mark.parametrize("seed", [0, 3])
    def test_flight_records_agree_under_chaos(self, tmp_path, seed):
        responses, records = self._chaos_run(tmp_path, seed)
        by_id = {r["request_id"]: r for r in records}
        assert len(by_id) == len(responses)
        for response in responses:
            record = by_id[response.request_id]
            validate_flight_record(record)
            assert record["finished"] is True
            assert record["status"] == response.status, (
                response.request_id, record["status"], response.status
            )
            assert record["retries"] == response.retries
            assert record["cache"] == response.cache
        # At least one seeded fault actually fired, or the test is vacuous.
        eventful = {
            e["ev"] for record in records for e in record["events"]
        }
        assert eventful & {"retry", "worker_crash", "unit_failed"}, eventful

    def test_history_round_trips_under_chaos(self, tmp_path):
        responses, _ = self._chaos_run(tmp_path, seed=1)
        records = read_history(str(tmp_path / "history.jsonl"))
        assert len(records) == len(responses)
        statuses = {r["request_id"]: r["status"] for r in records}
        for response in responses:
            assert statuses[response.request_id] == response.status
