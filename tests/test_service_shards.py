"""Differential harness for the sharded service tier (DESIGN.md §14).

Seeded random (data, query) configurations are answered twice: by the
single-process :class:`MatchService` (the ground truth the sharded tier
must be indistinguishable from) and by a :class:`ShardedMatchService`
whose worker *processes* share one mmap'd CECIIDX3 index per query.
Statuses, embedding lists (order included — the merge concatenates
per-pivot parts in pivot order, exactly the sequential collect order),
truncation flags and stop reasons must be identical across three
request shapes per query: unbounded, ``limit``-truncated (solo-routed),
and budget-bounded on a deterministic axis.

On a mismatch the harness shrinks the query by dropping edges (keeping
it connected) while the divergence persists, then fails with the
minimal reproducer — the same discipline as ``test_differential.py``.

Sharded services fork processes, so each data-graph configuration
stands its pair of services up once (module-scoped fixture) and runs
every query and request shape against them.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import pytest

from repro.graph import Graph, erdos_renyi, generate_query, inject_labels
from repro.graph.generators import power_law
from repro.resilience.budget import Budget
from repro.service import MatchRequest, MatchService, Status
from repro.service.shards import ShardedMatchService, sharded_metric_specs

#: Data-graph configurations; with QUERIES_PER_DATA queries each and
#: three request shapes per query this is 10 x 4 = 40 seeded
#: (graph, query) configs — 120 differential comparisons.
DATA_SEEDS = range(10)
QUERIES_PER_DATA = 4
SHARDS = 3


def make_data(seed: int) -> Graph:
    """A reproducible data graph, mixing generator families, sizes and
    label counts across the seed space."""
    import random

    rng = random.Random(seed * 6151 + 29)
    n = rng.randint(30, 70)
    if seed % 2 == 0:
        data = power_law(n, rng.randint(2, 4), seed=seed)
    else:
        e = rng.randint(n, 3 * n)
        data = erdos_renyi(n, e, seed=seed)
    return inject_labels(data, rng.randint(1, 3), seed=seed)


def make_queries(data: Graph, seed: int) -> List[Graph]:
    """Up to QUERIES_PER_DATA connected queries extracted from data."""
    import random

    rng = random.Random(seed * 911 + 3)
    queries = []
    for i in range(QUERIES_PER_DATA):
        try:
            queries.append(
                generate_query(data, rng.randint(3, 5), seed=seed * 53 + i)
            )
        except ValueError:
            continue  # data graph too fragmented at this size
    return queries


def response_facets(response) -> Tuple:
    """Everything the differential compares: status, truncation flag,
    stop reason, count, and the exact embedding list (order included)."""
    return (
        response.status,
        response.truncated,
        response.stop_reason,
        response.count,
        [tuple(e) for e in response.embeddings],
    )


REQUEST_SHAPES = ("unbounded", "limit", "budget")


def build_request(query: Graph, shape: str) -> MatchRequest:
    if shape == "unbounded":
        return MatchRequest(query)
    if shape == "limit":
        return MatchRequest(query, limit=2)
    # Deterministic budget axis: max_calls counts recursion identically
    # in the sequential and sharded (solo-routed) paths, so the
    # truncated prefix and stop_reason must match exactly.
    return MatchRequest(query, budget=Budget(max_calls=40))


@pytest.fixture(scope="module", params=DATA_SEEDS)
def service_pair(request):
    data = make_data(request.param)
    with MatchService(data, workers=2) as truth:
        with ShardedMatchService(data, shards=SHARDS) as sharded:
            yield request.param, data, truth, sharded


def _divergent_shapes(
    query: Graph, truth: MatchService, sharded: ShardedMatchService
) -> List[str]:
    """Request shapes on which the two tiers disagree."""
    return [
        shape
        for shape in REQUEST_SHAPES
        if response_facets(truth.match(build_request(query, shape)))
        != response_facets(sharded.match(build_request(query, shape)))
    ]


def _connected_after_drop(query: Graph, edge_index: int) -> Optional[Graph]:
    edges = [e for i, e in enumerate(query.edges) if i != edge_index]
    labels = {u: query.labels_of(u) for u in query.vertices()}
    shrunk = Graph(query.num_vertices, edges, labels=labels)
    return shrunk if shrunk.is_connected() else None


def shrink_query(
    query: Graph, truth: MatchService, sharded: ShardedMatchService
) -> Graph:
    """Greedy edge-dropping shrink: keep removing query edges (staying
    connected) while the sharded tier still diverges from the
    single-process service on any request shape."""
    current = query
    progress = True
    while progress:
        progress = False
        for i in range(len(current.edges)):
            candidate = _connected_after_drop(current, i)
            if candidate is None:
                continue
            if _divergent_shapes(candidate, truth, sharded):
                current = candidate
                progress = True
                break
    return current


def test_sharded_tier_is_indistinguishable(service_pair):
    seed, data, truth, sharded = service_pair
    queries = make_queries(data, seed)
    if not queries:
        pytest.skip("data seed yields no connected queries")
    for qi, query in enumerate(queries):
        for shape in REQUEST_SHAPES:
            expected = response_facets(truth.match(build_request(query, shape)))
            got = response_facets(sharded.match(build_request(query, shape)))
            if got == expected:
                continue
            minimal = shrink_query(query, truth, sharded)
            still = _divergent_shapes(minimal, truth, sharded)
            pytest.fail(
                f"data seed {seed}, query {qi}, shape {shape}: sharded "
                f"tier diverged from MatchService.\n"
                f"  expected {expected[:4]} ({len(expected[4])} emb)\n"
                f"  got      {got[:4]} ({len(got[4])} emb)\n"
                f"Minimal failing query after shrinking "
                f"({len(minimal.edges)} edges, shapes {still}):\n"
                f"  vertices={minimal.num_vertices}\n"
                f"  edges={minimal.edges}\n"
                f"  labels="
                f"{[minimal.labels_of(u) for u in minimal.vertices()]}\n"
                f"  data: |V|={data.num_vertices} edges={data.edges}\n"
                f"  data labels="
                f"{[data.labels_of(v) for v in data.vertices()]}"
            )


def test_unbounded_requests_fan_out(service_pair):
    """Unbounded requests decompose across shards (fan-out recorded on
    the response); limit/budget requests route solo to one shard."""
    seed, data, truth, sharded = service_pair
    queries = make_queries(data, seed)
    if not queries:
        pytest.skip("data seed yields no connected queries")
    saw_fanout = False
    for query in queries:
        unbounded = sharded.match(MatchRequest(query))
        assert unbounded.status == Status.OK
        assert unbounded.shard_fanout is not None
        assert 1 <= unbounded.shard_fanout <= SHARDS
        saw_fanout = saw_fanout or unbounded.shard_fanout > 1
        solo = sharded.match(MatchRequest(query, limit=2))
        assert solo.status == Status.OK
        assert solo.shard_fanout == 1
    assert saw_fanout, "no query decomposed across more than one shard"


class TestShardedLifecycle:
    """Shape-of-the-tier checks that need their own service instances."""

    def test_single_shard_equals_many(self):
        data = make_data(3)
        query = make_queries(data, 3)[0]
        facets = []
        for shards in (1, 4):
            with ShardedMatchService(data, shards=shards) as service:
                facets.append(response_facets(service.match(MatchRequest(query))))
        assert facets[0] == facets[1]

    def test_empty_result_query_is_ok(self):
        data = inject_labels(erdos_renyi(20, 40, seed=9), 2, seed=9)
        # A query label no data vertex carries: zero embeddings, not an
        # error, and no shard has anything to enumerate.
        query = Graph(2, [(0, 1)], labels=["missing-label", "missing-label"])
        with ShardedMatchService(data, shards=2) as service:
            response = service.match(MatchRequest(query))
            assert response.status == Status.OK
            assert response.count == 0
            assert not response.truncated

    def test_warm_requests_hit_shared_index(self):
        data = make_data(5)
        query = make_queries(data, 5)[0]
        with ShardedMatchService(data, shards=2) as service:
            cold = service.match(MatchRequest(query))
            warm = service.match(MatchRequest(query))
            assert cold.cache == "miss"
            assert warm.cache == "hit"
            assert response_facets(cold) == response_facets(warm)
            publishes = service.metrics.get("service_shard_publishes")
            assert publishes == 1, "warm request must reuse the publish"

    def test_healthy_workers_and_telemetry(self):
        data = make_data(1)
        queries = make_queries(data, 1)
        with ShardedMatchService(data, shards=3) as service:
            for query in queries:
                assert service.match(MatchRequest(query)).status == Status.OK
            assert service.healthy_workers() == 3
            telemetry = service.shard_telemetry()
            assert len(telemetry["busy_seconds"]) == 3
            assert len(telemetry["tasks"]) == 3
            assert sum(telemetry["tasks"]) > 0
            snapshot = service.snapshot()
            assert len(snapshot["shards"]["tasks"]) == 3
            assert snapshot["healthy_workers"] == 3

    def test_rejects_past_admission_limit(self):
        data = make_data(2)
        query = make_queries(data, 2)[0]
        with ShardedMatchService(data, shards=2, max_pending=1) as service:
            pending = [
                service.submit(MatchRequest(query)) for _ in range(6)
            ]
            statuses = [handle.result().status for handle in pending]
            assert Status.REJECTED in statuses
            ok = [s for s in statuses if s == Status.OK]
            assert ok, "admission control must not reject everything"


def test_sharded_metric_specs_extend_service_specs():
    names = [spec.name for spec in sharded_metric_specs()]
    assert "service_requests_total" in names  # the base tier's specs
    for shard_metric in (
        "service_shard_tasks_total",
        "service_shard_crashes",
        "service_shard_respawns",
        "service_shard_publishes",
        "service_shard_republishes",
    ):
        assert shard_metric in names
    assert len(names) == len(set(names)), "duplicate metric registration"
