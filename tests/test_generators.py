"""Tests for the synthetic graph generators and query extraction."""

import pytest

from repro.graph import (
    dense_labeled,
    erdos_renyi,
    generate_query,
    generate_query_set,
    inject_labels,
    kronecker,
    power_law,
    relabel_with,
)


class TestKronecker:
    def test_vertex_count_is_power_of_two(self):
        g = kronecker(6, seed=1)
        assert g.num_vertices == 64

    def test_deterministic(self):
        assert kronecker(6, seed=7) == kronecker(6, seed=7)

    def test_seed_changes_graph(self):
        assert kronecker(6, seed=1) != kronecker(6, seed=2)

    def test_edge_factor_bounds_edges(self):
        g = kronecker(7, edge_factor=4, seed=3)
        assert 0 < g.num_edges <= 4 * 128

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            kronecker(0)

    def test_invalid_initiator_rejected(self):
        with pytest.raises(ValueError):
            kronecker(4, a=0.6, b=0.3, c=0.3)

    def test_skewed_degrees(self):
        g = kronecker(9, seed=5)
        seq = g.degree_sequence()
        # RMAT graphs are heavy-tailed: top vertex far above the median.
        assert seq[0] >= 5 * max(seq[len(seq) // 2], 1)


class TestPowerLaw:
    def test_connected(self):
        assert power_law(200, 3, seed=1).is_connected()

    def test_edge_count(self):
        g = power_law(200, 3, seed=1)
        # seed clique + m edges per subsequent vertex
        assert g.num_edges == 6 + (200 - 4) * 3

    def test_heavy_tail(self):
        g = power_law(500, 4, seed=2)
        seq = g.degree_sequence()
        assert seq[0] > 3 * seq[len(seq) // 2]

    def test_too_few_vertices_rejected(self):
        with pytest.raises(ValueError):
            power_law(3, 4)

    def test_deterministic(self):
        assert power_law(100, 3, seed=9) == power_law(100, 3, seed=9)


class TestErdosRenyi:
    def test_exact_edge_count(self):
        g = erdos_renyi(30, 60, seed=1)
        assert g.num_edges == 60

    def test_too_many_edges_rejected(self):
        with pytest.raises(ValueError):
            erdos_renyi(4, 7)

    def test_deterministic(self):
        assert erdos_renyi(30, 50, seed=4) == erdos_renyi(30, 50, seed=4)


class TestDenseLabeled:
    def test_label_universe(self):
        g = dense_labeled(num_vertices=100, avg_degree=10, num_labels=9, seed=1)
        assert all(
            label in range(9) for v in g.vertices() for label in g.labels_of(v)
        )

    def test_multi_labels_present(self):
        g = dense_labeled(num_vertices=200, avg_degree=10, seed=2)
        assert any(len(g.labels_of(v)) > 1 for v in g.vertices())

    def test_density(self):
        g = dense_labeled(num_vertices=100, avg_degree=20, seed=3)
        assert g.num_edges == 100 * 20 // 2


class TestLabelInjection:
    def test_inject_labels_universe_and_structure(self):
        base = erdos_renyi(40, 80, seed=1)
        labeled = inject_labels(base, 5, seed=2)
        assert labeled.edges == base.edges
        assert all(
            next(iter(labeled.labels_of(v))) in range(5)
            for v in labeled.vertices()
        )

    def test_relabel_with(self):
        base = erdos_renyi(3, 2, seed=1)
        relabeled = relabel_with(base, ["X", "Y", "Z"])
        assert relabeled.label_of(2) == "Z"
        assert relabeled.edges == base.edges


class TestQueryGeneration:
    def test_query_is_connected_induced_subgraph(self):
        data = power_law(150, 4, seed=3)
        q = generate_query(data, 6, seed=1)
        assert q.num_vertices == 6
        assert q.is_connected()

    def test_query_has_at_least_one_embedding(self):
        from repro import match

        data = inject_labels(power_law(120, 4, seed=4), 4, seed=4)
        q = generate_query(data, 5, seed=9)
        assert match(q, data, limit=1, break_automorphisms=False)

    def test_backward_edges_included(self):
        # On a clique the DFS selection must keep every backward edge.
        from repro.graph import Graph

        clique = Graph(5, [(i, j) for i in range(5) for j in range(i + 1, 5)])
        q = generate_query(clique, 4, seed=0)
        assert q.num_edges == 6  # induced 4-clique

    def test_oversized_query_rejected(self):
        data = erdos_renyi(5, 4, seed=1)
        with pytest.raises(ValueError):
            generate_query(data, 10)

    def test_query_set_count_and_determinism(self):
        data = power_law(100, 3, seed=5)
        qs1 = generate_query_set(data, 4, count=5, seed=7)
        qs2 = generate_query_set(data, 4, count=5, seed=7)
        assert len(qs1) == 5
        assert qs1 == qs2

    def test_keep_all_labels(self):
        data = dense_labeled(num_vertices=80, avg_degree=10, seed=6)
        q = generate_query(data, 3, seed=2, keep_all_labels=True)
        # multi-label vertices can appear with their full label set
        assert all(len(q.labels_of(u)) >= 1 for u in q.vertices())
