"""Differential correctness harness.

Seeded random (data, query) pairs are matched by every engine — CECI
under each intersection kernel, CECI with edge verification, CFLMatch
and TurboIso in both regimes, VF2 and Ullmann — and the embedding *sets*
must be identical (symmetry breaking disabled so the full sets compare).

On a mismatch the harness shrinks the query by dropping edges (keeping
it connected) while the disagreement persists, then fails with the
minimal reproducer — a failing seed should be debuggable by eye, not by
re-running a 16-vertex instance.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

import pytest

from conftest import brute_force_embeddings
from repro.baselines.cflmatch import cflmatch_match
from repro.baselines.turboiso import turboiso_match
from repro.baselines.ullmann import ullmann_match
from repro.baselines.vf2 import vf2_match
from repro.core.matcher import CECIMatcher
from repro.graph import Graph, erdos_renyi, generate_query, inject_labels
from repro.graph.generators import power_law

Engine = Callable[[Graph, Graph], Set[Tuple[int, ...]]]


def _ceci(
    kernel: str,
    use_intersection: bool = True,
    store: str = "dict",
    engine: str = "auto",
    **extra,
) -> Engine:
    def run(query: Graph, data: Graph) -> Set[Tuple[int, ...]]:
        matcher = CECIMatcher(
            query,
            data,
            break_automorphisms=False,
            use_intersection=use_intersection,
            kernel=kernel,
            store=store,
            engine=engine,
            **extra,
        )
        return set(matcher.match())

    return run


def _cfl(use_intersection: bool = False, store: str = "dict") -> Engine:
    return lambda q, d: set(
        cflmatch_match(
            q,
            d,
            break_automorphisms=False,
            use_intersection=use_intersection,
            store=store,
        )
    )


def _turbo(use_intersection: bool = False, store: str = "dict") -> Engine:
    return lambda q, d: set(
        turboiso_match(
            q,
            d,
            break_automorphisms=False,
            use_intersection=use_intersection,
            store=store,
        )
    )


# The original 11 engine configurations run the mutable dict builder;
# every index-shaped engine is then repeated over the frozen compact
# store — the embedding sets must be identical across *both* axes.
ENGINES: Dict[str, Engine] = {
    "ceci-auto": _ceci("auto"),
    "ceci-merge": _ceci("merge"),
    "ceci-gallop": _ceci("gallop"),
    "ceci-bitset": _ceci("bitset"),
    "ceci-edge-verify": _ceci("auto", use_intersection=False),
    "cfl-edge-verify": _cfl(),
    "cfl-intersect": _cfl(use_intersection=True),
    "turboiso-edge-verify": _turbo(),
    "turboiso-intersect": _turbo(use_intersection=True),
    "vf2": lambda q, d: set(vf2_match(q, d, break_automorphisms=False)),
    "ullmann": lambda q, d: set(ullmann_match(q, d, break_automorphisms=False)),
    "ceci-auto-compact": _ceci("auto", store="compact"),
    "ceci-merge-compact": _ceci("merge", store="compact"),
    "ceci-gallop-compact": _ceci("gallop", store="compact"),
    "ceci-bitset-compact": _ceci("bitset", store="compact"),
    "ceci-edge-verify-compact": _ceci(
        "auto", use_intersection=False, store="compact"
    ),
    "cfl-edge-verify-compact": _cfl(store="compact"),
    "cfl-intersect-compact": _cfl(use_intersection=True, store="compact"),
    "turboiso-edge-verify-compact": _turbo(store="compact"),
    "turboiso-intersect-compact": _turbo(
        use_intersection=True, store="compact"
    ),
    # Set-at-a-time engine axis (DESIGN.md §12): the vectorised batch
    # engine forced on, the recursion forced on over the same compact
    # store (the pair the drop-in claim is about), and the batch engine
    # under every index-shape perturbation — alternate matching orders
    # and weakened construction pipelines change the frontier layout
    # and candidate sets it joins over, so each is its own config.
    "ceci-batch": _ceci("auto", store="compact", engine="batch"),
    "ceci-recursive-compact": _ceci(
        "auto", store="compact", engine="recursive"
    ),
    "ceci-batch-edge-ranked": _ceci(
        "auto", store="compact", engine="batch",
        order_strategy="edge_ranked",
    ),
    "ceci-batch-path-ranked": _ceci(
        "auto", store="compact", engine="batch",
        order_strategy="path_ranked",
    ),
    "ceci-batch-norefine": _ceci(
        "auto", store="compact", engine="batch", use_refinement=False
    ),
    "ceci-batch-nocascade": _ceci(
        "auto", store="compact", engine="batch", use_cascade=False
    ),
}


def make_instance(seed: int) -> Optional[Tuple[Graph, Graph]]:
    """A reproducible random (query, data) pair, mixing generator
    families, sizes and label counts across the seed space."""
    import random

    rng = random.Random(seed * 7919 + 13)
    n = rng.randint(8, 16)
    if seed % 3 == 0:
        data = power_law(n, rng.randint(2, 4), seed=seed)
    else:
        e = rng.randint(n, min(n * (n - 1) // 2, 3 * n))
        data = erdos_renyi(n, e, seed=seed)
    data = inject_labels(data, rng.randint(1, 3), seed=seed)
    try:
        query = generate_query(data, rng.randint(3, 6), seed=seed * 31 + 7)
    except ValueError:
        return None  # data graph too fragmented for a connected query
    return query, data


def _connected_after_drop(query: Graph, edge_index: int) -> Optional[Graph]:
    """The query with one edge removed, or None if that disconnects it
    (isolated-vertex queries are out of scope for every engine here)."""
    edges = [e for i, e in enumerate(query.edges) if i != edge_index]
    labels = {u: query.labels_of(u) for u in query.vertices()}
    shrunk = Graph(query.num_vertices, edges, labels=labels)
    return shrunk if shrunk.is_connected() else None


def _disagreeing(query: Graph, data: Graph) -> List[str]:
    """Engine names whose embedding set differs from brute force."""
    expected = brute_force_embeddings(query, data)
    return [
        name
        for name, engine in ENGINES.items()
        if engine(query, data) != expected
    ]


def shrink_query(query: Graph, data: Graph) -> Graph:
    """Greedy edge-dropping shrink: keep removing query edges (staying
    connected) while at least one engine still disagrees with brute
    force. Returns the minimal failing query."""
    current = query
    progress = True
    while progress:
        progress = False
        for i in range(len(current.edges)):
            candidate = _connected_after_drop(current, i)
            if candidate is None:
                continue
            if _disagreeing(candidate, data):
                current = candidate
                progress = True
                break
    return current


@pytest.mark.parametrize("seed", range(60))
def test_engines_agree(seed):
    instance = make_instance(seed)
    if instance is None:
        pytest.skip("seed yields no connected query")
    query, data = instance
    expected = brute_force_embeddings(query, data)
    failures = {
        name: result
        for name, engine in ENGINES.items()
        if (result := engine(query, data)) != expected
    }
    if not failures:
        assert expected, (
            "DFS-extracted queries guarantee at least one embedding "
            "(Section 6.2), so an empty result set means the reference "
            "itself is broken"
        )
        return
    minimal = shrink_query(query, data)
    still = _disagreeing(minimal, data)
    pytest.fail(
        f"seed {seed}: engines {sorted(failures)} disagree with brute "
        f"force.\nMinimal failing query after shrinking "
        f"({len(minimal.edges)} edges, engines {still}):\n"
        f"  vertices={minimal.num_vertices}\n"
        f"  edges={minimal.edges}\n"
        f"  labels={[minimal.labels_of(u) for u in minimal.vertices()]}\n"
        f"  data: |V|={data.num_vertices} edges={data.edges}\n"
        f"  data labels={[data.labels_of(v) for v in data.vertices()]}"
    )


def test_shrinker_finds_minimal_reproducer():
    """The shrink loop itself must work: give it a deliberately broken
    'engine' and check it reduces a triangle-plus-tail query to the
    smallest query that still triggers the disagreement."""
    data = inject_labels(erdos_renyi(10, 20, seed=5), 1, seed=5)
    query = generate_query(data, 4, seed=11)
    lying_name = "ceci-auto"
    real = ENGINES[lying_name]
    ENGINES[lying_name] = lambda q, d: set()  # always wrong when matches exist
    try:
        minimal = shrink_query(query, data)
    finally:
        ENGINES[lying_name] = real
    # Connected 4-vertex queries have >= 3 edges; the shrinker must reach
    # a spanning tree (the minimum), since the fake engine fails on all.
    assert len(minimal.edges) == minimal.num_vertices - 1
    assert minimal.is_connected()


@pytest.mark.parametrize("kernel", ["merge", "gallop", "bitset"])
def test_kernels_identical_on_dense_instance(kernel):
    """A denser, hub-heavy instance pushing the dispatcher toward every
    kernel — forced kernels must still match edge verification."""
    data = inject_labels(power_law(60, 5, seed=2), 2, seed=2)
    query = generate_query(data, 5, seed=9)
    expected = _ceci("auto", use_intersection=False)(query, data)
    assert _ceci(kernel)(query, data) == expected
