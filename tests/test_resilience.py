"""Tests for the resilience layer: enumeration budgets, deterministic
fault injection, and crash recovery in the parallel and distributed
runtimes."""

import pytest

from repro import CECIMatcher, Graph
from repro.graph import power_law
from repro.parallel import parallel_match
from repro.distributed import DistributedCECI
from repro.resilience import (
    Budget,
    BudgetExhausted,
    FaultPlan,
    ParallelExecutionError,
    PartialResult,
    RecoveryLog,
    RetryPolicy,
)


@pytest.fixture(scope="module")
def data():
    return power_law(300, 4, seed=67)


@pytest.fixture(scope="module")
def triangle_query():
    return Graph(3, [(0, 1), (1, 2), (0, 2)])


@pytest.fixture(scope="module")
def sequential(triangle_query, data):
    return set(CECIMatcher(triangle_query, data).match())


class TestBudget:
    def test_rejects_non_positive_axes(self):
        with pytest.raises(ValueError):
            Budget(deadline_seconds=0)
        with pytest.raises(ValueError):
            Budget(max_calls=-1)

    def test_unlimited(self):
        assert Budget().unlimited
        assert not Budget(max_calls=10).unlimited

    def test_tracker_max_calls(self):
        tracker = Budget(max_calls=3).tracker().start()
        for _ in range(3):
            tracker.charge_call()
        with pytest.raises(BudgetExhausted) as err:
            tracker.charge_call()
        assert err.value.reason == "max_calls"

    def test_tracker_max_embeddings(self):
        tracker = Budget(max_embeddings=2).tracker().start()
        tracker.charge_embedding(3)
        tracker.charge_embedding(3)
        with pytest.raises(BudgetExhausted) as err:
            tracker.charge_embedding(3)
        assert err.value.reason == "max_embeddings"

    def test_tracker_memory(self):
        tracker = Budget(max_memory_bytes=100).tracker().start()
        tracker.charge_embedding(3)  # 56 + 24 = 80 bytes
        with pytest.raises(BudgetExhausted) as err:
            tracker.charge_embedding(3)
        assert err.value.reason == "max_memory"

    def test_expired_deadline_detected(self):
        tracker = Budget(deadline_seconds=1e-9).tracker().start()
        assert tracker.deadline_passed()
        with pytest.raises(BudgetExhausted):
            tracker.check_deadline()


class TestBudgetedMatcher:
    def test_max_calls_truncates(self, triangle_query, data, sequential):
        matcher = CECIMatcher(triangle_query, data, budget=Budget(max_calls=40))
        result = matcher.run()
        assert result.truncated and not result.exhausted
        assert result.stop_reason == "max_calls"
        assert 0 < len(result) < len(sequential)
        assert matcher.stats.budget_stops == 1
        # the partial answer contains only true embeddings
        assert set(result.embeddings) <= sequential

    def test_max_embeddings_truncates_exactly(self, triangle_query, data):
        matcher = CECIMatcher(
            triangle_query, data, budget=Budget(max_embeddings=10)
        )
        result = matcher.run()
        assert result.truncated and result.stop_reason == "max_embeddings"
        assert len(result) == 10

    def test_tight_deadline_returns_instead_of_hanging(
        self, triangle_query, data
    ):
        matcher = CECIMatcher(
            triangle_query, data, budget=Budget(deadline_seconds=1e-9)
        )
        result = matcher.run()
        assert result.truncated and result.stop_reason == "deadline"

    def test_unbudgeted_run_is_exhaustive(
        self, triangle_query, data, sequential
    ):
        result = CECIMatcher(triangle_query, data).run()
        assert result.exhausted and not result.truncated
        assert set(result.embeddings) == sequential

    def test_limit_cut_is_neither_exhausted_nor_truncated(
        self, triangle_query, data
    ):
        result = CECIMatcher(triangle_query, data).run(limit=5)
        assert len(result) == 5
        assert not result.truncated and not result.exhausted

    def test_generous_budget_unchanged_result(
        self, triangle_query, data, sequential
    ):
        matcher = CECIMatcher(
            triangle_query, data, budget=Budget(max_calls=10**9)
        )
        result = matcher.run()
        assert result.exhausted
        assert set(result.embeddings) == sequential

    def test_budgeted_generator_path(self, triangle_query, data):
        matcher = CECIMatcher(triangle_query, data, budget=Budget(max_calls=40))
        enumerator = matcher.enumerator()
        found = list(enumerator.embeddings())
        assert enumerator.truncated
        assert enumerator.stop_reason == "max_calls"
        assert found  # partial, not empty, and did not raise


class TestBatchedBudgets:
    """Budget semantics under the set-at-a-time engine (DESIGN.md §12):
    blocks are charged and truncated in bulk, but the PartialResult the
    caller sees — flags, stop reason, and the exact cut point — must be
    indistinguishable from the recursive engine's."""

    def _run(self, query, data, engine, budget=None, limit=None):
        matcher = CECIMatcher(
            query, data, store="compact", engine=engine, budget=budget
        )
        return matcher.run(limit=limit), matcher

    def test_truncated_flags_under_batching(self, triangle_query, data):
        result, matcher = self._run(
            triangle_query, data, "batch", Budget(max_calls=40)
        )
        assert result.truncated and not result.exhausted
        assert result.stop_reason == "max_calls"
        assert matcher.stats.budget_stops == 1
        assert matcher.stats.batch_blocks > 0  # the batch path ran

    def test_unbudgeted_batch_run_is_exhausted(self, triangle_query, data):
        result, matcher = self._run(triangle_query, data, "batch")
        assert result.exhausted and not result.truncated
        assert result.stop_reason is None
        assert matcher.stats.batch_blocks > 0

    def test_max_embeddings_lands_mid_block_exactly(
        self, triangle_query, data
    ):
        """Leaf blocks hold many embeddings at once; the cut must land
        on the exact embedding, and the kept rows must be the same
        DFS prefix the unbudgeted run starts with."""
        full, _ = self._run(triangle_query, data, "batch")
        total = len(full)
        for cap in (1, 10, total - 1):
            result, _ = self._run(
                triangle_query, data, "batch", Budget(max_embeddings=cap)
            )
            assert len(result) == cap
            assert result.truncated
            assert result.stop_reason == "max_embeddings"
            assert list(result) == list(full)[:cap]

    @pytest.mark.parametrize("max_calls", [25, 40, 100])
    def test_budget_cut_matches_recursive_engine(
        self, max_calls, triangle_query, data
    ):
        b_result, bm = self._run(
            triangle_query, data, "batch", Budget(max_calls=max_calls)
        )
        r_result, rm = self._run(
            triangle_query, data, "recursive", Budget(max_calls=max_calls)
        )
        assert list(b_result) == list(r_result)
        assert b_result.truncated == r_result.truncated
        assert b_result.stop_reason == r_result.stop_reason
        assert bm.stats.recursive_calls == rm.stats.recursive_calls

    def test_deadline_stop_loses_and_duplicates_nothing(
        self, triangle_query, data
    ):
        """A deadline can expire anywhere inside the block loop; the
        partial answer must still be a clean prefix of the unbudgeted
        stream — no row committed twice, none silently dropped."""
        full, _ = self._run(triangle_query, data, "batch")
        result, _ = self._run(
            triangle_query, data, "batch", Budget(deadline_seconds=1e-9)
        )
        assert result.truncated and result.stop_reason == "deadline"
        got = list(result)
        assert len(set(got)) == len(got)
        assert got == list(full)[: len(got)]

    def test_limit_cut_mid_block_is_not_truncated(
        self, triangle_query, data
    ):
        result, _ = self._run(triangle_query, data, "batch", limit=7)
        assert len(result) == 7
        assert not result.truncated and not result.exhausted


class TestPartialResult:
    def test_container_protocol(self):
        result = PartialResult([(0, 1), (2, 3)])
        assert len(result) == 2
        assert list(result) == [(0, 1), (2, 3)]
        assert bool(result)
        assert not PartialResult([])


class TestFaultPlan:
    def test_chaos_is_deterministic(self):
        a = FaultPlan.chaos(42, num_machines=4, num_workers=4)
        b = FaultPlan.chaos(42, num_machines=4, num_workers=4)
        assert a == b

    def test_chaos_varies_with_seed(self):
        plans = [
            FaultPlan.chaos(s, num_machines=8, num_workers=8) for s in range(8)
        ]
        assert any(p != plans[0] for p in plans[1:])

    def test_chaos_never_kills_everyone(self):
        plan = FaultPlan.chaos(1, num_machines=4, num_workers=4)
        assert 0 < len(plan.machine_crashes) < 4
        assert 0 < len(plan.worker_crash_picks) < 4

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(message_drop_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(slow_machines={0: 0.5})

    def test_rng_replays(self):
        plan = FaultPlan(seed=9)
        assert [plan.rng().random() for _ in range(3)] == [
            plan.rng().random() for _ in range(3)
        ]

    def test_empty(self):
        assert FaultPlan().empty
        assert not FaultPlan(machine_crashes={0: 1}).empty


class TestRecoveryPrimitives:
    def test_retry_policy(self):
        policy = RetryPolicy(max_retries=2)
        assert policy.allows(2) and not policy.allows(3)
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)

    def test_recovery_log_counts(self):
        log = RecoveryLog()
        log.record("requeue", 1, (3,))
        log.record("requeue", 2, (4,))
        log.record("give_up", 1, (5,))
        assert log.count("requeue") == 2
        assert log.summary() == {"requeue": 2, "give_up": 1}
        assert len(log) == 3


class TestParallelCrashSafety:
    @pytest.mark.parametrize("policy", ["ST", "CGD", "FGD"])
    def test_worker_crash_recovered_exactly(
        self, policy, triangle_query, data, sequential
    ):
        matcher = CECIMatcher(triangle_query, data)
        plan = FaultPlan(seed=1, worker_crash_picks=frozenset({5}))
        found, reports = parallel_match(
            matcher, workers=4, policy=policy, fault_plan=plan
        )
        assert set(found) == sequential
        assert len(found) == len(sequential)  # no duplicates either
        assert sum(1 for r in reports if r.crashed) == 1
        assert matcher.stats.worker_crashes == 1
        assert matcher.stats.retries >= 1

    def test_unit_errors_are_retried_not_dropped(
        self, triangle_query, data, sequential
    ):
        matcher = CECIMatcher(triangle_query, data)
        plan = FaultPlan(seed=1, worker_error_picks=frozenset({0, 3, 7}))
        found, reports = parallel_match(
            matcher, workers=4, policy="FGD", fault_plan=plan
        )
        assert set(found) == sequential
        assert matcher.stats.retries == 3
        assert sum(r.units_failed for r in reports) == 3
        assert any(r.failures for r in reports)

    def test_all_workers_crashing_raises_with_report(
        self, triangle_query, data
    ):
        matcher = CECIMatcher(triangle_query, data)
        plan = FaultPlan(seed=1, worker_crash_picks=frozenset(range(500)))
        with pytest.raises(ParallelExecutionError) as err:
            parallel_match(
                matcher, workers=2, policy="CGD", fault_plan=plan
            )
        assert not err.value.report.ok
        assert err.value.report.failed_work
        assert sorted(err.value.report.crashed) == [0, 1]

    def test_retries_exhausted_raises(self, triangle_query, data):
        # every attempt of every unit errors out -> retries must run dry
        matcher = CECIMatcher(triangle_query, data)
        plan = FaultPlan(seed=1, worker_error_picks=frozenset(range(10**4)))
        with pytest.raises(ParallelExecutionError) as err:
            parallel_match(
                matcher, workers=4, policy="CGD", fault_plan=plan,
                max_retries=1,
            )
        assert "retries exhausted" in str(err.value)

    def test_units_processed_accounts_every_unit(self, triangle_query, data):
        matcher = CECIMatcher(triangle_query, data)
        units = len(matcher.work_units(beta=None))
        found, reports = parallel_match(matcher, workers=4, policy="CGD")
        assert sum(r.units_processed for r in reports) == units

    def test_units_processed_counts_limit_stopped_units(
        self, triangle_query, data
    ):
        matcher = CECIMatcher(triangle_query, data)
        found, reports = parallel_match(
            matcher, workers=4, policy="CGD", limit=7
        )
        # the unit that hit the limit still counts as processed
        assert sum(r.units_processed for r in reports) >= 1

    @pytest.mark.parametrize("limit", [1, 7, 50])
    def test_limit_exact_under_faults(
        self, limit, triangle_query, data, sequential
    ):
        matcher = CECIMatcher(triangle_query, data)
        plan = FaultPlan(seed=1, worker_crash_picks=frozenset({2}))
        found, _ = parallel_match(
            matcher, workers=4, policy="FGD", limit=limit, fault_plan=plan
        )
        assert len(found) == min(limit, len(sequential))
        assert set(found) <= sequential


class TestDistributedRecovery:
    def test_machine_crash_recovered_exactly(
        self, triangle_query, data, sequential
    ):
        plan = FaultPlan(seed=7, machine_crashes={1: 2})
        result = DistributedCECI(
            triangle_query, data, num_machines=4, fault_plan=plan
        ).run()
        assert result.complete
        assert set(result.embeddings) == sequential
        assert len(result.embeddings) == len(sequential)
        assert result.reports[1].crashed
        assert result.stats.machine_crashes == 1
        assert result.stats.retries >= 1
        assert result.stats.reassignments >= 1
        assert sum(r.reassigned for r in result.reports) == (
            result.stats.reassignments
        )

    def test_fault_run_is_replayable(self, triangle_query, data):
        plan = FaultPlan(seed=7, machine_crashes={1: 2}, message_drop_rate=0.2)
        a = DistributedCECI(
            triangle_query, data, num_machines=4, fault_plan=plan
        ).run()
        b = DistributedCECI(
            triangle_query, data, num_machines=4, fault_plan=plan
        ).run()
        assert a.embeddings == b.embeddings
        assert a.stats.messages_dropped == b.stats.messages_dropped
        assert a.total_time == b.total_time

    def test_message_drops_cost_and_count(self, triangle_query, data):
        plan = FaultPlan(seed=3, message_drop_rate=0.3)
        dropped = DistributedCECI(
            triangle_query, data, num_machines=4, fault_plan=plan
        ).run()
        clean = DistributedCECI(triangle_query, data, num_machines=4).run()
        assert dropped.stats.messages_dropped > 0
        assert set(dropped.embeddings) == set(clean.embeddings)
        assert sum(
            r.construction_comm for r in dropped.reports
        ) > sum(r.construction_comm for r in clean.reports)

    def test_slow_machine_sheds_work_to_peers(self, triangle_query, data):
        plan = FaultPlan(seed=3, slow_machines={0: 50.0})
        slow = DistributedCECI(
            triangle_query, data, num_machines=4, fault_plan=plan
        ).run()
        clean = DistributedCECI(triangle_query, data, num_machines=4).run()
        assert set(slow.embeddings) == set(clean.embeddings)
        assert sum(r.steals for r in slow.reports) >= sum(
            r.steals for r in clean.reports
        )

    def test_losing_every_machine_is_flagged_not_silent(
        self, triangle_query, data
    ):
        plan = FaultPlan(
            seed=7, machine_crashes={0: 0, 1: 0, 2: 0, 3: 0}
        )
        result = DistributedCECI(
            triangle_query, data, num_machines=4, fault_plan=plan
        ).run()
        assert not result.complete
        assert result.failed_clusters
        assert result.recovery.count("machine_crash") == 4

    def test_retry_accounting_in_recovery_log(self, triangle_query, data):
        plan = FaultPlan(seed=7, machine_crashes={1: 0})
        result = DistributedCECI(
            triangle_query, data, num_machines=4, fault_plan=plan
        ).run()
        assert result.recovery.count("machine_crash") == 1
        assert result.recovery.count("requeue") == 1
        assert result.recovery.count("reassign") >= 1


class TestAcceptanceScenario:
    """The ISSUE's bar: 1 of 4 machines and 1 of 4 workers crash
    mid-run; both paths still return the exact sequential set and the
    stats expose the recovery work."""

    def test_both_paths_survive_chaos(self, triangle_query, data, sequential):
        plan = FaultPlan.chaos(42, num_machines=4, num_workers=4)
        assert plan.machine_crashes and plan.worker_crash_picks

        matcher = CECIMatcher(triangle_query, data)
        par, reports = parallel_match(
            matcher, workers=4, policy="FGD", fault_plan=plan
        )
        assert set(par) == sequential
        assert len(par) == len(sequential)
        assert matcher.stats.worker_crashes == len(plan.worker_crash_picks)
        assert matcher.stats.retries >= 1

        dist = DistributedCECI(
            triangle_query, data, num_machines=4, fault_plan=plan
        ).run()
        assert dist.complete
        assert set(dist.embeddings) == sequential
        assert len(dist.embeddings) == len(sequential)
        assert dist.stats.machine_crashes == len(plan.machine_crashes)
        assert dist.stats.retries + dist.stats.reassignments >= 1

    def test_tight_budget_returns_partial_not_unbounded(
        self, triangle_query, data
    ):
        matcher = CECIMatcher(
            triangle_query, data, budget=Budget(max_calls=25)
        )
        result = matcher.run()
        assert result.truncated
        assert not result.exhausted
        assert matcher.stats.recursive_calls <= 25 + 1
