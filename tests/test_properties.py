"""Property-based tests (hypothesis) for the core invariants:

* CECI completeness — the index never loses a true embedding (checked
  against independent brute force);
* intersection primitive == set semantics;
* cardinality is a true upper bound per cluster;
* work-unit decomposition partitions the embedding set;
* automorphism breaking lists each vertex set exactly once;
* graph construction invariants (symmetry, degree sums);
* CSR round trip is the identity.
"""

from typing import List, Tuple

from hypothesis import given, settings, strategies as st

from repro import CECIMatcher, Graph, match
from repro.core import intersect_sorted
from repro.graph import from_csr, to_csr

from conftest import brute_force_embeddings


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def small_graphs(draw, min_vertices=2, max_vertices=9, labels=2):
    n = draw(st.integers(min_vertices, max_vertices))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), max_size=len(possible), unique=True)
    )
    vertex_labels = draw(
        st.lists(
            st.integers(0, labels - 1), min_size=n, max_size=n
        )
    )
    return Graph(n, edges, vertex_labels)


@st.composite
def connected_queries(draw, max_vertices=4, labels=2):
    n = draw(st.integers(1, max_vertices))
    # random spanning tree guarantees connectivity
    edges: List[Tuple[int, int]] = []
    for v in range(1, n):
        parent = draw(st.integers(0, v - 1))
        edges.append((parent, v))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    extra = draw(
        st.lists(st.sampled_from(possible), max_size=len(possible), unique=True)
    ) if possible else []
    vertex_labels = draw(
        st.lists(st.integers(0, labels - 1), min_size=n, max_size=n)
    )
    return Graph(n, list(set(edges) | set(extra)), vertex_labels)


@settings(max_examples=60, deadline=None)
@given(query=connected_queries(), data=small_graphs())
def test_ceci_equals_brute_force(query, data):
    expected = brute_force_embeddings(query, data)
    got = set(match(query, data, break_automorphisms=False))
    assert got == expected


@settings(max_examples=40, deadline=None)
@given(query=connected_queries(), data=small_graphs())
def test_completeness_survives_refinement_removals(query, data):
    """Every true embedding's (u, v) pairs survive in the refined index
    (Section 3.5's completeness guarantee)."""
    matcher = CECIMatcher(query, data, break_automorphisms=False)
    ceci = matcher.build()
    for embedding in brute_force_embeddings(query, data):
        for u in query.vertices():
            # Candidate must not have been refined away: it still has a
            # positive refinement cardinality in the (frozen) store.
            assert ceci.cardinality_of(u, embedding[u]) >= 1


@settings(max_examples=40, deadline=None)
@given(query=connected_queries(), data=small_graphs())
def test_cardinality_upper_bounds_cluster_size(query, data):
    matcher = CECIMatcher(query, data, break_automorphisms=False)
    ceci = matcher.build()
    per_pivot: dict = {}
    for embedding in matcher.match():
        pivot = embedding[matcher.tree.root]
        per_pivot[pivot] = per_pivot.get(pivot, 0) + 1
    for pivot, count in per_pivot.items():
        assert ceci.cluster_cardinality(pivot) >= count


@settings(max_examples=30, deadline=None)
@given(
    query=connected_queries(),
    data=small_graphs(min_vertices=4),
    workers=st.integers(1, 4),
    beta=st.sampled_from([1.0, 0.5, 0.2]),
)
def test_work_units_partition_embeddings(query, data, workers, beta):
    matcher = CECIMatcher(query, data, break_automorphisms=False)
    sequential = sorted(matcher.match())
    units = matcher.work_units(worker_count=workers, beta=beta)
    from_units: list = []
    for unit in units:
        from_units.extend(matcher.embeddings_of_unit(unit))
    assert sorted(from_units) == sequential


@settings(max_examples=50, deadline=None)
@given(query=connected_queries(labels=1), data=small_graphs(labels=1))
def test_automorphism_breaking_lists_subgraphs_once(query, data):
    """With breaking on, each image *subgraph* (edge-set image) appears
    exactly once; the set of reachable subgraphs is unchanged."""

    def image(embedding):
        return frozenset(
            frozenset((embedding[s], embedding[d])) for s, d in query.edges
        ) or frozenset(embedding)  # single-vertex query: vertex image

    broken = match(query, data)
    broken_images = [image(e) for e in broken]
    assert len(set(broken_images)) == len(broken_images)
    full = match(query, data, break_automorphisms=False)
    assert {image(e) for e in full} == set(broken_images)


@settings(max_examples=100, deadline=None)
@given(
    lists=st.lists(
        st.lists(st.integers(0, 30), max_size=15).map(
            lambda xs: sorted(set(xs))
        ),
        min_size=1,
        max_size=4,
    )
)
def test_intersect_sorted_equals_set_semantics(lists):
    expected = set(lists[0])
    for other in lists[1:]:
        expected &= set(other)
    assert intersect_sorted([list(l) for l in lists]) == sorted(expected)


@settings(max_examples=60, deadline=None)
@given(data=small_graphs(max_vertices=12, labels=3))
def test_graph_invariants(data):
    # adjacency symmetric, degrees consistent, edge count consistent
    degree_sum = sum(data.degree(v) for v in data.vertices())
    assert degree_sum == 2 * data.num_edges
    for v in data.vertices():
        for w in data.neighbors(v):
            assert data.has_edge(w, v)


@settings(max_examples=40, deadline=None)
@given(data=small_graphs(max_vertices=12, labels=3))
def test_csr_round_trip_is_identity(data):
    assert from_csr(to_csr(data)) == data


@settings(max_examples=40, deadline=None)
@given(query=connected_queries(), data=small_graphs())
def test_limit_is_prefix_of_full_result(query, data):
    matcher = CECIMatcher(query, data, break_automorphisms=False)
    full = matcher.match()
    for limit in (0, 1, 3):
        fresh = CECIMatcher(query, data, break_automorphisms=False)
        assert fresh.match(limit=limit) == full[: limit]
