"""Seeded chaos tests for the hardened service tier.

Each test injects one deterministic fault class through
``MatchService(fault_plan=...)`` and pins the exact recovery contract:

* a worker crash mid-job is recovered by the retry policy (answer still
  exact, pool respawned to full strength) or, with no policy, surfaces
  as an honest ``CRASHED`` response;
* an injected index-build failure is a transient fault the retry policy
  absorbs;
* a corrupted spill blob is quarantined and the index rebuilt — never
  served;
* an injected scheduler stall trips the end-to-end deadline with
  ``TIMEOUT``;
* a wedged worker is condemned by the watchdog, its request is failed
  ``TIMEOUT``, and a replacement thread restores the pool.

The sharded tier (DESIGN.md §14) gets the same treatment with its own
fault classes: a shard *process* killed mid-query is respawned and its
lost task redispatched (answer still exact); a torn shared-mmap
publish is caught by the CECIIDX3 checksums in every shard and
republished from pristine bytes; a stalled shard trips the request
deadline and the tier stays healthy afterwards.

The ``@pytest.mark.slow`` suite at the bottom runs the full
:func:`~repro.service.loadgen.run_chaos` harness (all fault classes at
once, thread-pool and sharded) and gates on the acceptance bar: zero
wrong results, accurate failure statuses, full-strength pool.
"""

from __future__ import annotations

import threading
import time
from typing import List, Tuple

import pytest

from repro.core.matcher import CECIMatcher
from repro.graph import Graph, inject_labels
from repro.graph.generators import power_law
from repro.resilience.faults import FaultPlan
from repro.resilience.recovery import RetryPolicy
from repro.service import (
    MatchRequest,
    MatchService,
    Status,
    generate_workload,
    run_chaos,
)

#: Immediate retries keep the fast tier fast; backoff is covered by the
#: RetryPolicy unit tests and the slow harness.
RETRY = RetryPolicy(max_retries=2)


def _workload(
    queries: int = 2, seed: int = 5, vertices: int = 150
) -> Tuple[Graph, List[Graph], List[int]]:
    data = inject_labels(power_law(vertices, 3, seed=seed), 3, seed=seed)
    pool = generate_workload(
        data, queries, seed=seed, min_vertices=3, max_vertices=5,
        max_embeddings=500,
    )
    counts = [
        CECIMatcher(q, data, break_automorphisms=False).count() for q in pool
    ]
    return data, pool, counts


# ----------------------------------------------------------------------
# Worker crashes
# ----------------------------------------------------------------------

def test_worker_crash_recovered_by_retry():
    """The first task pick kills its worker mid-job: the watchdog
    respawns the slot, the retry re-runs the request, and the answer is
    still exact."""
    data, queries, counts = _workload()
    plan = FaultPlan(seed=1, service_worker_crash_picks=frozenset({0}))
    with MatchService(
        data, workers=2, fault_plan=plan, retry_policy=RETRY
    ) as service:
        response = service.match(
            MatchRequest(queries[0], break_automorphisms=False)
        )
        assert response.ok, response.error
        assert response.count == counts[0]
        assert response.retries >= 1
        # The watchdog noticed the death and restored the pool.
        assert service.healthy_workers() == 2
        assert service.metrics.get("service_worker_respawns") >= 1
        assert service.metrics.get("service_retries_total") >= 1


def test_worker_crash_without_retry_is_crashed():
    data, queries, _ = _workload()
    plan = FaultPlan(seed=1, service_worker_crash_picks=frozenset({0}))
    with MatchService(data, workers=2, fault_plan=plan) as service:
        response = service.match(
            MatchRequest(queries[0], break_automorphisms=False)
        )
        assert response.status == Status.CRASHED
        assert response.embeddings == []
        assert "worker died" in (response.error or "")
        assert service.healthy_workers() == 2  # pool still respawned


def test_crash_retries_exhausted_resolves_crashed():
    """Every attempt crashes: the policy runs out and the caller gets
    an honest CRASHED, not a hang."""
    data, queries, _ = _workload()
    plan = FaultPlan(
        seed=1, service_worker_crash_picks=frozenset(range(4096))
    )
    with MatchService(
        data, workers=2, fault_plan=plan, retry_policy=RETRY
    ) as service:
        # A limit makes the request solo: one task pick per attempt, so
        # three attempts -> three crashes, all injected.
        response = service.match(MatchRequest(
            queries[0], break_automorphisms=False, limit=10_000,
        ))
        assert response.status == Status.CRASHED
        assert response.retries == RETRY.max_retries
        assert service.healthy_workers() == 2


# ----------------------------------------------------------------------
# Build failures
# ----------------------------------------------------------------------

def test_build_failure_retried_transparently():
    data, queries, counts = _workload()
    plan = FaultPlan(seed=1, build_failure_picks=frozenset({0}))
    with MatchService(
        data, workers=2, fault_plan=plan, retry_policy=RETRY
    ) as service:
        response = service.match(
            MatchRequest(queries[0], break_automorphisms=False)
        )
        assert response.ok, response.error
        assert response.count == counts[0]
        assert response.retries == 1


def test_build_failure_without_retry_is_failed():
    data, queries, _ = _workload()
    plan = FaultPlan(seed=1, build_failure_picks=frozenset({0}))
    with MatchService(data, workers=2, fault_plan=plan) as service:
        response = service.match(
            MatchRequest(queries[0], break_automorphisms=False)
        )
        assert response.status == Status.FAILED
        assert "InjectedBuildError" in (response.error or "")


# ----------------------------------------------------------------------
# Spill corruption
# ----------------------------------------------------------------------

def test_corrupt_spill_quarantined_and_rebuilt(tmp_path):
    """A spilled index whose bytes rot is detected on revival, moved to
    ``*.corrupt`` and rebuilt from scratch — the answer stays exact and
    ``spill_corrupt`` counts the event."""
    data, queries, counts = _workload()
    plan = FaultPlan(seed=1, spill_read_corrupt_picks=frozenset({0}))
    with MatchService(
        data,
        workers=2,
        index_capacity=1,
        spill_dir=str(tmp_path),
        fault_plan=plan,
    ) as service:
        first = service.match(
            MatchRequest(queries[0], break_automorphisms=False)
        )
        assert first.ok and first.count == counts[0]
        # Evict the first index into the spill tier...
        assert service.match(
            MatchRequest(queries[1], break_automorphisms=False)
        ).ok
        # ...and revive it through the injected read corruption.
        again = service.match(
            MatchRequest(queries[0], break_automorphisms=False)
        )
        assert again.ok, again.error
        assert again.count == counts[0]
        assert again.cache == "miss"  # rebuilt, not served from rot
        snap = service.index_cache.snapshot()
        assert snap["spill_corrupt"] == 1
    quarantined = list(tmp_path.glob("*.corrupt"))
    assert len(quarantined) == 1


def test_torn_spill_write_never_serves_garbage(tmp_path):
    """A torn (short) spill write is caught by the checksum layer on
    revival; the request is answered from a fresh build."""
    data, queries, counts = _workload()
    plan = FaultPlan(seed=1, spill_torn_write_picks=frozenset({0}))
    with MatchService(
        data,
        workers=2,
        index_capacity=1,
        spill_dir=str(tmp_path),
        fault_plan=plan,
    ) as service:
        assert service.match(
            MatchRequest(queries[0], break_automorphisms=False)
        ).ok
        assert service.match(
            MatchRequest(queries[1], break_automorphisms=False)
        ).ok
        again = service.match(
            MatchRequest(queries[0], break_automorphisms=False)
        )
        assert again.ok and again.count == counts[0]
        assert service.index_cache.snapshot()["spill_corrupt"] >= 1


# ----------------------------------------------------------------------
# Deadlines vs. an injected scheduler stall
# ----------------------------------------------------------------------

def test_scheduler_stall_trips_request_deadline():
    data, queries, _ = _workload()
    plan = FaultPlan(
        seed=1,
        scheduler_stall_picks=frozenset({0}),
        scheduler_stall_seconds=0.5,
    )
    with MatchService(data, workers=2, fault_plan=plan) as service:
        started = time.perf_counter()
        response = service.match(MatchRequest(
            queries[0], break_automorphisms=False, deadline_seconds=0.05,
        ))
        elapsed = time.perf_counter() - started
        assert response.status == Status.TIMEOUT
        assert response.embeddings == []
        assert "deadline" in (response.error or "")
        # The stall itself still ran on the scheduler thread, but the
        # response never waited past it.
        assert elapsed < 5.0


def test_service_wide_default_deadline_applies():
    data, queries, _ = _workload()
    plan = FaultPlan(
        seed=1,
        scheduler_stall_picks=frozenset({0}),
        scheduler_stall_seconds=0.5,
    )
    with MatchService(
        data, workers=2, fault_plan=plan, deadline_seconds=0.05
    ) as service:
        response = service.match(
            MatchRequest(queries[0], break_automorphisms=False)
        )
        assert response.status == Status.TIMEOUT


# ----------------------------------------------------------------------
# Wedged-worker condemnation
# ----------------------------------------------------------------------

def test_watchdog_condemns_wedged_worker():
    """A worker stuck inside enumeration past ``stall_after_seconds``:
    the watchdog fails the request with TIMEOUT, condemns the thread and
    restores the pool without waiting for the wedge to clear."""
    data, queries, _ = _workload()
    gate = threading.Event()
    entered = threading.Event()

    class _Wedged:
        truncated = False
        stop_reason = None

        def collect(self, limit=None):
            entered.set()
            gate.wait(timeout=60)
            return []

        def collect_from_unit(self, prefix):
            entered.set()
            gate.wait(timeout=60)
            return []

    service = MatchService(
        data, workers=2, stall_after_seconds=0.2, watchdog_interval=0.02
    )
    try:
        service._enumerator = lambda job, stats: _Wedged()
        response = service.match(MatchRequest(
            queries[0], break_automorphisms=False, limit=10,
        ))
        assert entered.is_set()
        assert response.status == Status.TIMEOUT
        assert "stalled" in (response.error or "")
        assert service.metrics.get("service_worker_stalls") == 1
        # Replacement spawned while the wedged thread is still stuck.
        assert service.healthy_workers() == 2
    finally:
        gate.set()
        assert service.close(timeout=30)


# ----------------------------------------------------------------------
# Shard-process fault classes (DESIGN.md §14)
# ----------------------------------------------------------------------

def test_shard_crash_respawned_and_redispatched():
    """The first task dispatched to shard 0 kills the shard *process*
    mid-query.  The reader thread notices the dead pipe, respawns the
    shard, redispatches the lost task, and the merged answer is still
    exact — the crash is invisible to the caller."""
    from repro.service.shards import ShardedMatchService

    data, queries, counts = _workload()
    plan = FaultPlan(seed=1, shard_crash_picks=frozenset({(0, 0)}))
    with ShardedMatchService(data, shards=2, fault_plan=plan) as service:
        response = service.match(
            MatchRequest(queries[0], break_automorphisms=False)
        )
        assert response.ok, response.error
        assert response.count == counts[0]
        assert service.metrics.get("service_shard_crashes") >= 1
        assert service.metrics.get("service_shard_respawns") >= 1
        assert service.metrics.get("service_shard_redispatches") >= 1
        assert service.healthy_workers() == 2
        # Recovery must not have corrupted the tier: a repeat request
        # (warm index) still answers exactly.
        again = service.match(
            MatchRequest(queries[0], break_automorphisms=False)
        )
        assert again.ok and again.count == counts[0]


def test_shard_crash_redispatch_exhausted_is_crashed():
    """Every incarnation of every shard dies on every task: the bounded
    redispatch budget runs out and the caller gets an honest CRASHED,
    not a hang — and the supervisor still restores the processes."""
    from repro.service.shards import ShardedMatchService

    data, queries, _ = _workload()
    plan = FaultPlan(
        seed=1,
        shard_crash_picks=frozenset(
            (shard, pick) for shard in range(2) for pick in range(64)
        ),
    )
    with ShardedMatchService(
        data, shards=2, fault_plan=plan, max_redispatch=2
    ) as service:
        response = service.match(MatchRequest(
            queries[0], break_automorphisms=False, limit=10_000,
        ))
        assert response.status == Status.CRASHED
        assert response.embeddings == []
        assert service.metrics.get("service_shard_crashes") >= 3


def test_torn_publish_detected_and_republished():
    """The first shared-index publish is torn mid-write (short file).
    Every shard's mmap load CRC-fails on it; the parent republishes the
    pristine bytes once (idempotently) and the request completes with
    the exact answer — garbage is never enumerated."""
    from repro.service.shards import ShardedMatchService

    data, queries, counts = _workload()
    plan = FaultPlan(seed=1, publish_torn_picks=frozenset({0}))
    with ShardedMatchService(data, shards=2, fault_plan=plan) as service:
        response = service.match(
            MatchRequest(queries[0], break_automorphisms=False)
        )
        assert response.ok, response.error
        assert response.count == counts[0]
        assert service.metrics.get("service_shard_corrupt_loads") >= 1
        # One repair no matter how many shards tripped on the torn file.
        assert service.metrics.get("service_shard_republishes") == 1


def test_shard_stall_trips_deadline_then_recovers():
    """Both shards stall on their first task past the request deadline:
    the monitor resolves TIMEOUT without waiting for the stall, and
    once it clears the tier answers exactly again."""
    from repro.service.shards import ShardedMatchService

    data, queries, counts = _workload()
    plan = FaultPlan(
        seed=1,
        shard_stall_picks=frozenset({(0, 0), (1, 0)}),
        shard_stall_seconds=1.0,
    )
    with ShardedMatchService(data, shards=2, fault_plan=plan) as service:
        stalled = service.match(MatchRequest(
            queries[0], break_automorphisms=False, deadline_seconds=0.2,
        ))
        assert stalled.status == Status.TIMEOUT
        assert stalled.embeddings == []
        recovered = service.match(MatchRequest(
            queries[0], break_automorphisms=False, deadline_seconds=30.0,
        ))
        assert recovered.ok, recovered.error
        assert recovered.count == counts[0]
        assert service.healthy_workers() == 2


# ----------------------------------------------------------------------
# The full seeded suite (the CI chaos job runs this)
# ----------------------------------------------------------------------

@pytest.mark.slow
@pytest.mark.parametrize("seed", [0, 7, 23])
def test_seeded_chaos_suite_zero_wrong_results(seed):
    """All fault classes at once, three seeds: no completed request may
    ever disagree with the sequential matcher, failures must carry
    honest statuses, and the pool must end at full strength."""
    data = inject_labels(power_law(300, 3, seed=2), 4, seed=2)
    report = run_chaos(
        data,
        num_queries=4,
        requests=32,
        seed=seed,
        workers=3,
        max_retries=2,
        crash_fraction=0.15,
        build_failure_fraction=0.1,
        spill_fault_fraction=0.25,
    )
    assert report["wrong_results"] == []
    assert report["pool_full_strength"], report["healthy_workers"]
    statuses = report["statuses"]
    total = sum(statuses.values())
    assert total == 32
    # Injected faults may exhaust retries, but only into the honest
    # failure statuses — never into silent wrongness.
    assert statuses[Status.OK] + statuses[Status.CRASHED] + \
        statuses[Status.FAILED] + statuses[Status.TIMEOUT] == total
    assert report["availability"] >= 0.6
    # Retries really ran (the plans above always inject something).
    assert report["retries_total"] >= 1


@pytest.mark.slow
def test_chaos_with_stalls_and_deadline():
    """Scheduler stalls + a tight service deadline: stalled requests
    resolve TIMEOUT instead of hanging, everything else stays exact."""
    data = inject_labels(power_law(300, 3, seed=2), 4, seed=2)
    report = run_chaos(
        data,
        num_queries=3,
        requests=20,
        seed=11,
        workers=2,
        crash_fraction=0.0,
        build_failure_fraction=0.0,
        spill_fault_fraction=0.0,
        stall_fraction=0.2,
        stall_seconds=0.5,
        deadline_seconds=0.1,
    )
    assert report["wrong_results"] == []
    assert report["statuses"][Status.TIMEOUT] >= 1
    assert report["pool_full_strength"]


@pytest.mark.slow
@pytest.mark.parametrize("seed", [0, 13])
def test_seeded_shard_chaos_zero_wrong_results(seed):
    """The chaos harness against the sharded tier: shard-process kills,
    per-shard stalls and torn shared-index publishes all at once.  No
    completed request may disagree with the sequential matcher, and
    every shard process must be alive again at the end."""
    data = inject_labels(power_law(300, 3, seed=2), 4, seed=2)
    report = run_chaos(
        data,
        num_queries=4,
        requests=24,
        seed=seed,
        shards=2,
        shard_crash_fraction=0.15,
        shard_stall_fraction=0.1,
        shard_stall_seconds=0.05,
        publish_torn_fraction=0.3,
        deadline_seconds=30.0,
    )
    assert report["wrong_results"] == []
    assert report["pool_full_strength"], report["healthy_workers"]
    statuses = report["statuses"]
    assert sum(statuses.values()) == 24
    assert report["availability"] >= 0.6
    injected = report["injected"]
    assert (
        injected["shard_crashes"]
        + injected["shard_stalls"]
        + injected["torn_publishes"]
        > 0
    ), "the seeded plan must actually inject shard faults"
