"""Unit tests for the labeled graph store."""

import pytest

from repro.graph import Graph


class TestConstruction:
    def test_basic_counts(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        assert g.num_vertices == 4
        assert g.num_edges == 3

    def test_duplicate_edges_collapse(self):
        g = Graph(3, [(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Graph(2, [(0, 0)])

    def test_out_of_range_vertex_rejected(self):
        with pytest.raises(ValueError):
            Graph(2, [(0, 5)])

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(ValueError):
            Graph(-1, [])

    def test_empty_graph(self):
        g = Graph(0, [])
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert g.is_connected()

    def test_edges_normalized_sorted(self):
        g = Graph(3, [(2, 0), (1, 0)])
        assert g.edges == ((0, 1), (0, 2))


class TestAdjacency:
    def test_neighbors_sorted(self):
        g = Graph(4, [(0, 3), (0, 1), (0, 2)])
        assert g.neighbors(0) == (1, 2, 3)

    def test_adjacency_symmetric(self):
        g = Graph(3, [(0, 1)])
        assert g.has_edge(0, 1) and g.has_edge(1, 0)

    def test_degree(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert g.degree(0) == 3
        assert g.degree(1) == 1

    def test_neighbor_set_matches_neighbors(self):
        g = Graph(5, [(0, 1), (0, 3), (2, 3)])
        for v in g.vertices():
            assert g.neighbor_set(v) == frozenset(g.neighbors(v))


class TestLabels:
    def test_default_label_zero(self):
        g = Graph(2, [(0, 1)])
        assert g.labels_of(0) == frozenset((0,))

    def test_scalar_labels(self):
        g = Graph(2, [(0, 1)], labels=["A", "B"])
        assert g.label_of(0) == "A"
        assert g.vertices_with_label("B") == (1,)

    def test_multi_labels(self):
        g = Graph(2, [(0, 1)], labels=[{"A", "B"}, {"B"}])
        assert g.labels_of(0) == frozenset({"A", "B"})
        assert set(g.vertices_with_label("B")) == {0, 1}

    def test_mapping_labels(self):
        g = Graph(3, [(0, 1)], labels={0: "X", 2: "Y"})
        assert g.label_of(0) == "X"
        assert g.label_of(1) == 0  # default for missing key

    def test_label_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Graph(3, [], labels=["A"])

    def test_empty_label_set_rejected(self):
        with pytest.raises(ValueError):
            Graph(1, [], labels=[set()])

    def test_label_matches_subset_rule(self):
        g = Graph(1, [], labels=[{"A", "B"}])
        assert g.label_matches(frozenset({"A"}), 0)
        assert g.label_matches(frozenset({"A", "B"}), 0)
        assert not g.label_matches(frozenset({"C"}), 0)

    def test_distinct_labels(self):
        g = Graph(3, [], labels=["A", "B", "A"])
        assert set(g.distinct_labels()) == {"A", "B"}


class TestNeighborLabelCounts:
    def test_counts(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)], labels=["X", "A", "A", "B"])
        nlc = g.neighbor_label_counts(0)
        assert nlc["A"] == 2
        assert nlc["B"] == 1

    def test_multilabel_neighbor_counts_each_label(self):
        g = Graph(2, [(0, 1)], labels=[{"X"}, {"A", "B"}])
        nlc = g.neighbor_label_counts(0)
        assert nlc == {"A": 1, "B": 1}


class TestBulkAccessors:
    def test_adjacency_table(self):
        g = Graph(3, [(0, 1), (0, 2)])
        assert g.adjacency == ((1, 2), (0,), (0,))

    def test_degrees_table(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert g.degrees == (3, 1, 1, 1)

    def test_label_table(self):
        g = Graph(2, [(0, 1)], labels=["A", "B"])
        assert g.label_table == (frozenset({"A"}), frozenset({"B"}))

    def test_uniform_label_detected(self):
        assert Graph(3, [(0, 1)]).uniform_label() == 0
        assert Graph(2, [], labels=["A", "A"]).uniform_label() == "A"

    def test_uniform_label_absent_with_mixed_labels(self):
        assert Graph(2, [], labels=["A", "B"]).uniform_label() is None

    def test_uniform_label_absent_with_multilabels(self):
        assert Graph(2, [], labels=[{"A", "B"}, {"A", "B"}]).uniform_label() is None


class TestDerivedViews:
    def test_subgraph_preserves_edges_and_labels(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)], labels=["A", "B", "C", "D"])
        sub = g.subgraph([1, 2, 3])
        assert sub.num_vertices == 3
        assert sub.edges == ((0, 1), (1, 2))
        assert sub.label_of(0) == "B"

    def test_subgraph_duplicate_rejected(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(ValueError):
            g.subgraph([0, 0])

    def test_is_connected(self):
        assert Graph(3, [(0, 1), (1, 2)]).is_connected()
        assert not Graph(3, [(0, 1)]).is_connected()

    def test_degree_sequence_descending(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert g.degree_sequence() == [3, 1, 1, 1]


class TestDunder:
    def test_len_and_iter(self):
        g = Graph(3, [(0, 1)])
        assert len(g) == 3
        assert list(g) == [0, 1, 2]

    def test_equality_and_hash(self):
        a = Graph(2, [(0, 1)], labels=["A", "B"])
        b = Graph(2, [(1, 0)], labels=["A", "B"])
        c = Graph(2, [(0, 1)], labels=["A", "C"])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_repr_mentions_size(self):
        g = Graph(2, [(0, 1)], name="tiny")
        assert "tiny" in repr(g)
        assert "|V|=2" in repr(g)
