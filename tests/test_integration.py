"""Integration tests spanning multiple subsystems: full pipelines on
realistic generated workloads, cross-matcher agreement at moderate
scale, and end-to-end IO round trips feeding the matcher."""

import pytest

from repro import CECIMatcher, count_embeddings, match
from repro.baselines import cflmatch_match, psgl_match, turboiso_match, vf2_match
from repro.bench import QG1, QG3, QG5
from repro.distributed import DistributedCECI
from repro.graph import (
    dense_labeled,
    generate_query,
    inject_labels,
    kronecker,
    load_graph_format,
    power_law,
    save_graph_format,
)
from repro.parallel import parallel_match, simulate_policy


@pytest.fixture(scope="module")
def social_graph():
    """A power-law 'social network' analog with the low-degree tail
    real networks have (so filtering has something to prune)."""
    return power_law(800, 6, seed=2024, min_edges_per_vertex=1)


@pytest.fixture(scope="module")
def labeled_graph():
    return inject_labels(kronecker(8, 4, seed=7), 4, seed=7)


class TestEndToEndPipelines:
    def test_motif_counts_consistent_across_matchers(self, social_graph):
        for query in (QG1, QG3):
            reference = count_embeddings(query, social_graph)
            assert len(vf2_match(query, social_graph)) == reference
            assert len(turboiso_match(query, social_graph)) == reference
            assert len(psgl_match(query, social_graph)) == reference

    def test_labeled_pipeline_all_matchers(self, labeled_graph):
        query = generate_query(labeled_graph, 5, seed=5)
        reference = sorted(match(query, labeled_graph))
        assert sorted(cflmatch_match(query, labeled_graph)) == reference
        assert sorted(vf2_match(query, labeled_graph)) == reference

    def test_sequential_parallel_distributed_agree(self, social_graph):
        sequential = set(match(QG3, social_graph))
        par, _ = parallel_match(
            CECIMatcher(QG3, social_graph), workers=3, policy="FGD"
        )
        assert set(par) == sequential
        dist = DistributedCECI(QG3, social_graph, num_machines=3).run()
        assert set(dist.embeddings) == sequential

    def test_io_round_trip_preserves_matching(self, labeled_graph, tmp_path):
        path = str(tmp_path / "graph.graph")
        save_graph_format(labeled_graph, path)
        reloaded = load_graph_format(path)
        query = generate_query(labeled_graph, 4, seed=11)
        assert sorted(match(query, reloaded)) == sorted(
            match(query, labeled_graph)
        )

    def test_dense_multilabel_pipeline(self):
        data = dense_labeled(300, avg_degree=20, num_labels=25, seed=1)
        query = generate_query(data, 6, seed=3, keep_all_labels=True)
        found = match(query, data, limit=64)
        assert found
        for embedding in found:
            for u in query.vertices():
                assert query.labels_of(u) <= data.labels_of(embedding[u])

    def test_first_k_matches_prefix_of_full(self, social_graph):
        full = match(QG3, social_graph)
        first = match(QG3, social_graph, limit=10)
        assert first == full[:10]


class TestSchedulingIntegration:
    def test_policy_results_share_total_work(self, social_graph):
        matcher = CECIMatcher(QG5, social_graph)
        st = simulate_policy(matcher, 8, "ST")
        cgd = simulate_policy(matcher, 8, "CGD")
        assert st.sequential_cost == pytest.approx(cgd.sequential_cost, rel=0.01)

    def test_extreme_cluster_threshold_scales_with_workers(self, social_graph):
        matcher = CECIMatcher(QG5, social_graph)
        few = matcher.work_units(worker_count=2, beta=0.5)
        many = matcher.work_units(worker_count=16, beta=0.5)
        # more workers -> lower threshold -> at least as many fragments
        assert len(many) >= len(few)


class TestStatsIntegration:
    def test_table2_invariant_on_real_workload(self, social_graph):
        matcher = CECIMatcher(QG5, social_graph)
        matcher.build()
        stats = matcher.stats
        assert 0 < stats.index_bytes < stats.theoretical_bytes(
            QG5.num_edges, social_graph.num_edges
        )

    def test_recursive_calls_scale_with_query_size(self, social_graph):
        small = CECIMatcher(QG1, social_graph)
        small.match()
        big = CECIMatcher(QG5, social_graph)
        big.match()
        assert big.stats.recursive_calls > small.stats.recursive_calls
