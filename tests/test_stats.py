"""Tests for the MatchStats instrumentation."""

import pytest

from repro.core import MatchStats
from repro.core.stats import BYTES_PER_CANDIDATE_EDGE


class TestIndexSize:
    def test_index_bytes(self):
        stats = MatchStats()
        stats.te_candidate_edges = 10
        stats.nte_candidate_edges = 5
        assert stats.index_bytes == 15 * BYTES_PER_CANDIDATE_EDGE

    def test_theoretical_bytes(self):
        stats = MatchStats()
        assert stats.theoretical_bytes(6, 1000) == 6 * 1000 * 8

    def test_space_saved_percent(self):
        stats = MatchStats()
        stats.te_candidate_edges = 300
        stats.nte_candidate_edges = 200
        # theoretical: 1000 edges -> 500 stored -> 50% saved
        assert stats.space_saved_percent(1, 1000) == pytest.approx(50.0)

    def test_space_saved_on_empty_graph(self):
        assert MatchStats().space_saved_percent(0, 0) == 0.0


class TestPhases:
    def test_add_phase_accumulates(self):
        stats = MatchStats()
        stats.add_phase("filter", 1.0)
        stats.add_phase("filter", 0.5)
        assert stats.phase_seconds["filter"] == pytest.approx(1.5)


class TestMerge:
    def test_merge_sums_counters_and_phases(self):
        a = MatchStats()
        a.recursive_calls = 5
        a.embeddings_found = 2
        a.add_phase("enumerate", 1.0)
        b = MatchStats()
        b.recursive_calls = 7
        b.removed_by_nlc = 3
        b.add_phase("enumerate", 2.0)
        b.add_phase("filter", 0.5)
        a.merge(b)
        assert a.recursive_calls == 12
        assert a.embeddings_found == 2
        assert a.removed_by_nlc == 3
        assert a.phase_seconds["enumerate"] == pytest.approx(3.0)
        assert a.phase_seconds["filter"] == pytest.approx(0.5)
